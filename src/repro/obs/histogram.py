"""Streaming log-bucketed latency histogram (HDR-histogram style).

Latencies span five orders of magnitude (an L1-adjacent reply is a few
cycles, a mode-blocked MC wait can be tens of thousands), so fixed-width
buckets are hopeless and per-request lists are exactly what the telemetry
layer promises *not* to keep.  A :class:`LogHistogram` records values into
sub-bucketed power-of-two buckets: each octave ``[2^e, 2^(e+1))`` is split
into ``2^sub_bits`` equal sub-buckets, bounding the relative quantile
error at ``1 / 2^sub_bits`` while keeping the bucket count logarithmic in
the value range.  Values below ``2^sub_bits`` are recorded exactly.

Buckets are held in a plain dict keyed by bucket index, so an idle
(mode, channel, stage) combination costs nothing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class LogHistogram:
    """Streaming histogram over non-negative integer values (cycles)."""

    __slots__ = ("sub_bits", "_sub", "counts", "total", "value_sum", "min_value", "max_value")

    def __init__(self, sub_bits: int = 3) -> None:
        if not 0 <= sub_bits <= 10:
            raise ValueError("sub_bits must be in [0, 10]")
        self.sub_bits = sub_bits
        self._sub = 1 << sub_bits
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.value_sum = 0
        self.min_value = -1
        self.max_value = -1

    # -- bucket math ------------------------------------------------------

    def bucket_index(self, value: int) -> int:
        """Bucket for ``value``; exact below ``2^sub_bits``, log-spaced above."""
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        if value < self._sub:
            return value
        # Octave [2^e, 2^(e+1)) split into `sub` equal sub-buckets: drop
        # all but the top sub_bits+1 significand bits, then bias so the
        # index sequence continues the exact region seamlessly.
        shift = value.bit_length() - 1 - self.sub_bits
        return (shift << self.sub_bits) + (value >> shift)

    def bucket_bounds(self, index: int) -> Tuple[int, int]:
        """Half-open value range ``[lower, upper)`` covered by a bucket."""
        if index < 0:
            raise ValueError("bucket index must be non-negative")
        sub = self._sub
        if index < 2 * sub:  # exact region plus the first (width-1) octave
            return index, index + 1
        shift = (index >> self.sub_bits) - 1
        lower = (index - (shift << self.sub_bits)) << shift
        return lower, lower + (1 << shift)

    # -- recording --------------------------------------------------------

    def add(self, value: int) -> None:
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.total += 1
        self.value_sum += value
        if self.min_value < 0 or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram in (must share the same bucket layout)."""
        if other.sub_bits != self.sub_bits:
            raise ValueError("cannot merge histograms with different sub_bits")
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.total += other.total
        self.value_sum += other.value_sum
        if other.total:
            if self.min_value < 0 or (0 <= other.min_value < self.min_value):
                self.min_value = other.min_value
            if other.max_value > self.max_value:
                self.max_value = other.max_value

    # -- statistics -------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.value_sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Value at quantile ``p`` in (0, 1]; 0.0 on an empty histogram.

        Interpolates linearly inside the matched bucket, clamped by the
        recorded min/max so the exact-value region stays exact.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if not self.total:
            return 0.0
        target = p * self.total
        cumulative = 0
        for index in sorted(self.counts):
            count = self.counts[index]
            cumulative += count
            if cumulative >= target:
                lower, upper = self.bucket_bounds(index)
                lower = max(lower, self.min_value)
                upper = min(upper, self.max_value + 1)
                if upper - lower <= 1:
                    return float(lower)
                within = (target - (cumulative - count)) / count
                return lower + (upper - 1 - lower) * within
        return float(self.max_value)  # pragma: no cover - cumulative == total above

    def to_dict(self) -> Dict[str, float]:
        """JSON-friendly summary (no bucket dump — this is the API surface)."""
        return {
            "count": self.total,
            "mean": round(self.mean, 2),
            "p50": round(self.percentile(0.50), 1),
            "p95": round(self.percentile(0.95), 1),
            "p99": round(self.percentile(0.99), 1),
            "min": self.min_value if self.total else 0,
            "max": self.max_value if self.total else 0,
        }

    def items(self) -> Iterator[Tuple[Tuple[int, int], int]]:
        """``((lower, upper), count)`` pairs in ascending value order."""
        for index in sorted(self.counts):
            yield self.bucket_bounds(index), self.counts[index]

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogHistogram n={self.total} mean={self.mean:.1f} max={self.max_value}>"
