"""Telemetry hub: per-hop latency folding plus the event ring.

One :class:`Telemetry` instance per system, created by
:meth:`~repro.sim.system.GPUSystem.enable_telemetry` and shared with every
memory controller (``controller.telemetry``).  The pipeline stages stamp
requests at their boundaries and call the ``record_*`` methods here; each
completed request is folded into a :class:`~repro.obs.histogram.LogHistogram`
keyed by ``(mode, channel, stage)`` and then forgotten — no per-request
state survives.

Hop model (full-chain requests, i.e. those serviced by DRAM or the PIM
units; every timestamp below is stamped by exactly one stage):

======================  ====================================================
stage                   cycles
======================  ====================================================
``sm_issue``            SM issue-queue wait: creation -> NoC entry
``noc``                 VC buffering + crossbar/mesh: NoC entry -> L2 arrival
``l2``                  L2 lookup + L2->DRAM queueing: L2 arrival -> MC arrival
``mc_blocked``          MC wait spent while the controller served or drained
                        toward the *other* mode (mode arbitration cost)
``mc_bank``             remaining MC wait (bank timing / policy order)
``dram``                service: issue -> completion (DRAM access or PIM op)
======================  ====================================================

The six hops telescope: their sum equals ``Request.total_latency``
*exactly*, which the summary reports as the ``hop_identity`` check.  Two
further stages fall outside the chain: ``return`` (reply network, measured
completion -> SM delivery) and ``l2_filtered`` (total latency of requests
the L2 satisfied without DRAM — hits and MSHR-merged secondaries — which
have no issue/completion timestamps to decompose).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.events import EventRing
from repro.obs.histogram import LogHistogram

#: The telescoping per-hop stages (sum == total latency, by construction).
HOP_STAGES = ("sm_issue", "noc", "l2", "mc_blocked", "mc_bank", "dram")

#: Canonical display order for all stages in summaries and tables.
STAGE_ORDER = HOP_STAGES + ("total", "return", "l2_filtered")


class Telemetry:
    """Aggregation point for latency histograms and structured events."""

    def __init__(self, ring_capacity: int = 65536, sub_bits: int = 3) -> None:
        self.events = EventRing(ring_capacity)
        self.sub_bits = sub_bits
        self._hists: Dict[Tuple[str, int, str], LogHistogram] = {}
        # Hop-identity accounting over full-chain requests.
        self.folded_requests = 0
        self._total_latency_sum = 0
        self._hop_sum = 0
        # Attached by enable_telemetry (unified entry point).
        self.timeline = None  # metrics.timeline.TimelineSampler
        self.perf = None  # perf.counters.EngineCounters

    # -- event pillar -----------------------------------------------------

    def emit(self, cycle: int, kind: str, channel: int = -1, **data) -> None:
        self.events.emit(cycle, kind, channel, **data)

    # -- histogram pillar -------------------------------------------------

    def hist(self, mode: str, channel: int, stage: str) -> LogHistogram:
        key = (mode, channel, stage)
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = LogHistogram(self.sub_bits)
        return hist

    def record_completion(self, request, cycle: int) -> None:
        """Fold a DRAM/PIM-serviced request's full hop chain.

        Requests with an incomplete timestamp chain (writebacks, requests
        injected mid-path by tests) are skipped — hop attribution would be
        meaningless for them.
        """
        created = request.cycle_created
        noc_entry = request.cycle_noc_entry
        l2_arrival = request.cycle_l2_arrival
        mc_arrival = request.cycle_mc_arrival
        issued = request.cycle_issued
        completed = request.cycle_completed
        if created < 0 or noc_entry < 0 or l2_arrival < 0 or mc_arrival < 0:
            return
        if issued < 0 or completed < 0:
            return
        mode = "pim" if request.is_pim else "mem"
        channel = request.channel
        mc_wait = issued - mc_arrival
        blocked = request.mc_blocked_cycles
        if blocked < 0:
            blocked = 0
        elif blocked > mc_wait:  # pragma: no cover - defensive clamp
            blocked = mc_wait
        hops = (
            noc_entry - created,
            l2_arrival - noc_entry,
            mc_arrival - l2_arrival,
            blocked,
            mc_wait - blocked,
            completed - issued,
        )
        hists = self._hists
        sub_bits = self.sub_bits
        for stage, value in zip(HOP_STAGES, hops):
            key = (mode, channel, stage)
            hist = hists.get(key)
            if hist is None:
                hist = hists[key] = LogHistogram(sub_bits)
            hist.add(value)
        total = completed - created
        self.hist(mode, channel, "total").add(total)
        self.folded_requests += 1
        self._total_latency_sum += total
        self._hop_sum += sum(hops)

    def record_return(self, request, cycle: int) -> None:
        """Record reply delivery back at the SM (loads only).

        DRAM-serviced loads get a ``return`` hop (completion -> delivery);
        L2-filtered loads (hits and MSHR-merged secondaries never reach
        DRAM, so ``cycle_completed`` stays -1) get their end-to-end latency
        under ``l2_filtered`` instead.
        """
        if request.cycle_completed >= 0:
            self.hist("mem", request.channel, "return").add(
                cycle - request.cycle_completed
            )
        elif request.cycle_created >= 0:
            self.hist("mem", request.channel, "l2_filtered").add(
                cycle - request.cycle_created
            )

    def record_l2_filtered(self, request, cycle: int) -> None:
        """Record a request fully absorbed at the L2 (store hit)."""
        if request.cycle_created >= 0:
            self.hist("mem", request.channel, "l2_filtered").add(
                cycle - request.cycle_created
            )

    # -- summary ----------------------------------------------------------

    def stage_hist(self, mode: str, stage: str) -> LogHistogram:
        """Histogram for (mode, stage) merged across all channels."""
        merged = LogHistogram(self.sub_bits)
        for (m, _ch, s), hist in self._hists.items():
            if m == mode and s == stage:
                merged.merge(hist)
        return merged

    def summary(self) -> Dict:
        """JSON-friendly stats: per-(mode, stage) percentiles, per-channel
        breakdowns, the hop-sum identity check, and event counts."""
        stages: Dict[str, Dict[str, Dict]] = {}
        per_channel: Dict[str, Dict[str, Dict[str, Dict]]] = {}
        modes = sorted({key[0] for key in self._hists})
        for mode in modes:
            present = {key[2] for key in self._hists if key[0] == mode}
            ordered = [s for s in STAGE_ORDER if s in present]
            stages[mode] = {
                stage: self.stage_hist(mode, stage).to_dict() for stage in ordered
            }
            channels = sorted({key[1] for key in self._hists if key[0] == mode})
            per_channel[mode] = {}
            for channel in channels:
                entry = {}
                for stage in ordered:
                    hist = self._hists.get((mode, channel, stage))
                    if hist is not None:
                        entry[stage] = hist.to_dict()
                per_channel[mode][str(channel)] = entry
        folded = self.folded_requests
        return {
            "stages": stages,
            "per_channel": per_channel,
            "hop_identity": {
                "requests": folded,
                "mean_total_latency": round(self._total_latency_sum / folded, 4) if folded else 0.0,
                "mean_hop_sum": round(self._hop_sum / folded, 4) if folded else 0.0,
                "mean_abs_gap": round(
                    abs(self._total_latency_sum - self._hop_sum) / folded, 4
                ) if folded else 0.0,
            },
            "events": {
                "recorded": len(self.events),
                "evicted": self.events.evicted,
                "capacity": self.events.capacity,
                "by_kind": self.events.by_kind(),
            },
        }
