"""Typed event ring buffer for structured tracing.

Emitters along the request path (controller, policies, NoC, the system
itself) push :class:`TraceEvent` records into a bounded :class:`EventRing`;
when the ring is full the oldest events are evicted (and counted), so a
long run can never grow telemetry memory without bound.  The trace writer
(:mod:`repro.obs.trace`) turns the surviving events into Chrome trace-event
slices, instants, and counter updates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

# Event kinds (the ``kind`` field of every TraceEvent).  Kept as plain
# strings so events serialize to JSON without translation.
MODE_SWITCH_BEGIN = "mode_switch_begin"
MODE_SWITCH_END = "mode_switch_end"
CAP_BYPASS = "cap_bypass"
REFRESH = "refresh"
BLISS_BLACKLIST = "bliss_blacklist"
BLISS_CLEAR = "bliss_clear"
DYN_CAP_ADAPT = "dyn_cap_adapt"
FAST_FORWARD = "fast_forward"
KERNEL_LAUNCH = "kernel_launch"
KERNEL_DRAIN = "kernel_drain"
NOC_REJECT = "noc_reject"
#: Emitted by the simulation watchdog when it detects a no-progress
#: window (just before raising SimulationStalled); see repro.resilience.
WATCHDOG = "watchdog"
#: Emitted by the sweep supervisor for every cell re-attempt; recorded in
#: GridReport.retry_events rather than the in-engine ring (the supervisor
#: lives outside the simulated system).
RETRY = "retry"


@dataclass(slots=True)
class TraceEvent:
    """One structured event; ``channel`` is -1 for system-wide events."""

    cycle: int
    kind: str
    channel: int = -1
    data: Optional[Dict] = field(default=None)

    def to_dict(self) -> Dict:
        record: Dict = {"cycle": self.cycle, "kind": self.kind}
        if self.channel >= 0:
            record["channel"] = self.channel
        if self.data:
            record.update(self.data)
        return record


class EventRing:
    """Bounded FIFO of trace events with eviction accounting."""

    __slots__ = ("capacity", "_events", "evicted")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.evicted = 0

    def emit(self, cycle: int, kind: str, channel: int = -1, **data) -> None:
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(TraceEvent(cycle, kind, channel, data or None))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
