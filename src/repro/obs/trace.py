"""Chrome trace-event export (Perfetto / ``chrome://tracing`` loadable).

Builds a `trace-event JSON object
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
from a telemetry-enabled system:

* **pid 0 — memory channels.**  One thread per channel carrying "X"
  (complete) slices for the servicing mode — ``MEM``, ``PIM``, and
  ``switch->X`` drain windows reconstructed from the mode-switch events —
  "i" (instant) markers for CAP bypasses, refreshes, BLISS and Dyn-F3FS
  actions and NoC rejects, and "C" (counter) tracks with the MEM/PIM/NoC
  queue occupancies from the attached
  :class:`~repro.metrics.timeline.TimelineSampler`.
* **pid 1 — SMs.**  One thread per SM with a slice per kernel launch
  (re-launches of looping kernels become back-to-back slices).

Timestamps are simulated **cycles**, not microseconds; Perfetto renders
them on its usual time axis, just read "us" as "cycles".

:func:`validate_trace` is the schema check used by tests and the CI smoke
step: it verifies the structural invariants the Perfetto trace-event
loader relies on (known phases, required fields per phase, numeric
non-negative timestamps) and returns a list of human-readable errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import events as ev

PathLike = Union[str, Path]

PID_CHANNELS = 0
PID_SMS = 1

#: Event kinds rendered as channel-track instants (everything that marks a
#: point action on one channel's request stream).
_INSTANT_KINDS = {
    ev.CAP_BYPASS,
    ev.REFRESH,
    ev.BLISS_BLACKLIST,
    ev.BLISS_CLEAR,
    ev.DYN_CAP_ADAPT,
    ev.NOC_REJECT,
}

_MODE_NAMES = {"mem": "MEM", "pim": "PIM"}


def _metadata(pid: int, tid: int, name: str, field: str) -> Dict:
    return {"name": field, "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}}


def _mode_slices(telemetry, num_channels: int, end_cycle: int) -> List[Dict]:
    """Reconstruct per-channel mode slices from the switch events.

    Controllers start in MEM mode at cycle 0.  If the ring evicted early
    events the reconstruction starts at the first surviving event with an
    unknown prior state, labelled ``(pre-ring)``.
    """
    slices: List[Dict] = []
    start = [0] * num_channels
    state = ["MEM" if telemetry.events.evicted == 0 else "(pre-ring)" for _ in range(num_channels)]

    def close(channel: int, cycle: int, next_state: str) -> None:
        duration = cycle - start[channel]
        if duration > 0:
            slices.append(
                {
                    "name": state[channel],
                    "cat": "mode",
                    "ph": "X",
                    "ts": start[channel],
                    "dur": duration,
                    "pid": PID_CHANNELS,
                    "tid": channel,
                }
            )
        start[channel] = cycle
        state[channel] = next_state

    for event in telemetry.events:
        if event.channel < 0 or event.channel >= num_channels:
            continue
        if event.kind == ev.MODE_SWITCH_BEGIN:
            target = _MODE_NAMES.get((event.data or {}).get("to", "?"), "?")
            close(event.channel, event.cycle, f"switch->{target}")
        elif event.kind == ev.MODE_SWITCH_END:
            mode = _MODE_NAMES.get((event.data or {}).get("mode", "?"), "?")
            close(event.channel, event.cycle, mode)
    for channel in range(num_channels):
        close(channel, end_cycle, state[channel])
    return slices


def _instants(telemetry, num_channels: int) -> List[Dict]:
    out: List[Dict] = []
    for event in telemetry.events:
        if event.kind not in _INSTANT_KINDS:
            continue
        record = {
            "name": event.kind,
            "cat": "events",
            "ph": "i",
            "ts": event.cycle,
            "pid": PID_CHANNELS,
            "tid": event.channel if 0 <= event.channel < num_channels else 0,
            "s": "t" if 0 <= event.channel < num_channels else "g",
        }
        if event.data:
            record["args"] = dict(event.data)
        out.append(record)
    return out


def _global_instants(telemetry) -> List[Dict]:
    """Fast-forward windows as global instants (they pause every track)."""
    out: List[Dict] = []
    for event in telemetry.events:
        if event.kind != ev.FAST_FORWARD:
            continue
        record = {
            "name": ev.FAST_FORWARD,
            "cat": "engine",
            "ph": "i",
            "ts": event.cycle,
            "pid": PID_CHANNELS,
            "tid": 0,
            "s": "g",
        }
        if event.data:
            record["args"] = dict(event.data)
        out.append(record)
    return out


def _kernel_slices(telemetry, num_sms: int, end_cycle: int) -> List[Dict]:
    slices: List[Dict] = []
    open_runs: Dict[int, Dict] = {}  # kernel_id -> {"cycle", "name", "sms"}

    def close(kernel_id: int, cycle: int) -> None:
        launch = open_runs.pop(kernel_id, None)
        if launch is None:
            return
        duration = cycle - launch["cycle"]
        if duration <= 0:
            return
        for sm in launch["sms"]:
            if 0 <= sm < num_sms:
                slices.append(
                    {
                        "name": f"{launch['name']} (k{kernel_id})",
                        "cat": "kernel",
                        "ph": "X",
                        "ts": launch["cycle"],
                        "dur": duration,
                        "pid": PID_SMS,
                        "tid": sm,
                        "args": {"kernel_id": kernel_id},
                    }
                )

    for event in telemetry.events:
        data = event.data or {}
        if event.kind == ev.KERNEL_LAUNCH:
            kernel_id = data.get("kernel", -1)
            close(kernel_id, event.cycle)  # looping relaunch: close previous
            open_runs[kernel_id] = {
                "cycle": event.cycle,
                "name": data.get("name", f"kernel{kernel_id}"),
                "sms": data.get("sms", []),
            }
        elif event.kind == ev.KERNEL_DRAIN:
            close(data.get("kernel", -1), event.cycle)
    for kernel_id in list(open_runs):
        close(kernel_id, end_cycle)
    return slices


def _counter_tracks(telemetry, num_channels: int) -> List[Dict]:
    timeline = telemetry.timeline
    if timeline is None:
        return []
    out: List[Dict] = []
    for row in timeline.to_rows():
        cycle = row["cycle"]
        for channel in range(min(num_channels, len(row["modes"]))):
            out.append(
                {
                    "name": f"ch{channel} queues",
                    "cat": "occupancy",
                    "ph": "C",
                    "ts": cycle,
                    "pid": PID_CHANNELS,
                    "tid": channel,
                    "args": {
                        "mem_q": row["mem_queue"][channel],
                        "pim_q": row["pim_queue"][channel],
                        "noc": row["noc"][channel],
                    },
                }
            )
    return out


def build_trace(system) -> Dict:
    """Build the trace-event JSON object for a telemetry-enabled system."""
    telemetry = getattr(system, "telemetry", None)
    if telemetry is None:
        raise ValueError("system has no telemetry; call enable_telemetry() before run()")
    num_channels = system.config.num_channels
    num_sms = system.config.num_sms
    end_cycle = system.cycle

    trace_events: List[Dict] = [
        _metadata(PID_CHANNELS, 0, "memory channels", "process_name"),
        _metadata(PID_SMS, 0, "SMs", "process_name"),
    ]
    for channel in range(num_channels):
        trace_events.append(_metadata(PID_CHANNELS, channel, f"channel {channel}", "thread_name"))
    for sm in range(num_sms):
        trace_events.append(_metadata(PID_SMS, sm, f"SM {sm}", "thread_name"))

    trace_events.extend(_mode_slices(telemetry, num_channels, end_cycle))
    trace_events.extend(_kernel_slices(telemetry, num_sms, end_cycle))
    trace_events.extend(_instants(telemetry, num_channels))
    trace_events.extend(_global_instants(telemetry))
    trace_events.extend(_counter_tracks(telemetry, num_channels))

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro trace",
            "time_unit": "cycles",
            "cycles": end_cycle,
            "policy": system.policy_spec.name,
            "channels": num_channels,
            "sms": num_sms,
            "events_evicted": telemetry.events.evicted,
        },
    }


_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M"}
_METADATA_NAMES = {
    "process_name",
    "process_labels",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}


def validate_trace(doc: Dict, max_errors: int = 20) -> List[str]:
    """Check trace-event structural invariants; returns a list of errors."""
    errors: List[str] = []

    def fail(index: int, message: str) -> bool:
        errors.append(f"traceEvents[{index}]: {message}")
        return len(errors) >= max_errors

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' array"]
    for index, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            if fail(index, "event is not an object"):
                break
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            if fail(index, f"unknown phase {phase!r}"):
                break
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            if fail(index, "missing/empty 'name'"):
                break
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            if fail(index, "'pid'/'tid' must be integers"):
                break
            continue
        if phase == "M":
            if event["name"] not in _METADATA_NAMES:
                if fail(index, f"unknown metadata record {event['name']!r}"):
                    break
            elif not isinstance(event.get("args"), dict):
                if fail(index, "metadata record without 'args'"):
                    break
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            if fail(index, f"bad 'ts' {ts!r}"):
                break
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                if fail(index, f"'X' slice with bad 'dur' {dur!r}"):
                    break
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                if fail(index, "'C' counter without 'args'"):
                    break
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                if fail(index, "'C' counter with non-numeric series"):
                    break
        elif phase in ("i", "I"):
            if event.get("s", "t") not in ("g", "p", "t"):
                if fail(index, f"instant with bad scope {event.get('s')!r}"):
                    break
    return errors


def write_trace(system, path: PathLike) -> Dict:
    """Build, validate, and write the trace; returns the document."""
    doc = build_trace(system)
    errors = validate_trace(doc)
    if errors:  # pragma: no cover - build_trace emits schema-valid events
        raise ValueError("invalid trace: " + "; ".join(errors))
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def write_stats(summary: Dict, path: PathLike) -> None:
    """Write the telemetry stats summary (``Telemetry.summary()``) as JSON."""
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2)
