"""Process-wide metrics registry (counters, gauges, streaming histograms).

The registry is the *operational* half of ``repro.obs``: where
:class:`~repro.obs.telemetry.Telemetry` measures the simulated machine,
the registry measures the campaign running it — cells completed, cache
hits, retries, cell-completion cadence — and exposes the lot two ways:

* :meth:`MetricsRegistry.snapshot` — a JSON-friendly dict (the shape
  embedded in ``status.json`` by the sweep heartbeat);
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition
  (``text/plain; version=0.0.4``), served at ``/metrics`` by
  :class:`repro.obs.server.StatusServer`.

Histograms reuse :class:`~repro.obs.histogram.LogHistogram`, so quantile
memory stays bounded no matter how many samples a campaign records.

Like every ``repro.obs`` hook the registry is zero-cost when unused: the
engine's per-cycle path never touches it — only the sweep coordinator
(:func:`repro.experiments.parallel.run_grid_resumable`) updates it, and
only when a store directory (and therefore a heartbeat) is attached.
``get_registry()`` returns the process-wide default; instantiate
:class:`MetricsRegistry` directly for an isolated one (tests do).
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Optional

from repro.obs.histogram import LogHistogram

#: Characters legal in a Prometheus metric name; everything else becomes
#: an underscore (``sweep.cells.completed`` -> ``sweep_cells_completed``).
_PROM_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantiles exported per histogram in the Prometheus summary rendering.
_SUMMARY_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def prometheus_name(name: str) -> str:
    """A registry metric name mangled into a legal Prometheus name."""
    mangled = _PROM_ILLEGAL.sub("_", name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"Counter.inc amount must be >= 0 (got {amount})")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (in-flight cells, ETA, ...)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class MetricsRegistry:
    """A named collection of counters, gauges, and streaming histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent for
    a name, ``ValueError`` if the name already exists as another type),
    so call sites never need to coordinate registration.  The registry
    lock only guards the registration maps — individual updates are
    plain attribute writes, safe under the GIL for the single-writer
    (sweep coordinator) / single-reader (HTTP thread) pattern it serves.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LogHistogram] = {}
        self._histogram_help: Dict[str, str] = {}

    def _get_or_create(self, table: Dict, name: str, factory):
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different type"
                )
        with self._lock:
            metric = table.get(name)
            if metric is None:
                metric = table[name] = factory()
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(self._counters, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(self._gauges, name, lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "") -> LogHistogram:
        metric = self._get_or_create(self._histograms, name, LogHistogram)
        if help:
            self._histogram_help.setdefault(name, help)
        return metric

    def reset(self) -> None:
        """Drop every registered metric (tests and fresh campaigns)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._histogram_help.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-friendly dump: counters/gauges as numbers, histograms as
        their ``to_dict`` summaries (count/mean/p50/p95/p99/min/max)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4).

        Counters render as ``counter``, gauges as ``gauge``, histograms
        as ``summary`` (p50/p95/p99 quantile series plus ``_sum`` and
        ``_count``, the convention for client-side quantiles).
        """
        lines = []
        for name, counter in sorted(self._counters.items()):
            prom = prometheus_name(name)
            if counter.help:
                lines.append(f"# HELP {prom} {counter.help}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            prom = prometheus_name(name)
            if gauge.help:
                lines.append(f"# HELP {prom} {gauge.help}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            prom = prometheus_name(name)
            help_text = self._histogram_help.get(name)
            if help_text:
                lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} summary")
            summary = histogram.to_dict()
            for quantile, key in _SUMMARY_QUANTILES:
                lines.append(
                    f'{prom}{{quantile="{quantile}"}} '
                    f"{_format_value(summary.get(key, 0))}"
                )
            total = summary.get("mean", 0) * summary.get("count", 0)
            lines.append(f"{prom}_sum {_format_value(total)}")
            lines.append(f"{prom}_count {summary.get('count', 0)}")
        return "\n".join(lines) + "\n"


def _format_value(value) -> str:
    """Render a sample value the way Prometheus parsers expect."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    return repr(float(value))


_DEFAULT: Optional[MetricsRegistry] = None
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = MetricsRegistry()
    return _DEFAULT
