"""Live sweep heartbeat: the atomically-replaced ``status.json``.

A running campaign used to be a black box until it finished; the
heartbeat makes it observable from outside the process.  Whenever a
store directory is attached to a sweep,
:func:`repro.experiments.parallel.run_grid_resumable` keeps a
:class:`StatusPublisher` updated as cells complete, and the publisher
writes ``status.json`` into the store root with the same durability rule
as the store's objects — write a temp file, ``os.replace`` into place —
so a concurrent reader (``repro status``, the HTTP endpoint, a human
with ``cat``) never sees a torn document.

Schema (``validate_status`` checks it; version bumps ``STATUS_SCHEMA``)::

    {
      "schema": 1,
      "state": "running" | "complete" | "aborted",
      "started_at": <unix seconds>, "updated_at": <unix seconds>,
      "cells": {"total": N, "completed": c, "hits": h,
                 "misses": m, "failed": f},
      "throughput_cells_per_sec": <float>,    # completed / elapsed
      "eta_seconds": <float> | null,          # remaining / throughput
      "shard": [i, n] | null,
      "workers": {"max": w, "in_flight": [{"label": ..., "seconds": ...}]},
      "retries": <retry-event count>,
      "quarantined": [{"label", "kind", "attempts", "message"}, ...],
      "metrics": <MetricsRegistry.snapshot()>,
      # optional recovery metadata (fabric coordinators only):
      "recoveries": <ledger-replay count>, "epoch": <fencing epoch>
    }

Writes are throttled (``interval`` seconds, default 1) except for state
transitions — the first write and the final one always land, so even a
sweep that completes instantly (100% warm cache hits) leaves a
``state: "complete"`` document behind rather than an empty campaign.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, Path]

STATUS_SCHEMA = 1
STATUS_FILENAME = "status.json"

_STATES = ("running", "complete", "aborted")


def status_path(store_dir: PathLike) -> Path:
    """Where a sweep against ``store_dir`` publishes its heartbeat."""
    return Path(store_dir) / STATUS_FILENAME


def read_status(
    store_dir: PathLike, attempts: int = 3, _sleep=time.sleep
) -> Optional[Dict]:
    """The last published heartbeat, or ``None`` if there has never been
    one (or the file stays unreadable).

    ``os.replace`` is atomic, but not every filesystem that reaches a
    store directory behaves like a local POSIX one (NFS renames, overlay
    mounts, Windows shares can expose a transient window where the path
    is briefly missing or the open races the replace).  A watcher
    (``repro status --watch``, the HTTP endpoint) polling exactly inside
    that window would misreport a live sweep as having no status — so a
    failed read is retried ``attempts`` times with a short pause before
    giving up.  A store no sweep has ever touched still returns ``None``
    (after the retries; the pause is milliseconds)."""
    path = status_path(store_dir)
    for attempt in range(max(1, attempts)):
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            if attempt + 1 < max(1, attempts):
                _sleep(0.02 * (attempt + 1))
    return None


def validate_status(doc: Dict) -> List[str]:
    """Schema check for a heartbeat document; returns human-readable errors.

    Used by tests and the CI status-canary the same way
    :func:`repro.obs.trace.validate_trace` guards the trace surface.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["status document must be an object"]
    if doc.get("schema") != STATUS_SCHEMA:
        errors.append(f"schema must be {STATUS_SCHEMA} (got {doc.get('schema')!r})")
    if doc.get("state") not in _STATES:
        errors.append(f"state must be one of {_STATES} (got {doc.get('state')!r})")
    for field in ("started_at", "updated_at"):
        if not isinstance(doc.get(field), (int, float)):
            errors.append(f"{field} must be a number")
    cells = doc.get("cells")
    if not isinstance(cells, dict):
        errors.append("cells must be an object")
    else:
        for field in ("total", "completed", "hits", "misses", "failed"):
            value = cells.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"cells.{field} must be a non-negative integer")
        if not errors and cells["completed"] != cells["hits"] + cells["misses"]:
            errors.append("cells.completed must equal cells.hits + cells.misses")
    if not isinstance(doc.get("throughput_cells_per_sec"), (int, float)):
        errors.append("throughput_cells_per_sec must be a number")
    eta = doc.get("eta_seconds")
    if eta is not None and not isinstance(eta, (int, float)):
        errors.append("eta_seconds must be a number or null")
    shard = doc.get("shard")
    if shard is not None and (
        not isinstance(shard, list)
        or len(shard) != 2
        or not all(isinstance(v, int) for v in shard)
    ):
        errors.append("shard must be [index, count] or null")
    workers = doc.get("workers")
    if not isinstance(workers, dict) or not isinstance(workers.get("in_flight"), list):
        errors.append("workers.in_flight must be a list")
    else:
        for i, cell in enumerate(workers["in_flight"]):
            if not isinstance(cell, dict) or not isinstance(cell.get("label"), str):
                errors.append(f"workers.in_flight[{i}] must carry a label")
    if not isinstance(doc.get("quarantined"), list):
        errors.append("quarantined must be a list")
    else:
        for i, failure in enumerate(doc["quarantined"]):
            if not isinstance(failure, dict) or not isinstance(failure.get("label"), str):
                errors.append(f"quarantined[{i}] must carry a label")
    if not isinstance(doc.get("retries"), int):
        errors.append("retries must be an integer")
    if not isinstance(doc.get("metrics"), dict):
        errors.append("metrics must be an object")
    # Recovery metadata is optional (only fabric coordinators publish it)
    # but must be well-formed when present.
    if "recoveries" in doc and (
        not isinstance(doc["recoveries"], int) or doc["recoveries"] < 0
    ):
        errors.append("recoveries must be a non-negative integer")
    if "epoch" in doc and (not isinstance(doc["epoch"], int) or doc["epoch"] < 1):
        errors.append("epoch must be a positive integer")
    return errors


class StatusPublisher:
    """Accumulates campaign progress and publishes ``status.json``.

    Purely observational: it is fed by the sweep coordinator *after* each
    cell's result is folded, touches no engine state, and its counters
    live in a :class:`~repro.obs.metrics.MetricsRegistry` — so an armed
    sweep computes exactly what an unarmed one does.
    """

    def __init__(
        self,
        store_dir: PathLike,
        total_cells: int,
        shard: Optional[Tuple[int, int]] = None,
        max_workers: int = 1,
        interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        recoveries: int = 0,
        epoch: Optional[int] = None,
        clock=time.time,
    ) -> None:
        self.path = status_path(store_dir)
        self.total = total_cells
        self.shard = list(shard) if shard is not None else None
        self.max_workers = max_workers
        self.interval = interval
        self.recoveries = recoveries
        self.epoch = epoch
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self.started_at = clock()
        self.state = "running"
        self.completed = 0
        self.hits = 0
        self.misses = 0
        self.retries = 0
        self.quarantined: List[Dict] = []
        self.in_flight: List[Dict] = []
        self._last_write = 0.0
        self._last_completion: Optional[float] = None
        self._c_completed = self.registry.counter(
            "sweep.cells.completed", "grid cells completed by this sweep"
        )
        self._c_hits = self.registry.counter(
            "sweep.cells.hits", "cells satisfied from the result store"
        )
        self._c_misses = self.registry.counter(
            "sweep.cells.misses", "cells that had to be simulated"
        )
        self._c_retries = self.registry.counter(
            "sweep.cells.retries", "cell retry attempts"
        )
        self._c_quarantined = self.registry.counter(
            "sweep.cells.quarantined", "cells given up on after retries"
        )
        self._g_in_flight = self.registry.gauge(
            "sweep.workers.in_flight", "cells currently running in workers"
        )
        self._h_interval = self.registry.histogram(
            "sweep.cell_interval_ms",
            "milliseconds between consecutive cell completions",
        )
        self.publish(force=True)

    # -- feed --------------------------------------------------------------

    def record_completion(self, hit: bool) -> None:
        now = self._clock()
        self.completed += 1
        self._c_completed.inc()
        if hit:
            self.hits += 1
            self._c_hits.inc()
        else:
            self.misses += 1
            self._c_misses.inc()
        if self._last_completion is not None:
            self._h_interval.add(max(0, int((now - self._last_completion) * 1000)))
        self._last_completion = now
        self.publish()

    def record_retry(self, event: Dict) -> None:
        if event.get("kind") == "retry":
            self.retries += 1
            self._c_retries.inc()
        self.publish()

    def sync_retries(self, count: int) -> None:
        """Catch the retry total up to ``count`` (supervisor-path feed:
        the pool appends retry events internally, so the coordinator
        reconciles the running total instead of seeing each one)."""
        if count > self.retries:
            self._c_retries.inc(count - self.retries)
            self.retries = count

    def record_quarantine(self, failure: Dict) -> None:
        self.quarantined.append(
            {
                "label": failure.get("label", "?"),
                "kind": failure.get("kind", "?"),
                "attempts": failure.get("attempts", 0),
                "message": failure.get("message", ""),
            }
        )
        self._c_quarantined.inc()
        self.publish(force=True)

    def record_in_flight(self, cells: List[Dict]) -> None:
        """Per-worker liveness from the supervisor's heartbeat hook."""
        self.in_flight = cells
        self._g_in_flight.set(len(cells))
        self.publish()

    def finish(self, state: str = "complete") -> None:
        if state not in _STATES:
            raise ValueError(f"unknown final state {state!r}; expected one of {_STATES}")
        self.state = state
        self.in_flight = []
        self._g_in_flight.set(0)
        self.publish(force=True)

    # -- publish -----------------------------------------------------------

    def document(self) -> Dict:
        now = self._clock()
        elapsed = max(now - self.started_at, 1e-9)
        throughput = self.completed / elapsed
        remaining = max(self.total - self.completed - len(self.quarantined), 0)
        eta = (
            round(remaining / throughput, 1)
            if self.state == "running" and throughput > 0 and remaining
            else (0.0 if remaining == 0 or self.state != "running" else None)
        )
        doc = {
            "schema": STATUS_SCHEMA,
            "state": self.state,
            "started_at": round(self.started_at, 3),
            "updated_at": round(now, 3),
            "cells": {
                "total": self.total,
                "completed": self.completed,
                "hits": self.hits,
                "misses": self.misses,
                "failed": len(self.quarantined),
            },
            "throughput_cells_per_sec": round(throughput, 3),
            "eta_seconds": eta,
            "shard": self.shard,
            "workers": {"max": self.max_workers, "in_flight": self.in_flight},
            "retries": self.retries,
            "quarantined": self.quarantined,
            "metrics": self.registry.snapshot(),
        }
        if self.epoch is not None:
            doc["recoveries"] = self.recoveries
            doc["epoch"] = self.epoch
        return doc

    def publish(self, force: bool = False) -> None:
        """Write ``status.json`` atomically (throttled unless ``force``)."""
        now = self._clock()
        if not force and now - self._last_write < self.interval:
            return
        self._last_write = now
        document = self.document()
        tmp = self.path.parent / f".{STATUS_FILENAME}.{os.getpid()}.tmp"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(document, sort_keys=True))
        os.replace(tmp, self.path)
