"""Request-path telemetry (``GPUSystem.enable_telemetry`` / ``repro trace``).

Three pillars, all zero-cost when disabled (the system and controllers
carry a ``telemetry`` attribute that stays ``None`` unless
:meth:`~repro.sim.system.GPUSystem.enable_telemetry` is called, and every
hot-path hook is guarded by an ``is not None`` check — the same pattern as
``enable_perf_counters``):

* **Per-hop latency accounting** (:mod:`repro.obs.histogram`,
  :class:`~repro.obs.telemetry.Telemetry`): every completed request is
  folded into streaming log-bucketed histograms keyed by
  ``(mode, channel, stage)``, exposing p50/p95/p99 and means without
  retaining per-request lists.
* **Structured event tracing** (:mod:`repro.obs.events`): a bounded ring
  buffer of typed events — mode switches, CAP bypasses, refreshes, BLISS
  blacklisting, Dyn-F3FS cap adaptations, fast-forward windows, kernel
  launches/drains, NoC rejects.
* **Export** (:mod:`repro.obs.trace`): a Chrome trace-event JSON writer
  (Perfetto / ``chrome://tracing`` loadable) plus the JSON stats summary
  attached to :class:`~repro.sim.results.SimResult`.

On top of the simulated-machine pillars, the package carries the
*campaign* observability surface: a process-wide metrics registry
(:mod:`repro.obs.metrics` — counters, gauges, streaming histograms, JSON
snapshot and Prometheus exposition), the sweep heartbeat
(:mod:`repro.obs.status` — atomically-replaced ``status.json`` in the
store dir), and the stdlib HTTP endpoint serving both plus recent store
journal events (:mod:`repro.obs.server`, wired to
``repro sweep --serve-status`` / ``repro status``).

See ``docs/observability.md`` for the architecture and a walkthrough.
"""

from repro.obs.events import EventRing, TraceEvent
from repro.obs.histogram import LogHistogram
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, get_registry
from repro.obs.server import StatusServer
from repro.obs.status import (
    STATUS_FILENAME,
    StatusPublisher,
    read_status,
    status_path,
    validate_status,
)
from repro.obs.telemetry import HOP_STAGES, STAGE_ORDER, Telemetry
from repro.obs.trace import build_trace, validate_trace, write_stats, write_trace

__all__ = [
    "EventRing",
    "TraceEvent",
    "LogHistogram",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "get_registry",
    "StatusServer",
    "STATUS_FILENAME",
    "StatusPublisher",
    "read_status",
    "status_path",
    "validate_status",
    "HOP_STAGES",
    "STAGE_ORDER",
    "Telemetry",
    "build_trace",
    "validate_trace",
    "write_stats",
    "write_trace",
]
