"""Request-path telemetry (``GPUSystem.enable_telemetry`` / ``repro trace``).

Three pillars, all zero-cost when disabled (the system and controllers
carry a ``telemetry`` attribute that stays ``None`` unless
:meth:`~repro.sim.system.GPUSystem.enable_telemetry` is called, and every
hot-path hook is guarded by an ``is not None`` check — the same pattern as
``enable_perf_counters``):

* **Per-hop latency accounting** (:mod:`repro.obs.histogram`,
  :class:`~repro.obs.telemetry.Telemetry`): every completed request is
  folded into streaming log-bucketed histograms keyed by
  ``(mode, channel, stage)``, exposing p50/p95/p99 and means without
  retaining per-request lists.
* **Structured event tracing** (:mod:`repro.obs.events`): a bounded ring
  buffer of typed events — mode switches, CAP bypasses, refreshes, BLISS
  blacklisting, Dyn-F3FS cap adaptations, fast-forward windows, kernel
  launches/drains, NoC rejects.
* **Export** (:mod:`repro.obs.trace`): a Chrome trace-event JSON writer
  (Perfetto / ``chrome://tracing`` loadable) plus the JSON stats summary
  attached to :class:`~repro.sim.results.SimResult`.

See ``docs/observability.md`` for the architecture and a walkthrough.
"""

from repro.obs.events import EventRing, TraceEvent
from repro.obs.histogram import LogHistogram
from repro.obs.telemetry import HOP_STAGES, STAGE_ORDER, Telemetry
from repro.obs.trace import build_trace, validate_trace, write_stats, write_trace

__all__ = [
    "EventRing",
    "TraceEvent",
    "LogHistogram",
    "HOP_STAGES",
    "STAGE_ORDER",
    "Telemetry",
    "build_trace",
    "validate_trace",
    "write_stats",
    "write_trace",
]
