"""Stdlib HTTP endpoint for a live sweep (``repro sweep --serve-status``).

Serves three read-only views of a campaign, all backed by artifacts the
sweep already maintains (so the server holds no state of its own and can
be pointed at a store directory owned by *another* process):

* ``/status`` — the heartbeat ``status.json``
  (:mod:`repro.obs.status`), as JSON; 503 with
  ``{"state": "unknown"}`` until the first heartbeat lands.
* ``/metrics`` — Prometheus text exposition of the attached
  :class:`~repro.obs.metrics.MetricsRegistry` (the process-wide default
  unless one is passed in).
* ``/journal?n=N`` — the last N (default 50, capped at 1000) store
  journal events (puts, quarantines, sweep summaries) as a JSON array.

Built on :class:`http.server.ThreadingHTTPServer` — no third-party
dependencies — and run on a daemon thread so it never blocks sweep
shutdown.  Binding port 0 picks an ephemeral port (tests do this);
``server.port`` reports the bound port either way.
"""

from __future__ import annotations

import errno
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.status import read_status

PathLike = Union[str, Path]

#: Hard cap on journal events returned by one ``/journal`` request.
JOURNAL_LIMIT = 1000


class PortInUseError(OSError):
    """A requested status port is already bound (or not bindable).

    Subclasses :class:`OSError` so existing ``except OSError`` callers
    keep working, but carries a message that names the port and the
    obvious fixes — the CLI shows this instead of a raw traceback.
    """

    def __init__(self, host: str, port: int, cause: OSError) -> None:
        super().__init__(
            cause.errno,
            f"cannot serve status on {host}:{port} — port {port} is "
            f"already in use or not bindable ({cause.strerror or cause}); "
            "pick another port, or use port 0 for an ephemeral one",
        )
        self.host = host
        self.port = port


class _StatusHandler(BaseHTTPRequestHandler):
    server_version = "repro-status/1"

    # The handler class is shared; per-server state lives on the server
    # instance (`self.server`), set up by StatusServer below.

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (the sweep owns the console)."""

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload) -> None:
        self._send(code, json.dumps(payload).encode(), "application/json")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/status":
            document = read_status(self.server.store_dir)
            if document is None:
                self._send_json(503, {"state": "unknown"})
            else:
                self._send_json(200, document)
        elif parsed.path == "/metrics":
            body = self.server.registry.render_prometheus().encode()
            self._send(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif parsed.path == "/journal":
            try:
                count = int(parse_qs(parsed.query).get("n", ["50"])[0])
            except ValueError:
                self._send_json(400, {"error": "n must be an integer"})
                return
            count = max(0, min(count, JOURNAL_LIMIT))
            from repro.store import ResultStore

            store = ResultStore(self.server.store_dir)
            # [-0:] would be the whole journal, not none of it.
            self._send_json(200, store.journal_entries()[-count:] if count else [])
        else:
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})


class StatusServer:
    """Background HTTP server over a store directory's campaign views."""

    def __init__(
        self,
        store_dir: PathLike,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        try:
            self._httpd = ThreadingHTTPServer((host, port), _StatusHandler)
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                raise PortInUseError(host, port, exc) from exc
            raise
        self._httpd.daemon_threads = True
        self._httpd.store_dir = self.store_dir
        self._httpd.registry = registry if registry is not None else get_registry()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-status", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "StatusServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
