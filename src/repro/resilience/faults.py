"""Deterministic fault injection for the sweep execution layer (test-only).

A :class:`FaultPlan` maps grid-cell labels (``GridTask.label``, e.g.
``"G17|P1|F3FS|vc1"``) to a :class:`FaultSpec` describing what goes wrong
there and how many attempts it affects:

* ``crash``   — the worker process dies mid-cell (``os._exit``), which the
  supervisor sees as ``BrokenProcessPool``;
* ``hang``    — the worker sleeps past any sane cell timeout, proving the
  timeout/kill/respawn path;
* ``error``   — a transient :class:`FaultInjected` exception, proving
  retry-with-backoff;
* ``corrupt`` — the cell completes but its store object is overwritten
  with garbage afterwards, proving that checksummed reads turn corruption
  into a recomputed miss on resume.

Trigger counts persist in ``state_dir`` (one file per cell, one byte
appended per trigger), so "crash twice then heal" survives worker
respawns and process boundaries, and a resumed sweep sees the same
deterministic schedule.  Workers activate a plan either explicitly
(passed through the pool initializer) or via the ``REPRO_FAULTS``
environment variable naming a JSON plan file — the hook the CI
fault-canary uses.  With no plan installed every hook is a single
``None`` check; nothing here runs in production sweeps.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

FAULT_KINDS = ("crash", "hang", "error", "corrupt")

#: Environment variable naming a JSON fault-plan file (CLI / CI hook).
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code used by injected worker crashes (visible in supervisor logs).
CRASH_EXIT_CODE = 70


class FaultInjected(RuntimeError):
    """The transient exception raised by ``error`` faults (retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """What goes wrong at one cell.

    ``times`` bounds how many *attempts* trigger the fault; a negative
    value means every attempt (a permanently poisoned cell).
    """

    kind: str
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS} (got {self.kind!r})")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults, keyed by cell label."""

    state_dir: str
    cells: Tuple[Tuple[str, FaultSpec], ...]
    hang_seconds: float = 300.0

    @classmethod
    def build(
        cls,
        state_dir: os.PathLike,
        cells: Dict[str, FaultSpec],
        hang_seconds: float = 300.0,
    ) -> "FaultPlan":
        Path(state_dir).mkdir(parents=True, exist_ok=True)
        return cls(
            state_dir=str(state_dir),
            cells=tuple(sorted(cells.items())),
            hang_seconds=hang_seconds,
        )

    # -- (de)serialization (initializer args, REPRO_FAULTS files) ---------

    def to_payload(self) -> Dict:
        return {
            "state_dir": self.state_dir,
            "hang_seconds": self.hang_seconds,
            "cells": {
                label: {"kind": spec.kind, "times": spec.times}
                for label, spec in self.cells
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "FaultPlan":
        return cls.build(
            payload["state_dir"],
            {
                label: FaultSpec(kind=spec["kind"], times=int(spec.get("times", 1)))
                for label, spec in payload.get("cells", {}).items()
            },
            hang_seconds=float(payload.get("hang_seconds", 300.0)),
        )

    @classmethod
    def from_file(cls, path: os.PathLike) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_payload(json.load(fh))

    # -- trigger accounting -----------------------------------------------

    def _counter_path(self, label: str) -> Path:
        slug = f"{zlib.crc32(label.encode()):08x}"
        return Path(self.state_dir) / f"{slug}.count"

    def triggered(self, label: str) -> int:
        """How many times this cell's fault has already fired."""
        try:
            return self._counter_path(label).stat().st_size
        except OSError:
            return 0

    def claim(self, label: str, phase: Optional[str] = None) -> Optional[str]:
        """Consume one trigger for ``label``; returns the fault kind or None.

        ``phase`` filters by when the fault applies without consuming a
        trigger on mismatch: ``"pre"`` matches crash/hang/error (fired
        before the cell runs), ``"post"`` matches corrupt (fired after
        the cell's store write).  One byte is appended per trigger
        (``O_APPEND``: atomic under concurrent workers), so the count
        survives crashes of the very process that claimed it — which is
        the point.
        """
        spec = dict(self.cells).get(label)
        if spec is None:
            return None
        if phase is not None and phase != ("post" if spec.kind == "corrupt" else "pre"):
            return None
        if 0 <= spec.times <= self.triggered(label):
            return None
        fd = os.open(self._counter_path(label), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)
        return spec.kind


#: The plan active in this process (installed by the pool initializer).
_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    global _ACTIVE
    _ACTIVE = plan


def active() -> Optional[FaultPlan]:
    return _ACTIVE


def load_env() -> Optional[FaultPlan]:
    """Load the plan named by ``REPRO_FAULTS``, if any."""
    path = os.environ.get(FAULTS_ENV)
    if not path:
        return None
    return FaultPlan.from_file(path)


def crash_worker() -> None:  # pragma: no cover - kills the process
    """Die the way a segfault/OOM kill looks to the parent: no cleanup."""
    os._exit(CRASH_EXIT_CODE)


def corrupt_store_object(store, key: str) -> None:
    """Overwrite a published store object with garbage (post-write fault)."""
    path = store.object_path(key)
    if path.exists():
        path.write_text("\x00corrupted-by-fault-injection")
