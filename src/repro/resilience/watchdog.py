"""Simulation watchdog: no-forward-progress detection for the cycle engine.

A livelocked configuration (e.g. an arbiter that never grants) spins the
engine forever: cycles advance, nothing retires, and from the outside the
cell is indistinguishable from one that is merely slow.  The watchdog
rides the engine's existing zero-cost observability pattern (``if
watchdog is not None`` plus one integer compare per step) and every
``window`` cycles takes a *progress signature* — a tuple of monotonic
counters that increase whenever the system does real work (requests
retired, warps issued, DRAM commands, PIM ops, NoC transfers, mode
switches, kernel completions).  If the signature is unchanged across a
full window while work is still outstanding, the run is provably stuck:
every engine transition bumps at least one of those counters, so it
raises :class:`SimulationStalled` carrying a diagnostic dump (queue
depths, per-channel mode, oldest request age) instead of spinning until
the cell's wall-clock timeout kills the worker with no explanation.

The watchdog observes but never schedules: an enabled run is
bit-identical to a disabled one (``tests/test_watchdog.py``), and the
dormant hook costs <2% (``check_perf_regression.py --check resilience``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Default no-progress window in cycles.  Large enough that every latency
#: in the model (DRAM timings, PIM ops, refresh, reply latency: all well
#: under 10k cycles) fires many times over before a healthy system could
#: look frozen, small enough to beat any practical per-cell timeout.
DEFAULT_WINDOW = 100_000


class SimulationStalled(RuntimeError):
    """The engine made no forward progress for a full watchdog window.

    ``diagnostic`` is a plain-JSON dict (see :func:`stall_diagnostic`)
    safe to pickle across the worker-process boundary and to journal.
    """

    def __init__(self, message: str, diagnostic: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.diagnostic = dict(diagnostic or {})

    def __reduce__(self):
        return (type(self), (self.args[0], self.diagnostic))


def progress_signature(system) -> Tuple[int, ...]:
    """Monotonic counters that change whenever the engine does real work."""
    if system.mesh is not None:
        transfers = system.mesh.hops + system.mesh.transfers
    else:
        transfers = system.crossbar.transfers
    return (
        system.replies_sent,
        sum(system._injected.values()),
        sum(channel.stats.mem_accesses for channel in system.channels),
        sum(executor.stats.ops_executed for executor in system.pim_execs),
        sum(controller.stats.switches for controller in system.controllers),
        transfers,
        sum(run.completions for run in system.runs),
    )


def outstanding_work(system) -> bool:
    """Buffered or in-flight requests that should eventually retire."""
    if system._backlog > 0:
        return True
    return any(count > 0 for count in system._kernel_inflight.values())


def stall_diagnostic(system, window: int) -> Dict:
    """Snapshot of the stuck machine, as a plain-JSON dict."""
    cycle = system.cycle
    channels = []
    for ch, controller in enumerate(system.controllers):
        oldest = controller.oldest_overall()
        age = None
        if oldest is not None and oldest.cycle_mc_arrival >= 0:
            age = cycle - oldest.cycle_mc_arrival
        channels.append(
            {
                "channel": ch,
                "mode": controller.mode.value,
                "mem_queue": len(controller.mem_queue),
                "pim_queue": len(controller.pim_queue),
                "mem_in_flight": controller.channel.mem_in_flight(),
                "pim_in_flight": controller.pim_exec.in_flight(),
                "switching": controller.is_switching,
                "oldest_request_age": age,
                "ingress_queue": len(system.dram_queues[ch]),
                "l2_input_queue": len(system.input_buffers[ch]),
            }
        )
    heap = system._reply_heap
    return {
        "cycle": cycle,
        "window": window,
        "backlog": system._backlog,
        "kernel_inflight": {str(k): v for k, v in system._kernel_inflight.items()},
        "replies_pending": len(heap),
        "next_reply_cycle": heap[0][0] if heap else None,
        "signature": list(progress_signature(system)),
        "channels": channels,
    }


class Watchdog:
    """Per-system stall detector; attach via ``GPUSystem.enable_watchdog``."""

    __slots__ = ("window", "next_check", "_signature", "stalls_checked")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if not isinstance(window, int) or isinstance(window, bool) or window < 1:
            raise ValueError(f"watchdog window must be a positive integer (got {window!r})")
        self.window = window
        self.next_check = window
        self._signature: Optional[Tuple[int, ...]] = None
        self.stalls_checked = 0

    def scan(self, system) -> None:
        """Compare progress since the last check; raise if frozen.

        Called by the engine only when ``cycle >= next_check``, so the
        per-step dormant cost is one attribute load and one compare.
        """
        self.stalls_checked += 1
        cycle = system.cycle
        signature = progress_signature(system)
        if signature == self._signature and outstanding_work(system):
            diagnostic = stall_diagnostic(system, self.window)
            if system.telemetry is not None:
                from repro.obs import events as obs_events

                system.telemetry.emit(
                    cycle,
                    obs_events.WATCHDOG,
                    window=self.window,
                    backlog=system._backlog,
                )
            raise SimulationStalled(
                f"no forward progress for {self.window} cycles at cycle {cycle} "
                f"({system._backlog} buffered, "
                f"{sum(system._kernel_inflight.values())} in flight)",
                diagnostic,
            )
        self._signature = signature
        self.next_check = cycle + self.window
