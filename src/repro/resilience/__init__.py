"""Fault tolerance for sweeps and simulations (see docs/resilience.md).

Three pillars:

* :mod:`repro.resilience.supervisor` — a supervised worker pool that
  survives worker crashes (``BrokenProcessPool``), enforces per-cell
  wall-clock timeouts by killing and respawning the pool, retries failed
  cells with capped exponential backoff + deterministic jitter, and
  quarantines cells that keep failing so the sweep degrades gracefully
  instead of dying at cell 900/1000.
* :mod:`repro.resilience.watchdog` — a cheap in-engine guard that turns
  "this cell will never finish" from a mystery timeout into a structured
  :class:`SimulationStalled` with a diagnostic dump of the stuck machine.
* :mod:`repro.resilience.faults` — a deterministic, test-only
  fault-injection harness (worker crashes, hangs, transient exceptions,
  corrupted store writes) used to prove the retry/quarantine/resume
  behavior end-to-end.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.supervisor import CellFailure, RetryPolicy, Supervisor
from repro.resilience.watchdog import SimulationStalled, Watchdog, stall_diagnostic

__all__ = [
    "CellFailure",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SimulationStalled",
    "Supervisor",
    "Watchdog",
    "stall_diagnostic",
]
