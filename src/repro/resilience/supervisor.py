"""Supervised worker pool: crash/timeout tolerant fan-out with retries.

``ProcessPoolExecutor`` alone is brittle for thousand-cell sweeps: one
segfaulting worker raises ``BrokenProcessPool`` and aborts the whole
grid, and a hung cell stalls it forever.  :class:`Supervisor` wraps the
pool with the state machine described in ``docs/resilience.md``:

* **Crash recovery.**  When the pool breaks, the dead executor is torn
  down and a fresh one spawned.  A crash with one cell in flight is
  attributed to that cell; with several in flight it cannot be (every
  future sees the same ``BrokenProcessPool``), so the whole cohort is
  requeued *without blame* and marked suspect, and suspects re-run one
  at a time — where a repeat crash identifies the guilty cell exactly.
  Innocent bystanders never accumulate failure attempts.
* **Timeouts.**  Each submitted cell carries a wall-clock deadline
  (submission is capped at pool width, so a submitted cell is a running
  cell).  An expired cell is blamed, the pool is killed and respawned,
  and unexpired cells are requeued without blame.
* **Retry with backoff.**  A blamed cell re-enters the queue after a
  capped exponential backoff with deterministic jitter
  (:meth:`RetryPolicy.delay` — same label + attempt, same delay, so
  faulty sweeps replay identically).
* **Quarantine.**  After ``retries`` failed re-attempts — or immediately
  for deterministic failures (config ``ValueError``,
  :class:`~repro.resilience.watchdog.SimulationStalled`) — the cell is
  poisoned: recorded as a :class:`CellFailure`, skipped, and the sweep
  completes every healthy cell (graceful degradation).
"""

from __future__ import annotations

import time
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.watchdog import SimulationStalled

#: Exception types that mark a cell as deterministically bad: retrying
#: cannot help, so the cell is quarantined on the first failure.
FATAL_TYPES: Tuple[type, ...] = (ValueError, SimulationStalled)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter."""

    retries: int = 2  # re-attempts after the first failure
    backoff_base: float = 0.25  # seconds; 0 disables sleeping
    backoff_cap: float = 5.0
    jitter: float = 0.1  # +/- fraction of the raw delay

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"RetryPolicy.retries must be >= 0 (got {self.retries})")
        if self.backoff_base < 0:
            raise ValueError(f"RetryPolicy.backoff_base must be >= 0 (got {self.backoff_base})")
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"RetryPolicy.backoff_cap must be >= backoff_base (got {self.backoff_cap})"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"RetryPolicy.jitter must be in [0, 1] (got {self.jitter})")

    def delay(self, label: str, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (1-based) of ``label``.

        Jitter is derived from CRC32 of ``label|attempt`` rather than a
        global RNG, so it is deterministic across processes and runs.
        """
        if self.backoff_base <= 0:
            return 0.0
        raw = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter == 0:
            return raw
        fraction = (zlib.crc32(f"{label}|{attempt}".encode()) % 10_000) / 10_000.0
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * fraction)


@dataclass
class CellFailure:
    """One quarantined cell (``GridReport.failed_outcomes`` entry)."""

    index: int  # position in the supervisor's item sequence
    label: str
    kind: str  # "crash" | "timeout" | "error" | "stall" | "config"
    message: str
    attempts: int
    diagnostic: Optional[Dict] = None  # SimulationStalled dump, if any

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


#: Failure kinds that quarantine without retry (deterministic failures).
FATAL_KINDS = ("stall", "config")


def classify_failure(exc: BaseException) -> str:
    """Failure kind for a worker-raised exception."""
    if isinstance(exc, SimulationStalled):
        return "stall"
    if isinstance(exc, ValueError):
        return "config"
    return "error"


@dataclass
class _Cell:
    index: int
    item: object
    label: str
    attempts: int = 0
    not_before: float = 0.0
    started: float = 0.0
    suspect: bool = False


class _PoolHandle:
    """An executor plus the ability to kill its workers outright."""

    def __init__(self, executor: ProcessPoolExecutor) -> None:
        self.executor = executor

    def kill_workers(self) -> None:
        """Kill worker processes so shutdown cannot block on a hung cell."""
        for process in list(getattr(self.executor, "_processes", {}).values()):
            try:
                process.kill()
            except OSError:  # pragma: no cover - already reaped
                pass

    def shutdown(self, kill: bool = False) -> None:
        if kill:
            self.kill_workers()
        self.executor.shutdown(wait=True, cancel_futures=True)


class Supervisor:
    """Run ``worker_fn`` over items with crash/timeout/retry supervision.

    ``on_result(index, result)`` is invoked in completion order; it may
    raise (e.g. ``SweepAborted``) to abort — the pool is torn down (any
    hung workers killed) and the exception propagates.  After
    :meth:`run` returns, ``failures`` lists quarantined cells and
    ``events`` the retry/suspect history.
    """

    def __init__(
        self,
        worker_fn: Callable,
        *,
        max_workers: int = 1,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        labeler: Callable[[object], str] = str,
        fatal_types: Tuple[type, ...] = FATAL_TYPES,
        tick: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive (got {max_workers})")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be positive (got {cell_timeout})")
        self.worker_fn = worker_fn
        self.max_workers = max_workers
        self.initializer = initializer
        self.initargs = initargs
        self.cell_timeout = cell_timeout
        self.retry = retry or RetryPolicy()
        self.labeler = labeler
        self.fatal_types = fatal_types
        self.tick = tick
        self._clock = clock
        self._sleep = sleep
        self.failures: List[CellFailure] = []
        self.events: List[Dict] = []
        self.respawns = 0
        self.on_quarantine: Optional[Callable[[CellFailure], None]] = None
        #: Liveness hook: called once per scheduler tick with a snapshot
        #: of the in-flight cells — ``[{"label", "attempts", "seconds"}]``
        #: (seconds = wall clock since submission).  Feeds the sweep
        #: heartbeat's per-worker view; throttling is the consumer's job.
        self.on_heartbeat: Optional[Callable[[List[Dict]], None]] = None

    # -- pool lifecycle ----------------------------------------------------

    def _spawn(self) -> _PoolHandle:
        return _PoolHandle(
            ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        )

    def _teardown(self, pool: Optional[_PoolHandle], kill: bool) -> None:
        if pool is not None:
            pool.shutdown(kill=kill)
            self.respawns += 1

    # -- failure bookkeeping ----------------------------------------------

    def _quarantine(self, cell: _Cell, kind: str, message: str, diagnostic=None) -> None:
        failure = CellFailure(
            index=cell.index,
            label=cell.label,
            kind=kind,
            message=message,
            attempts=cell.attempts,
            diagnostic=diagnostic,
        )
        self.failures.append(failure)
        if self.on_quarantine is not None:
            self.on_quarantine(failure)

    def _blame(self, pending: deque, cell: _Cell, kind: str, message: str, diagnostic=None) -> None:
        """One failure attempt for ``cell``: retry with backoff or quarantine."""
        cell.suspect = False
        cell.attempts += 1
        if kind in FATAL_KINDS or cell.attempts > self.retry.retries:
            self._quarantine(cell, kind, message, diagnostic)
            return
        delay = self.retry.delay(cell.label, cell.attempts)
        cell.not_before = self._clock() + delay
        pending.append(cell)
        self.events.append(
            {
                "kind": "retry",
                "label": cell.label,
                "attempt": cell.attempts,
                "failure": kind,
                "delay": round(delay, 4),
                "message": message,
            }
        )

    def _mark_suspects(self, pending: deque, cells: List[_Cell]) -> None:
        """Requeue an unattributable crash cohort, unblamed, for isolation."""
        for cell in cells:
            cell.not_before = 0.0
            cell.suspect = True
            pending.appendleft(cell)
            self.events.append({"kind": "suspect", "label": cell.label, "failure": "crash"})

    # -- scheduling --------------------------------------------------------

    @staticmethod
    def _pop_eligible(pending: deque, now: float, isolate: bool) -> Optional[_Cell]:
        """Next runnable cell; only suspects are runnable in isolate mode."""
        for _ in range(len(pending)):
            cell = pending.popleft()
            if (not isolate or cell.suspect) and cell.not_before <= now:
                return cell
            pending.append(cell)
        return None

    def run(self, items: Sequence, on_result: Callable[[int, object], None]) -> None:
        pending: deque = deque(
            _Cell(index=i, item=item, label=self.labeler(item))
            for i, item in enumerate(items)
        )
        in_flight: Dict[object, _Cell] = {}
        pool: Optional[_PoolHandle] = None
        try:
            while pending or in_flight:
                # While any cell is suspect, run one cell at a time so a
                # repeat crash is attributable (see _mark_suspects).
                isolate = any(cell.suspect for cell in pending) or any(
                    cell.suspect for cell in in_flight.values()
                )
                window = 1 if isolate else self.max_workers
                now = self._clock()
                while pending and len(in_flight) < window:
                    cell = self._pop_eligible(pending, now, isolate)
                    if cell is None:
                        break
                    if pool is None:
                        pool = self._spawn()
                    cell.started = self._clock()
                    in_flight[pool.executor.submit(self.worker_fn, cell.item)] = cell
                if not in_flight:
                    # Everything runnable is backing off; sleep to the
                    # earliest eligibility instead of spinning.
                    wake = min(cell.not_before for cell in pending)
                    self._sleep(max(wake - self._clock(), self.tick * 0.1))
                    continue
                if self.on_heartbeat is not None:
                    now = self._clock()
                    self.on_heartbeat(
                        [
                            {
                                "label": cell.label,
                                "attempts": cell.attempts,
                                "seconds": round(now - cell.started, 3),
                            }
                            for cell in in_flight.values()
                        ]
                    )
                done, _ = wait(list(in_flight), timeout=self.tick, return_when=FIRST_COMPLETED)
                crashed: List[_Cell] = []
                for future in done:
                    cell = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        crashed.append(cell)
                    except self.fatal_types as exc:
                        self._blame(
                            pending,
                            cell,
                            classify_failure(exc),
                            str(exc),
                            diagnostic=getattr(exc, "diagnostic", None),
                        )
                    except Exception as exc:  # worker-raised, pool still healthy
                        self._blame(pending, cell, classify_failure(exc), str(exc))
                    else:
                        cell.suspect = False
                        on_result(cell.index, result)
                if crashed:
                    # The break dooms everything still in flight too.
                    crashed.extend(in_flight.values())
                    in_flight.clear()
                    if len(crashed) == 1:
                        self._blame(pending, crashed[0], "crash", "worker process died")
                    else:
                        self._mark_suspects(pending, crashed)
                    self._teardown(pool, kill=True)
                    pool = None
                elif self.cell_timeout is not None and in_flight:
                    now = self._clock()
                    expired = [
                        (future, cell)
                        for future, cell in in_flight.items()
                        if now - cell.started > self.cell_timeout
                    ]
                    if expired:
                        for future, cell in expired:
                            del in_flight[future]
                            self._blame(
                                pending,
                                cell,
                                "timeout",
                                f"cell exceeded {self.cell_timeout:g}s wall clock",
                            )
                        # Unexpired cells die with the pool through no
                        # fault of their own: requeue without blame.
                        for cell in in_flight.values():
                            cell.not_before = 0.0
                            pending.appendleft(cell)
                        in_flight.clear()
                        self._teardown(pool, kill=True)
                        pool = None
        except BaseException:
            # Abort (SweepAborted, Ctrl-C, ...): kill outstanding workers
            # so a hung cell cannot block the teardown, then re-raise.
            if pool is not None:
                pool.shutdown(kill=True)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown(kill=bool(in_flight))
