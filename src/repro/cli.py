"""Command-line interface.

Examples::

    python -m repro list
    python -m repro run --gpu G17 --pim P2 --policy F3FS --vcs 2
    python -m repro collaborative --policy FR-FCFS --vcs 2
    python -m repro figure fig11 --policies FR-FCFS F3FS
    python -m repro figure fig8 --gpus G6 G17 --pims P1 P2

Figure commands print the same tables the benchmark harness writes to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.policies import PAPER_POLICY_ORDER, available_policies
from repro.experiments import (
    ExperimentScale,
    Runner,
    collaborative_policy,
    competitive_policy,
    fig4_characterization,
    fig5_corun_slowdown,
    fig6_mem_arrival,
    fig8_fairness_throughput,
    fig10_switch_overheads,
    fig11_llm_speedup,
    fig13_intensity_extremes,
    fig14a_ablation,
    format_table,
)
from repro.workloads import PIM_SUITE, RODINIA, pim_ids, rodinia_ids

FIGURES = ("fig4", "fig5", "fig6", "fig8", "fig10", "fig11", "fig13", "fig14a")


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.12, help="workload scale factor")
    parser.add_argument("--channels", type=int, default=8, help="number of memory channels")
    parser.add_argument("--seed", type=int, default=1, help="simulation seed")


def _runner(args) -> Runner:
    return Runner(
        ExperimentScale(
            num_channels=args.channels,
            workload_scale=args.scale,
            seed=args.seed,
            starvation_factor=15,
        )
    )


def cmd_list(args) -> int:
    print("GPU kernels (Table II):")
    for gid in rodinia_ids():
        print(f"  {gid:4s} {RODINIA[gid].name}")
    print("\nPIM kernels (Table III):")
    for pid in pim_ids():
        print(f"  {pid:4s} {PIM_SUITE[pid].name}")
    print("\nScheduling policies:")
    for name in PAPER_POLICY_ORDER:
        marker = "  <- paper's proposal" if name == "F3FS" else ""
        print(f"  {name}{marker}")
    return 0


def cmd_run(args) -> int:
    runner = _runner(args)
    outcome = runner.competitive(args.gpu, args.pim, competitive_policy(args.policy), num_vcs=args.vcs)
    rows = [
        {
            "gpu": outcome.gpu_id,
            "pim": outcome.pim_id,
            "policy": outcome.policy,
            "vcs": outcome.num_vcs,
            "gpu_speedup": outcome.gpu_speedup,
            "pim_speedup": outcome.pim_speedup,
            "fairness": outcome.fairness,
            "throughput": outcome.throughput,
            "switches": outcome.mode_switches,
        }
    ]
    print(format_table(rows, list(rows[0])))
    return 0


def cmd_collaborative(args) -> int:
    runner = _runner(args)
    outcome = runner.collaborative(collaborative_policy(args.policy, args.vcs), num_vcs=args.vcs)
    rows = [
        {
            "policy": outcome.policy,
            "vcs": outcome.num_vcs,
            "speedup": outcome.speedup,
            "ideal": outcome.ideal_speedup,
        }
    ]
    print(format_table(rows, list(rows[0])))
    return 0


def cmd_figure(args) -> int:
    runner = _runner(args)
    gpus = args.gpus or ["G6", "G17", "G19"]
    pims = args.pims or ["P1", "P2", "P7"]
    policies = args.policies or PAPER_POLICY_ORDER

    if args.name == "fig4":
        data = fig4_characterization(runner, gpus, pims)
        rows = [
            {"group": group, "kernel": kid, **metrics}
            for group, kernels in data.items()
            for kid, metrics in kernels.items()
        ]
        print(format_table(rows, ["group", "kernel", "noc_rate", "mc_rate", "blp", "rbhr"]))
    elif args.name == "fig5":
        data = fig5_corun_slowdown(runner, suite=gpus, gpu_corunners=("G6", "G15"))
        rows = [{"corunner": k, "avg_speedup": v} for k, v in data.items()]
        print(format_table(rows, ["corunner", "avg_speedup"]))
    elif args.name == "fig6":
        data = fig6_mem_arrival(runner, gpus, pims, policies)
        rows = [
            {"config": f"VC{vcs}", "policy": policy, **per_gpu}
            for vcs, by_policy in data.items()
            for policy, per_gpu in by_policy.items()
        ]
        print(format_table(rows, ["config", "policy", *gpus]))
    elif args.name == "fig8":
        data = fig8_fairness_throughput(runner, gpus, pims, policies)
        rows = [
            {"config": f"VC{vcs}", "policy": policy, "pim": pid, **metrics}
            for vcs, by_policy in data.items()
            for policy, per_pim in by_policy.items()
            for pid, metrics in per_pim.items()
        ]
        print(format_table(rows, ["config", "policy", "pim", "fairness", "throughput"]))
    elif args.name == "fig10":
        data = fig10_switch_overheads(runner, gpus, pims, policies)
        rows = [
            {"config": f"VC{vcs}", "policy": policy, **metrics}
            for vcs, by_policy in data.items()
            for policy, metrics in by_policy.items()
        ]
        print(
            format_table(
                rows, ["config", "policy", "switches_vs_fcfs", "conflicts_per_switch", "drain_latency"]
            )
        )
    elif args.name == "fig11":
        data = fig11_llm_speedup(runner, policies)
        rows = [
            {"config": f"VC{vcs}", "policy": policy, "speedup": value}
            for vcs, by_policy in data.items()
            for policy, value in by_policy.items()
        ]
        print(format_table(rows, ["config", "policy", "speedup"]))
    elif args.name == "fig13":
        data = fig13_intensity_extremes(runner, gpu_subset=gpus, pim_subset=pims, policies=policies)
        rows = [
            {"config": f"VC{vcs}", "policy": policy, "gpu": gid, **metrics}
            for vcs, by_policy in data.items()
            for policy, per_gpu in by_policy.items()
            for gid, metrics in per_gpu.items()
        ]
        print(format_table(rows, ["config", "policy", "gpu", "fairness", "throughput"]))
    elif args.name == "fig14a":
        rows = fig14a_ablation(runner, gpu_subset=gpus)
        print(format_table(rows, ["label", "fairness", "throughput", "llm_speedup"]))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.name)
    return 0


def cmd_bench(args) -> int:
    import json

    from repro.engine_soa import backend_from_env, resolve_backend
    from repro.perf import SCENARIOS, resolve_scenario, run_engine_bench

    try:
        backend = (
            resolve_backend(args.backend, source="--backend value")
            if args.backend is not None
            else backend_from_env()
        )
        names = list(args.scenarios or [])
        for name in args.scenario or []:
            resolve_scenario(name, source="--scenario value")
            if name not in names:
                names.append(name)
    except ValueError as exc:
        raise SystemExit(str(exc))
    payload = run_engine_bench(
        scenario_names=names or list(SCENARIOS),
        channels=args.channels,
        sms=args.sms,
        scale=args.scale,
        seed=args.seed,
        compare_naive=args.compare,
        stage_breakdown=not args.no_stages,
        backend=backend,
        compare_soa=args.compare_soa,
        stage_profile=args.stage_profile,
    )
    text = json.dumps(payload, indent=2)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"benchmark written to {args.out}")
        for name, entry in payload["scenarios"].items():
            fast = entry["fast"]
            line = f"  {name}: {fast['cycles_per_sec']:,.0f} cyc/s"
            if "speedup_vs_naive" in entry:
                line += f" ({entry['speedup_vs_naive']}x vs naive loop)"
            if "soa" in entry:
                line += f" (SoA {entry['soa']['speedup_vs_object']}x vs object)"
            print(line)
    if args.stage_profile:
        for name, entry in payload["scenarios"].items():
            profile = entry["engine_meta"][backend].get("stage_profile", [])
            if not profile:
                continue
            print(f"  {name} stage profile ({backend} backend):", file=sys.stderr)
            for row in profile:
                print(
                    f"    {row['stage']:20s} {row['seconds']:8.4f}s "
                    f"{row['share']:6.1%}  ({row['calls']:,} calls)",
                    file=sys.stderr,
                )
    return 0


def cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.engine_soa import backend_from_env, resolve_backend
    from repro.experiments.figures import format_table
    from repro.obs.trace import validate_trace, write_stats, write_trace
    from repro.perf.bench import TRACE_SCENARIOS, build_scenario_system

    from repro.core.policies import PolicySpec

    policy_name = _canonical_policy(args.policy)
    try:
        backend = (
            resolve_backend(args.backend, source="--backend value")
            if args.backend is not None
            else backend_from_env()
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    scenario = TRACE_SCENARIOS[args.scenario]
    system = build_scenario_system(
        scenario,
        channels=args.channels,
        sms=args.sms,
        scale=args.scale,
        seed=args.seed,
        policy=PolicySpec(policy_name) if policy_name is not None else None,
        backend=backend,
    )
    telemetry = system.enable_telemetry(
        ring_capacity=args.ring_capacity, timeline_interval=args.interval
    )
    max_cycles = args.max_cycles or scenario.max_cycles
    result = system.run(max_cycles=max_cycles, until_all_complete_once=False)

    out = Path(args.out)
    doc = write_trace(system, out)
    errors = validate_trace(doc)
    if errors:  # pragma: no cover - write_trace validates already
        for error in errors:
            print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    stats_path = out.with_name(out.stem + "_stats.json")
    # The stats document carries the engine provenance next to the
    # telemetry summary, so a trace is attributable to the backend that
    # produced it (engine_meta mirrors BENCH_engine.json's per-backend
    # bookkeeping keys).
    stats = dict(result.telemetry)
    stats["backend"] = backend
    stats["engine_meta"] = {
        backend: {
            "steps_executed": system.steps_executed,
            "cycles_skipped": system.cycles_skipped,
        }
    }
    write_stats(stats, stats_path)

    identity = result.telemetry["hop_identity"]
    print(
        f"trace written to {out} "
        f"({len(doc['traceEvents'])} events, {result.cycles} cycles, "
        f"{len(telemetry.events)} ring events, {telemetry.events.evicted} evicted, "
        f"{backend} backend)"
    )
    print(f"stats written to {stats_path}")
    print(
        f"hop identity: {identity['requests']} requests, "
        f"mean total {identity['mean_total_latency']} vs hop sum "
        f"{identity['mean_hop_sum']} (gap {identity['mean_abs_gap']})"
    )
    from repro.experiments.figures import latency_breakdown_rows

    rows = latency_breakdown_rows(result.telemetry)
    if rows:
        print(format_table(rows, list(rows[0])))
    return 0


def _canonical_policy(name: Optional[str]) -> Optional[str]:
    """Resolve a case-insensitive policy name; None passes through."""
    if name is None:
        return None
    by_lower = {p.lower(): p for p in available_policies()}
    try:
        return by_lower[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown policy {name!r}; choose from {sorted(available_policies())}"
        )


def _parse_shard(text: Optional[str]):
    """Parse ``--shard i/n`` into a (index, count) pair."""
    if text is None:
        return None
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"invalid --shard {text!r}; expected i/n, e.g. 0/3")
    if count < 1 or not 0 <= index < count:
        raise SystemExit(f"invalid --shard {text!r}; need 0 <= i < n")
    return index, count


def _announce_failures(report) -> None:
    """Print one FAILED line per quarantined cell (stderr)."""
    for failure in report.failed_outcomes:
        plural = "attempt" if failure.attempts == 1 else "attempts"
        print(
            f"FAILED {failure.label}: {failure.kind} after "
            f"{failure.attempts} {plural} — {failure.message}",
            file=sys.stderr,
        )


def cmd_sweep(args) -> int:
    """Resumable, shardable benchmark-grid sweep through the result store."""
    from repro.experiments import (
        ExperimentScale,
        RetryPolicy,
        collect_from_store,
        default_grid_tasks,
        run_sweep,
        sweep_rows,
    )

    scale = ExperimentScale(
        num_channels=args.channels,
        workload_scale=args.scale,
        seed=args.seed,
        starvation_factor=15,
    )
    tasks = default_grid_tasks(
        gpu_subset=args.gpus or None,
        pim_subset=args.pims or None,
        policy_names=args.policies or None,
        vc_configs=tuple(args.vcs),
    )
    shard = _parse_shard(args.shard)
    try:
        retry = RetryPolicy(retries=args.retries, backoff_base=args.backoff)
    except ValueError as exc:
        raise SystemExit(f"invalid retry settings: {exc}")
    faults = None
    if args.faults is not None:
        from repro.resilience import FaultPlan

        faults = FaultPlan.from_file(args.faults)

    server = None
    if args.serve_status is not None:
        if args.cache_dir is None:
            raise SystemExit("--serve-status requires --cache-dir")
        from repro.obs.metrics import get_registry
        from repro.obs.server import PortInUseError, StatusServer

        try:
            server = StatusServer(
                args.cache_dir, port=args.serve_status, registry=get_registry()
            )
        except PortInUseError as exc:
            raise SystemExit(str(exc))
        print(
            f"status endpoint: {server.url}/status "
            "(also /metrics and /journal)",
            file=sys.stderr,
        )
    try:
        failures = []
        if args.merge_only:
            if args.cache_dir is None:
                raise SystemExit("--merge-only requires --cache-dir")
            outcomes = collect_from_store(scale, tasks, args.cache_dir)
            hits, misses = len(outcomes), 0
        else:
            report = run_sweep(
                scale,
                tasks,
                store_dir=args.cache_dir,
                max_workers=args.workers,
                shard=shard,
                fresh=not args.resume,
                cell_timeout=args.cell_timeout,
                retry=retry,
                faults=faults,
                watchdog=args.watchdog,
            )
            hits, misses = report.hits, report.misses
            failures = report.failed_outcomes
            _announce_failures(report)
            if shard is not None:
                ran = report.completed
                print(
                    f"shard {args.shard}: {ran}/{len(tasks)} cells "
                    f"({hits} cache hits, {misses} simulated"
                    + (f", {len(failures)} failed" if failures else "")
                    + ")"
                )
                if args.cache_dir:
                    print(
                        "merge with: repro sweep --merge-only --cache-dir "
                        f"{args.cache_dir} (same grid/scale args)"
                    )
                if failures and args.strict:
                    return 2
                return 1 if (args.fail_on_miss and misses) else 0
            outcomes = report.completed_outcomes()

        rows = sweep_rows(outcomes)
        if rows:
            table = format_table(rows, list(rows[0]))
            if args.out == "-":
                print(table)
            else:
                with open(args.out, "w") as fh:
                    fh.write(table + "\n")
                print(f"table written to {args.out}")
        else:
            print("no cells completed", file=sys.stderr)
        print(
            f"cells: {len(rows)} ({hits} cache hits, {misses} simulated"
            + (f", {len(failures)} failed" if failures else "")
            + ")"
        )
        if failures and args.strict:
            print(f"FAIL: {len(failures)} cell(s) quarantined (--strict)", file=sys.stderr)
            return 2
        if args.fail_on_miss and misses:
            print(f"FAIL: expected a fully warm cache but {misses} cells simulated")
            return 1
        return 0
    finally:
        if server is not None:
            server.close()


def _status_line(doc) -> str:
    """One human-readable summary line for a heartbeat document."""
    cells = doc["cells"]
    line = (
        f"[{doc['state']}] {cells['completed']}/{cells['total']} cells "
        f"({cells['hits']} cache hits, {cells['misses']} simulated"
        + (f", {cells['failed']} failed" if cells["failed"] else "")
        + f") {doc['throughput_cells_per_sec']:.2f} cells/s"
    )
    eta = doc.get("eta_seconds")
    if doc["state"] == "running" and eta:
        line += f", ETA {eta:.0f}s"
    in_flight = doc.get("workers", {}).get("in_flight", [])
    if in_flight:
        labels = ", ".join(cell.get("label", "?") for cell in in_flight[:4])
        line += f" | in flight: {labels}"
        if len(in_flight) > 4:
            line += f" (+{len(in_flight) - 4} more)"
    return line


def cmd_status(args) -> int:
    """Show (or follow) the live heartbeat of a sweep against a store."""
    import json
    import time

    from repro.obs.status import read_status

    while True:
        doc = read_status(args.cache_dir)
        if doc is None:
            if not args.watch:
                print(
                    f"no status.json in {args.cache_dir} — no sweep has "
                    "heartbeat into this store yet",
                    file=sys.stderr,
                )
                return 1
        elif args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(_status_line(doc))
            for failure in doc.get("quarantined", []):
                print(
                    f"  quarantined {failure['label']}: {failure['kind']} "
                    f"after {failure['attempts']} attempt(s)",
                    file=sys.stderr,
                )
        if not args.watch:
            return 0
        if doc is not None and doc["state"] != "running":
            return 0
        time.sleep(args.interval)


def cmd_fabric_serve(args) -> int:
    """Coordinate a distributed sweep: lease cells to fabric workers."""
    from repro.experiments import ExperimentScale, RetryPolicy, default_grid_tasks
    from repro.fabric import FabricCoordinator, run_campaign

    scale = ExperimentScale(
        num_channels=args.channels,
        workload_scale=args.scale,
        seed=args.seed,
        starvation_factor=15,
    )
    tasks = default_grid_tasks(
        gpu_subset=args.gpus or None,
        pim_subset=args.pims or None,
        policy_names=args.policies or None,
        vc_configs=tuple(args.vcs),
    )
    try:
        retry = RetryPolicy(retries=args.retries, backoff_base=args.backoff)
    except ValueError as exc:
        raise SystemExit(f"invalid retry settings: {exc}")
    coordinator = FabricCoordinator(
        scale,
        tasks,
        args.cache_dir,
        host=args.host,
        port=args.port,
        ttl=args.ttl,
        retry=retry,
        token=args.token,
        resume_grace=args.resume_grace,
    )

    def announce(coord) -> None:
        recovered = (
            f"; recovered from {coord.recoveries} prior session(s), "
            f"epoch {coord.epoch}"
            if coord.recoveries
            else ""
        )
        print(
            f"fabric coordinator on http://{coord.address} — "
            f"{len(coord.cells)} cells ({coord.hits} already warm){recovered}; "
            f"join with: repro fabric work --connect {coord.address}",
            file=sys.stderr,
        )

    summary = run_campaign(coordinator, linger=args.linger, announce=announce)
    print(
        f"campaign {summary['state']}: {summary['completed']}/{summary['total']} "
        f"cells ({summary['hits']} cache hits, {summary['misses']} simulated"
        + (f", {summary['failed']} failed" if summary["failed"] else "")
        + f") via {len(summary['workers'])} worker(s)"
        + (" [drained]" if summary["drained"] else "")
    )
    for failure in coordinator.failures:
        print(
            f"  quarantined {failure['label']}: {failure['kind']} "
            f"after {failure['attempts']} attempt(s)",
            file=sys.stderr,
        )
    if summary["state"] != "complete":
        # A graceful drain (SIGTERM / POST /drain) is a clean exit: the
        # ledger lets the next `fabric serve` resume the remainder.
        return 0 if summary["drained"] else 1
    if summary["failed"] and args.strict:
        print(f"FAIL: {summary['failed']} cell(s) quarantined (--strict)", file=sys.stderr)
        return 2
    return 0


def cmd_fabric_work(args) -> int:
    """Join a fabric campaign as a worker: lease, simulate, stream back."""
    import tempfile

    from repro.experiments import RetryPolicy
    from repro.fabric import FabricError, FabricWorker

    try:
        retry = RetryPolicy(retries=args.retries, backoff_base=args.backoff)
    except ValueError as exc:
        raise SystemExit(f"invalid retry settings: {exc}")
    scratch = args.scratch_dir or tempfile.mkdtemp(prefix="repro-fabric-")
    worker = FabricWorker(
        args.id or f"worker-{os.getpid()}",
        args.connect,
        scratch,
        retry=retry,
        token=args.token,
        crash_after_lease=args.crash_after_lease,
        watchdog_window=args.watchdog,
    )
    try:
        summary = worker.run()
    except FabricError as exc:
        raise SystemExit(f"cannot join fabric at {args.connect}: {exc}")
    print(
        f"worker {summary['worker']} done: {summary['completed']} completed, "
        f"{summary['leases']} leases"
        + (f", {summary['rejected']} rejected" if summary["rejected"] else "")
        + (f", {summary['failed']} failed" if summary["failed"] else "")
        + (f", {summary['reconnects']} reconnects" if summary["reconnects"] else "")
        + (f", {summary['readopted']} readopted" if summary["readopted"] else "")
    )
    return 0


def cmd_fabric_ledger(args) -> int:
    """Inspect a coordinator's write-ahead ledger (operator runbook aid)."""
    import json
    from pathlib import Path

    from repro.fabric import LEDGER_FILENAME, LedgerCorrupt, ledger_summary

    path = Path(args.cache_dir) / LEDGER_FILENAME
    try:
        summary = ledger_summary(path)
    except LedgerCorrupt as exc:
        print(
            f"CORRUPT: {exc}\n"
            f"  (a torn final line would have been repaired automatically; "
            f"damage before the tail means records were lost — do not resume "
            f"from this ledger)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if not summary["records"]:
        print(f"no ledger at {path}")
        return 0
    cells = ", ".join(f"{n} {s}" for s, n in sorted(summary["cells"].items()))
    print(
        f"ledger {path}: epoch {summary['epoch']}, "
        f"{summary['sessions']} session(s), {summary['records']} records"
        + (" [torn tail repaired on next open]" if summary["torn_tail"] else "")
    )
    print(
        f"  cells: {cells or 'none'};  rejects: {summary['rejects']};  "
        f"closed: {summary['closed'] or 'no (in flight or killed)'}"
        + (";  draining" if summary["draining"] else "")
    )
    for lease in summary["in_flight"]:
        print(
            f"  in-flight: {lease['label']} held by {lease['worker']} "
            f"({lease['lease_id']}, epoch {lease['epoch']}, "
            f"attempt {lease['attempt']})"
        )
    for failure in summary["quarantined"]:
        print(
            f"  quarantined: {failure['label']} ({failure['kind']} "
            f"after {failure['attempts']} attempt(s))"
        )
    return 0


def cmd_store(args) -> int:
    """Inspect and maintain a content-addressed result store."""
    from repro.store import ResultStore, code_version

    store = ResultStore(args.cache_dir)
    if args.action == "ls":
        count = 0
        for entry in store.entries():
            kind = entry.kind or "?"
            label = entry.label or "?"
            print(
                f"{entry.key[:16]}  {entry.status:8s}"
                f"{kind:12s}{label}  ({entry.size} B)"
            )
            count += 1
        print(f"{count} entries (code version {code_version()})")
        return 0
    if args.action == "verify":
        report = store.verify()
        ok, stale, corrupt = (len(report[s]) for s in ("ok", "stale", "corrupt"))
        print(f"ok: {ok}  stale: {stale}  corrupt: {corrupt}")
        for entry in report["corrupt"]:
            print(f"  corrupt: {entry.path}")
        return 1 if corrupt else 0
    if args.action == "gc":
        removed = store.gc()
        print(
            f"removed {removed['stale']} stale and {removed['corrupt']} "
            "corrupt entries"
        )
        return 0
    raise ValueError(args.action)  # pragma: no cover - argparse restricts


def cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    runner = _runner(args)
    text = generate_report(
        runner,
        gpu_subset=args.gpus or ["G6", "G17", "G19"],
        pim_subset=args.pims or ["P1", "P2", "P7"],
        policies=args.policies,
    )
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Concurrent PIM and load/store servicing simulator (ISPASS 2025 reproduction)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the top functions",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="with --profile, dump pstats data to FILE (for snakeviz/pstats) "
        "instead of printing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list kernels and policies").set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="run one competitive co-execution")
    run.add_argument("--gpu", default="G17", choices=rodinia_ids())
    run.add_argument("--pim", default="P1", choices=pim_ids())
    run.add_argument("--policy", default="F3FS", choices=sorted(available_policies()))
    run.add_argument("--vcs", type=int, default=1, choices=(1, 2))
    _add_scale_args(run)
    run.set_defaults(func=cmd_run)

    collab = sub.add_parser("collaborative", help="run the LLM collaborative scenario")
    collab.add_argument("--policy", default="F3FS", choices=sorted(available_policies()))
    collab.add_argument("--vcs", type=int, default=1, choices=(1, 2))
    _add_scale_args(collab)
    collab.set_defaults(func=cmd_collaborative)

    figure = sub.add_parser("figure", help="regenerate a paper figure's table")
    figure.add_argument("name", choices=FIGURES)
    figure.add_argument("--gpus", nargs="*", choices=rodinia_ids())
    figure.add_argument("--pims", nargs="*", choices=pim_ids())
    figure.add_argument("--policies", nargs="*", choices=PAPER_POLICY_ORDER)
    _add_scale_args(figure)
    figure.set_defaults(func=cmd_figure)

    from repro.perf.bench import SCENARIOS as BENCH_SCENARIOS
    from repro.perf.bench import TRACE_SCENARIOS

    bench = sub.add_parser("bench", help="benchmark the simulation engine itself")
    bench.add_argument(
        "--scenarios",
        nargs="*",
        choices=sorted(BENCH_SCENARIOS),
        help="scenarios to run (default: all)",
    )
    bench.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run a single scenario (repeatable; combines with --scenarios)",
    )
    bench.add_argument("--sms", type=int, default=10, help="number of SMs")
    bench.add_argument(
        "--backend",
        default=None,
        help="engine backend for the timed runs: object | soa "
        "(default: REPRO_ENGINE or object)",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="also time the naive cycle-by-cycle loop and report the speedup",
    )
    bench.add_argument(
        "--compare-soa",
        action="store_true",
        help="also time the SoA engine per scenario and record its speedup "
        "over the object run (object backend only)",
    )
    bench.add_argument(
        "--no-stages",
        action="store_true",
        help="skip the instrumented per-stage breakdown run",
    )
    bench.add_argument(
        "--stage-profile",
        action="store_true",
        help="also run each scenario under the engine stage profiler and "
        "record the ranked per-body attribution table (L2 tag/MSHR, DRAM "
        "timing, completion/reply delivery, ...) in engine_meta",
    )
    bench.add_argument("--out", default="-", help="output JSON file ('-' = stdout)")
    _add_scale_args(bench)
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="run a scenario with telemetry and export a Perfetto-loadable trace",
    )
    trace.add_argument(
        "--scenario",
        default="saturated_corun",
        choices=sorted(TRACE_SCENARIOS),
        help="scenario to trace (perf-bench scenarios + mode_timeline)",
    )
    trace.add_argument(
        "--policy",
        default=None,
        help="override the scenario's scheduling policy (case-insensitive)",
    )
    trace.add_argument("--out", default="trace.json", help="trace-event JSON output path")
    trace.add_argument(
        "--max-cycles", type=int, default=None, help="override the scenario's horizon"
    )
    trace.add_argument("--sms", type=int, default=10, help="number of SMs")
    trace.add_argument(
        "--interval", type=int, default=100, help="queue-occupancy sampling interval"
    )
    trace.add_argument(
        "--ring-capacity", type=int, default=65536, help="event ring-buffer capacity"
    )
    trace.add_argument(
        "--backend",
        default=None,
        help="engine backend for the traced run: object | soa "
        "(default: REPRO_ENGINE or object); recorded in the stats JSON",
    )
    _add_scale_args(trace)
    trace.set_defaults(func=cmd_trace)

    sweep = sub.add_parser(
        "sweep",
        help="run the benchmark grid through the resumable result store",
    )
    sweep.add_argument("--gpus", nargs="*", choices=rodinia_ids())
    sweep.add_argument("--pims", nargs="*", choices=pim_ids())
    sweep.add_argument("--policies", nargs="*", choices=PAPER_POLICY_ORDER)
    sweep.add_argument(
        "--vcs", nargs="*", type=int, default=[1, 2], choices=(1, 2),
        help="VC configurations to include (default: 1 2)",
    )
    sweep.add_argument("--workers", type=int, default=1, help="worker processes")
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="result-store root; completed cells persist here as they finish",
    )
    sweep.add_argument(
        "--shard",
        default=None,
        metavar="i/n",
        help="run only this round-robin shard of the grid (e.g. 0/3)",
    )
    resume = sweep.add_mutually_exclusive_group()
    resume.add_argument(
        "--resume",
        dest="resume",
        action="store_true",
        default=True,
        help="skip cells already in the store (default)",
    )
    resume.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="recompute every cell (still writes results through the store)",
    )
    sweep.add_argument(
        "--merge-only",
        action="store_true",
        help="assemble the full table from the store without running anything",
    )
    sweep.add_argument(
        "--fail-on-miss",
        action="store_true",
        help="exit 1 if any cell had to be simulated (determinism canary)",
    )
    sweep.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any cell exceeding this wall-clock budget",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-attempts before a failing cell is quarantined (default: 2)",
    )
    sweep.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base retry backoff, doubled per attempt (0 disables; default: 0.25)",
    )
    sweep.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 if any cell was quarantined (default: degrade gracefully)",
    )
    sweep.add_argument(
        "--watchdog",
        type=int,
        default=None,
        metavar="CYCLES",
        help="arm the in-engine stall watchdog with this no-progress window",
    )
    sweep.add_argument(
        "--faults",
        default=None,
        metavar="FILE",
        help="JSON fault-injection plan (testing; see docs/resilience.md)",
    )
    sweep.add_argument(
        "--serve-status",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /status, /metrics, and /journal over HTTP while the "
        "sweep runs (0 = ephemeral port; requires --cache-dir)",
    )
    sweep.add_argument("--out", default="-", help="table output file ('-' = stdout)")
    _add_scale_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    status = sub.add_parser(
        "status",
        help="show the live heartbeat (status.json) of a sweep's store",
    )
    status.add_argument(
        "--cache-dir", required=True, help="result-store root directory"
    )
    status.add_argument(
        "--watch",
        action="store_true",
        help="keep printing until the campaign leaves the 'running' state",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="polling interval with --watch (default: 1)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="print the raw status.json document instead of a summary line",
    )
    status.set_defaults(func=cmd_status)

    fabric = sub.add_parser(
        "fabric",
        help="distributed sweep fabric: coordinator + workers over HTTP",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    serve = fabric_sub.add_parser(
        "serve",
        help="coordinate a campaign: lease grid cells to workers over HTTP",
    )
    serve.add_argument("--gpus", nargs="*", choices=rodinia_ids())
    serve.add_argument("--pims", nargs="*", choices=pim_ids())
    serve.add_argument("--policies", nargs="*", choices=PAPER_POLICY_ORDER)
    serve.add_argument(
        "--vcs", nargs="*", type=int, default=[1, 2], choices=(1, 2),
        help="VC configurations to include (default: 1 2)",
    )
    serve.add_argument(
        "--cache-dir", required=True, help="shared result-store root directory"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8347, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="lease time-to-live; a worker silent this long forfeits its cell",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-leases before an expiring/failing cell is quarantined",
    )
    serve.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base re-lease backoff, doubled per attempt (default: 0.25)",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="keep serving this long after completion so workers see 'done'",
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 if any cell was quarantined",
    )
    serve.add_argument(
        "--token",
        default=os.environ.get("REPRO_FABRIC_TOKEN") or None,
        help="shared secret required on every fabric request "
        "(default: $REPRO_FABRIC_TOKEN)",
    )
    serve.add_argument(
        "--resume-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="how long recovered in-flight leases wait to be re-presented "
        "via /resume before expiring (default: the lease TTL)",
    )
    _add_scale_args(serve)
    serve.set_defaults(func=cmd_fabric_serve)

    work = fabric_sub.add_parser(
        "work",
        help="join a fabric campaign: lease cells, simulate, stream results",
    )
    work.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    work.add_argument("--id", default=None, help="worker id (default: worker-<pid>)")
    work.add_argument(
        "--scratch-dir",
        default=None,
        help="local scratch store (default: a fresh temp directory)",
    )
    work.add_argument(
        "--retries",
        type=int,
        default=2,
        help="local re-attempts before reporting a cell failed (default: 2)",
    )
    work.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="base retry backoff, doubled per attempt (default: 0.25)",
    )
    work.add_argument(
        "--watchdog",
        type=int,
        default=None,
        metavar="CYCLES",
        help="arm the in-engine stall watchdog with this no-progress window",
    )
    work.add_argument(
        "--crash-after-lease",
        type=int,
        default=None,
        metavar="N",
        help="testing: hard-exit while holding the (N+1)th lease "
        "(0 = die on the first cell; exercises lease expiry)",
    )
    work.add_argument(
        "--token",
        default=os.environ.get("REPRO_FABRIC_TOKEN") or None,
        help="shared secret presented on every fabric request "
        "(default: $REPRO_FABRIC_TOKEN)",
    )
    work.set_defaults(func=cmd_fabric_work)

    ledger = fabric_sub.add_parser(
        "ledger",
        help="inspect a coordinator's write-ahead lease ledger",
    )
    ledger.add_argument(
        "--cache-dir", required=True, help="result-store root directory"
    )
    ledger.add_argument(
        "--json",
        action="store_true",
        help="print the full ledger summary as JSON",
    )
    ledger.set_defaults(func=cmd_fabric_ledger)

    store = sub.add_parser("store", help="inspect the content-addressed result store")
    store.add_argument("action", choices=("ls", "gc", "verify"))
    store.add_argument(
        "--cache-dir", required=True, help="result-store root directory"
    )
    store.set_defaults(func=cmd_store)

    report = sub.add_parser("report", help="generate a markdown reproduction report")
    report.add_argument("--out", default="-", help="output file ('-' = stdout)")
    report.add_argument("--gpus", nargs="*", choices=rodinia_ids())
    report.add_argument("--pims", nargs="*", choices=pim_ids())
    report.add_argument("--policies", nargs="*", choices=PAPER_POLICY_ORDER)
    _add_scale_args(report)
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if not args.profile:
            try:
                return args.func(args)
            except BrokenPipeError:
                # Downstream pipe closed early (e.g. `repro store ls | head`):
                # stop quietly instead of tracebacking.  Detach stdout so the
                # interpreter's exit-time flush doesn't raise again.
                devnull = os.open(os.devnull, os.O_WRONLY)
                os.dup2(devnull, sys.stdout.fileno())
                return 0

        import cProfile
        import pstats

        profiler = cProfile.Profile()
        status = profiler.runcall(args.func, args)
        profiler.create_stats()
        if args.profile_out is None:
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
        else:
            profiler.dump_stats(args.profile_out)
            print(f"profile written to {args.profile_out}", file=sys.stderr)
        return status
    except KeyboardInterrupt:
        # Completed cells are already persisted (atomic store puts, whole
        # journal lines), so Ctrl-C loses at most in-flight work; re-run
        # with --resume to pick up where this invocation stopped.
        print("interrupted — completed cells are persisted; re-run to resume", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
