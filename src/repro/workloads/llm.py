"""Collaborative scenario: a GPT-3-6.7B-like decoder layer (Section III-B).

The paper overlaps QKV generation (three GEMMs on the GPU SMs) with
multi-head attention (GEMV + softmax on PIM), following AttAcc/NeuPIMs.
Model shape: batch 128, sequence length 1024, embedding 4096; KV cache
loaded on demand.

We derive two kernel specs sized so that, standalone, QKV generation runs
noticeably longer than MHA — the property that drives Figure 11's analysis
(the PIM side floods the memory path even though the GPU side is the
critical path).  Sizes are scaled by ``LaunchContext.scale`` like every
other workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.workloads.synthetic import GPUKernelProfile, PIMGemvKernel


@dataclass(frozen=True)
class LLMShape:
    """Transformer-layer dimensions (paper defaults)."""

    batch: int = 128
    seq_len: int = 1024
    embed: int = 4096
    heads: int = 32

    @property
    def head_dim(self) -> int:
        return self.embed // self.heads


def qkv_gemm_kernel(shape: LLMShape = LLMShape()) -> GPUKernelProfile:
    """QKV generation: three embed x embed GEMMs on the GPU.

    GEMMs stream tiles with high row locality and strong L2 reuse
    (weight tiles are shared across the batch), with real compute between
    memory phases — a moderately memory-intensive, long-running kernel.
    """
    # Work per warp grows with the model dimensions; normalized to keep
    # scaled runs tractable while preserving the QKV:MHA duration ratio
    # (QKV generation is the longer-running stage, roughly 1.5x MHA).
    # GEMMs are tiled: most accesses hit weight tiles resident in the L2,
    # and deep warp concurrency hides the latency of the misses.
    accesses = shape.embed  # three GEMMs' traffic after L2 tiling
    return GPUKernelProfile(
        name="llm-qkv",
        accesses_per_warp=accesses,
        compute_per_phase=30,
        accesses_per_phase=8,
        row_locality=0.85,
        l2_reuse=0.90,
        store_fraction=0.05,
        footprint_rows=48,
        bank_spread=16,
        hot_words=48,
        warps_override=8,
    )


def mha_pim_kernel(shape: LLMShape = LLMShape()) -> PIMGemvKernel:
    """Multi-head attention on PIM: score GEMV, softmax, context GEMV.

    Each output group streams KV rows with MAC blocks and performs
    register-file softmax work (EXP) before storing — high-locality,
    high-rate PIM traffic.
    """
    outputs = shape.seq_len
    macs = max(4, shape.head_dim // 16)
    return PIMGemvKernel(
        name="llm-mha",
        outputs_per_warp=outputs,
        macs_per_output=macs,
        rf_ops_per_output=1,  # softmax exponentials
    )


def llm_kernels(shape: LLMShape = LLMShape()) -> Tuple[GPUKernelProfile, PIMGemvKernel]:
    """The (GPU, PIM) kernel pair for the collaborative scenario."""
    return qkv_gemm_kernel(shape), mha_pim_kernel(shape)
