"""Workload models: Rodinia GPU profiles, PIM suite, LLM scenario."""

from repro.workloads.llm import LLMShape, llm_kernels, mha_pim_kernel, qkv_gemm_kernel
from repro.workloads.pim_suite import PIM_SUITE, get_pim_kernel, pim_ids
from repro.workloads.rodinia import (
    COMPUTE_INTENSIVE,
    FIGURE5_CORUNNERS,
    MEMORY_INTENSIVE,
    RODINIA,
    get_gpu_kernel,
    rodinia_ids,
)
from repro.workloads.synthetic import (
    GPUKernelProfile,
    PIMGemvKernel,
    PIMStreamKernel,
    make_mem_request,
    make_pim_request,
)
from repro.workloads.traces import TraceKernel, save_trace

__all__ = [
    "COMPUTE_INTENSIVE",
    "FIGURE5_CORUNNERS",
    "GPUKernelProfile",
    "LLMShape",
    "MEMORY_INTENSIVE",
    "PIMGemvKernel",
    "PIMStreamKernel",
    "PIM_SUITE",
    "RODINIA",
    "TraceKernel",
    "get_gpu_kernel",
    "get_pim_kernel",
    "llm_kernels",
    "make_mem_request",
    "make_pim_request",
    "mha_pim_kernel",
    "pim_ids",
    "qkv_gemm_kernel",
    "rodinia_ids",
    "save_trace",
]
