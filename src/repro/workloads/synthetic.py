"""Synthetic workload generators.

The paper drives its simulator with CUDA binaries; we do not have GPGPU-Sim
or the benchmarks' traces, so each kernel is modelled as a parameterized
synthetic request stream whose *statistics* — arrival rate, row-buffer
locality, bank-level parallelism, L2 reuse, read/write mix — are what the
scheduling policies react to (see DESIGN.md, substitution table).

Two families are provided:

* :class:`GPUKernelProfile` — load/store kernels (the Rodinia suite is a
  table of these profiles, :mod:`repro.workloads.rodinia`).
* :class:`PIMStreamKernel` / :class:`PIMGemvKernel` — block-structured PIM
  kernels following Figure 3: RF-sized blocks of ops per operand row,
  sequential blocks, one warp pinned to one channel.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.gpu.kernel import KernelSpec, LaunchContext, Phase
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType


def make_mem_request(
    ctx: LaunchContext,
    channel: int,
    bank: int,
    row: int,
    column: int,
    write: bool = False,
) -> Request:
    """Build a MEM request with both the flat address and decoded fields."""
    address = ctx.mapper.encode(channel, bank, row, column)
    request = Request(
        type=RequestType.MEM_STORE if write else RequestType.MEM_LOAD,
        address=address,
        kernel_id=ctx.kernel_id,
    )
    request.channel, request.bank, request.row, request.column = channel, bank, row, column
    return request


def make_pim_request(
    ctx: LaunchContext,
    channel: int,
    row: int,
    column: int,
    op: PIMOp,
) -> Request:
    """Build a PIM request (bank field is nominal: PIM runs on all banks)."""
    address = ctx.mapper.encode(channel, 0, row, column)
    request = Request(type=RequestType.PIM, address=address, kernel_id=ctx.kernel_id, pim_op=op)
    request.channel, request.bank, request.row, request.column = channel, 0, row, column
    return request


# ---------------------------------------------------------------------------
# GPU (load/store) kernels
# ---------------------------------------------------------------------------


@dataclass
class GPUKernelProfile(KernelSpec):
    """A load/store kernel described by its memory-behaviour statistics.

    Parameters (all per warp unless noted):

    accesses_per_warp:
        Total memory accesses the warp performs (scaled by ``ctx.scale``).
    compute_per_phase:
        Cycles of compute between memory phases — the memory-intensity
        dial (0 = fully memory bound).
    accesses_per_phase:
        Loads issued back-to-back per phase (memory-level parallelism).
    row_locality:
        Probability that the next *cold* access continues the current
        (bank, row) streak at the next column — controls DRAM RBHR.
    l2_reuse:
        Probability an access targets the warp's hot region and is
        expected to hit in the L2 — controls how much NoC traffic is
        filtered before DRAM.
    store_fraction:
        Fraction of accesses that are stores (fire-and-forget).
    footprint_rows:
        Distinct rows per bank in the cold working set.
    bank_spread:
        Number of banks the warp's cold accesses cover — controls BLP.
    hot_words:
        Size of the hot region (words) backing ``l2_reuse``.
    """

    name: str = "synthetic-gpu"
    kind: str = "gpu"
    accesses_per_warp: int = 512
    compute_per_phase: int = 30
    accesses_per_phase: int = 4
    row_locality: float = 0.5
    l2_reuse: float = 0.3
    store_fraction: float = 0.15
    footprint_rows: int = 64
    bank_spread: int = 16
    hot_words: int = 64
    #: override the system's warps per SM (latency-tolerant kernels run
    #: more concurrent warps; None = use the configured default)
    warps_override: int = 0

    def warps_per_sm(self, ctx: LaunchContext) -> int:
        return self.warps_override or ctx.warps_per_sm

    def __post_init__(self) -> None:
        for prob_name in ("row_locality", "l2_reuse", "store_fraction"):
            value = getattr(self, prob_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{prob_name} must be in [0, 1]")
        if self.accesses_per_phase < 1 or self.accesses_per_warp < 1:
            raise ValueError("access counts must be positive")

    def warp_program(self, ctx: LaunchContext, sm_slot: int, warp: int) -> Iterator[Phase]:
        rng = ctx.rng
        banks = min(self.bank_spread, ctx.banks_per_channel)
        total = ctx.scaled(self.accesses_per_warp)
        columns = ctx.mapper.num_columns

        # Hot region: a small *kernel-wide* set of words that will live in
        # L2 — shared across warps so reuse actually accumulates (shared
        # read-only data, the usual source of GPU L2 hits).
        hot_rng = np.random.default_rng(zlib.crc32(self.name.encode()))
        hot: List[Tuple[int, int, int, int]] = []
        for i in range(self.hot_words):
            hot.append(
                (
                    int(hot_rng.integers(ctx.num_channels)),
                    int(hot_rng.integers(banks)),
                    int(hot_rng.integers(self.footprint_rows)),
                    int(hot_rng.integers(columns)),
                )
            )

        channel = int(rng.integers(ctx.num_channels))
        bank = int(rng.integers(banks))
        row = int(rng.integers(self.footprint_rows))
        column = int(rng.integers(columns))

        issued = 0
        while issued < total:
            burst = min(self.accesses_per_phase, total - issued)
            requests: List[Request] = []
            for _ in range(burst):
                write = rng.random() < self.store_fraction
                if hot and rng.random() < self.l2_reuse:
                    h_channel, h_bank, h_row, h_column = hot[int(rng.integers(len(hot)))]
                    requests.append(
                        make_mem_request(ctx, h_channel, h_bank, h_row, h_column, write=False)
                    )
                else:
                    if rng.random() < self.row_locality:
                        column += 1
                        if column >= columns:
                            column = 0
                            row = (row + 1) % self.footprint_rows
                    else:
                        channel = int(rng.integers(ctx.num_channels))
                        bank = int(rng.integers(banks))
                        row = int(rng.integers(self.footprint_rows))
                        column = int(rng.integers(columns))
                    requests.append(make_mem_request(ctx, channel, bank, row, column, write=write))
                issued += 1
            compute = self.compute_per_phase
            if compute > 3:
                compute = int(compute * (0.75 + 0.5 * rng.random()))
            yield Phase(compute_cycles=compute, requests=requests, wait_for_replies=True)


# ---------------------------------------------------------------------------
# PIM kernels
# ---------------------------------------------------------------------------

#: (op kind, operand role) — roles index separate row regions (vectors).
OpPattern = Sequence[Tuple[PIMOpKind, int]]


@dataclass
class PIMStreamKernel(KernelSpec):
    """Block-structured streaming PIM kernel (Figure 3 generalized).

    Per RF-sized group of elements, one block of ops per ``ops`` entry is
    emitted: e.g. STREAM-Add's ``[(LOAD, 0), (ADD, 1), (STORE, 2)]`` gives
    8 loads from vector *a*, 8 adds against *b*, 8 stores to *c*, then the
    next element group.  Each warp owns one channel (Section III-B
    mapping) and streams independently.

    Two operand layouts are supported:

    * ``"same_row"`` (default) — the operands share each DRAM row at
      disjoint column ranges, so consecutive blocks reuse the open row and
      the kernel achieves the ~99% row-buffer locality the paper measures
      for its PIM suite (e.g. 99.6% for STREAM-Scale, Section VI-A).
    * ``"separate_rows"`` — the literal Figure 3 layout with one row per
      operand; every block then pays a row switch (87.5% locality with an
      8-entry RF), useful for studying switch-heavy streams.

    ``elements_per_warp`` is the number of elements processed (scaled).
    """

    name: str = "synthetic-pim"
    kind: str = "pim"
    ops: OpPattern = field(
        default_factory=lambda: (
            (PIMOpKind.LOAD, 0),
            (PIMOpKind.ADD, 1),
            (PIMOpKind.STORE, 2),
        )
    )
    elements_per_warp: int = 2048
    #: extra register-only ops interleaved per block (e.g. softmax EXPs)
    rf_ops_per_block: int = 0
    layout: str = "same_row"

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("ops pattern must be non-empty")
        if self.elements_per_warp < 1:
            raise ValueError("elements_per_warp must be positive")
        if self.layout not in ("same_row", "separate_rows"):
            raise ValueError("layout must be 'same_row' or 'separate_rows'")

    @property
    def num_operands(self) -> int:
        return max(role for _, role in self.ops) + 1

    def warps_per_sm(self, ctx: LaunchContext) -> int:
        """One warp per channel: PIM warps pin to channels, so extra warps
        would interleave streams within a channel and break block order."""
        return max(1, min(ctx.warps_per_sm, ctx.num_channels // max(1, ctx.num_sms)))

    def operand_location(self, ctx: LaunchContext, role: int, element: int) -> Tuple[int, int]:
        """(row, column) of one operand element under the active layout.

        Also used by hosts (examples/tests) to initialize operand data.
        """
        columns = ctx.mapper.num_columns
        operands = self.num_operands
        if self.layout == "same_row":
            cols_per_operand = max(1, columns // operands)
            row = element // cols_per_operand
            column = role * cols_per_operand + element % cols_per_operand
            return row, min(column, columns - 1)
        row = (element // columns) * operands + role
        return row, element % columns

    def warp_program(self, ctx: LaunchContext, sm_slot: int, warp: int) -> Iterator[Phase]:
        channel = (sm_slot * self.warps_per_sm(ctx) + warp) % ctx.num_channels
        block = ctx.rf_entries_per_bank
        total = ctx.scaled(self.elements_per_warp)

        element = 0
        while element < total:
            group = min(block, total - element)
            for op_kind, role in self.ops:
                requests = []
                row = -1
                for i in range(group):
                    row, column = self.operand_location(ctx, role, element + i)
                    reg = i % ctx.rf_entries_per_bank
                    op = PIMOp(op_kind, dst=reg, src=reg)
                    requests.append(make_pim_request(ctx, channel, row, column, op))
                for _ in range(self.rf_ops_per_block):
                    op = PIMOp(PIMOpKind.EXP, dst=0, src=0)
                    requests.append(make_pim_request(ctx, channel, max(row, 0), 0, op))
                yield Phase(compute_cycles=0, requests=requests, wait_for_replies=False)
            element += group


@dataclass
class PIMGemvKernel(KernelSpec):
    """MAC-heavy PIM kernel modelling a fully-connected / GEMV layer.

    For each output group, ``macs_per_output`` MAC blocks stream weight
    rows before a single store block writes the outputs — the
    high-locality, low-store-rate pattern of FC layers on bank-level PIM
    (Table III, P7; also the MHA GEMVs of the collaborative scenario).
    """

    name: str = "synthetic-gemv"
    kind: str = "pim"
    outputs_per_warp: int = 128
    macs_per_output: int = 16
    rf_ops_per_output: int = 0  # e.g. softmax EXP/MAX work

    def __post_init__(self) -> None:
        if self.outputs_per_warp < 1 or self.macs_per_output < 1:
            raise ValueError("sizes must be positive")

    def warps_per_sm(self, ctx: LaunchContext) -> int:
        """One warp per channel (see PIMStreamKernel.warps_per_sm)."""
        return max(1, min(ctx.warps_per_sm, ctx.num_channels // max(1, ctx.num_sms)))

    def warp_program(self, ctx: LaunchContext, sm_slot: int, warp: int) -> Iterator[Phase]:
        channel = (sm_slot * self.warps_per_sm(ctx) + warp) % ctx.num_channels
        block = ctx.rf_entries_per_bank
        columns = ctx.mapper.num_columns
        outputs = ctx.scaled(self.outputs_per_warp)

        # Weights are laid out row-major: MACs stream consecutive columns
        # of a weight row, so a row switch only happens every ``columns``
        # MACs — PIM kernels' characteristic high row locality.  Each MAC
        # accumulates into the RF entry of the output it contributes to.
        mac_index = 0
        for out_group_base in range(0, outputs, block):
            group = min(block, outputs - out_group_base)
            total_macs = self.macs_per_output * group
            emitted = 0
            while emitted < total_macs:
                chunk = min(block, total_macs - emitted)
                requests = []
                for i in range(chunk):
                    weight_row = mac_index // columns
                    column = mac_index % columns
                    mac_index += 1
                    dst = (emitted + i) % group
                    op = PIMOp(PIMOpKind.MAC, dst=dst, src=dst)
                    requests.append(make_pim_request(ctx, channel, weight_row, column, op))
                emitted += chunk
                yield Phase(compute_cycles=0, requests=requests, wait_for_replies=False)
            # Optional register-only work (softmax), then store the outputs.
            requests = []
            current_row = mac_index // columns
            for _ in range(self.rf_ops_per_output * group):
                requests.append(
                    make_pim_request(
                        ctx, channel, current_row, 0, PIMOp(PIMOpKind.EXP, dst=0, src=0)
                    )
                )
            for i in range(group):
                op = PIMOp(PIMOpKind.STORE, src=i % block)
                out_row = 1_000_000 + out_group_base // columns
                requests.append(
                    make_pim_request(ctx, channel, out_row, (out_group_base + i) % columns, op)
                )
            yield Phase(compute_cycles=0, requests=requests, wait_for_replies=False)
