"""Trace export and replay.

The synthetic generators model the paper's workloads, but a downstream
user will often want to drive the simulator with their *own* request
streams.  This module defines a simple JSON-lines trace format and two
adapters:

* :func:`save_trace` — materialize any :class:`KernelSpec`'s warp
  programs into a trace file;
* :class:`TraceKernel` — a spec that replays a trace file, one program
  per (sm_slot, warp).

Format: the first line is a header object; every following line is one
phase::

    {"kind": "gpu", "name": "...", "version": 1}
    {"sm": 0, "warp": 0, "compute": 30, "wait": true,
     "requests": [{"t": "load", "ch": 0, "ba": 3, "ro": 17, "co": 5}, ...]}

PIM requests carry ``"op"`` (the PIM op kind) and ``"dst"``/``"src"``
register indices.  Addresses are reconstructed from the coordinates with
the active address map, so traces are portable across mappings with the
same geometry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.gpu.kernel import KernelSpec, LaunchContext, Phase
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Request, RequestType

TRACE_VERSION = 1

_TYPE_CODES = {
    RequestType.MEM_LOAD: "load",
    RequestType.MEM_STORE: "store",
    RequestType.PIM: "pim",
}
_TYPE_FROM_CODE = {v: k for k, v in _TYPE_CODES.items()}


def _encode_request(request: Request) -> Dict:
    record = {
        "t": _TYPE_CODES[request.type],
        "ch": request.channel,
        "ba": request.bank,
        "ro": request.row,
        "co": request.column,
    }
    if request.pim_op is not None:
        record["op"] = request.pim_op.kind.value
        record["dst"] = request.pim_op.dst
        record["src"] = request.pim_op.src
    return record


def _decode_request(record: Dict, mapper, kernel_id: int) -> Request:
    request_type = _TYPE_FROM_CODE[record["t"]]
    pim_op = None
    if request_type is RequestType.PIM:
        pim_op = PIMOp(
            PIMOpKind(record["op"]), dst=record.get("dst", 0), src=record.get("src", 0)
        )
    address = mapper.encode(record["ch"], record["ba"], record["ro"], record["co"])
    request = Request(
        type=request_type, address=address, kernel_id=kernel_id, pim_op=pim_op
    )
    request.channel = record["ch"]
    request.bank = record["ba"]
    request.row = record["ro"]
    request.column = record["co"]
    return request


def save_trace(
    spec: KernelSpec,
    ctx: LaunchContext,
    path: Union[str, Path],
    sm_slots: int,
    warps: int = 0,
) -> int:
    """Materialize ``spec``'s programs into a trace file.

    Returns the number of phases written.  ``warps=0`` uses the spec's own
    warps-per-SM choice.
    """
    warps = warps or spec.warps_per_sm(ctx)
    phases_written = 0
    with open(path, "w") as fh:
        header = {"kind": spec.kind, "name": spec.name, "version": TRACE_VERSION}
        fh.write(json.dumps(header) + "\n")
        for sm_slot in range(sm_slots):
            for warp in range(warps):
                for phase in spec.warp_program(ctx, sm_slot, warp):
                    record = {
                        "sm": sm_slot,
                        "warp": warp,
                        "compute": phase.compute_cycles,
                        "wait": phase.wait_for_replies,
                        "requests": [_encode_request(r) for r in phase.requests],
                    }
                    fh.write(json.dumps(record) + "\n")
                    phases_written += 1
    return phases_written


class TraceKernel(KernelSpec):
    """Replay a trace file as a kernel.

    The trace's phases are loaded eagerly (traces are explicit artifacts,
    not generators) and grouped per (sm_slot, warp); each launch replays
    the same trace.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with open(path) as fh:
            header_line = fh.readline()
            if not header_line:
                raise ValueError(f"empty trace file: {path}")
            header = json.loads(header_line)
            version = header.get("version")
            if version != TRACE_VERSION:
                raise ValueError(f"unsupported trace version {version!r}")
            self.kind = header.get("kind", "gpu")
            self.name = header.get("name", path.stem)
            self._phases: Dict[tuple, List[Dict]] = {}
            for line in fh:
                if not line.strip():
                    continue
                record = json.loads(line)
                key = (record["sm"], record["warp"])
                self._phases.setdefault(key, []).append(record)
        if not self._phases:
            raise ValueError(f"trace has no phases: {path}")
        self._max_warp = max(warp for _, warp in self._phases) + 1

    def warps_per_sm(self, ctx: LaunchContext) -> int:
        return self._max_warp

    def issue_width(self, ctx: LaunchContext) -> int:
        return 2 if self.is_pim else 1

    def warp_program(self, ctx: LaunchContext, sm_slot: int, warp: int) -> Iterator[Phase]:
        for record in self._phases.get((sm_slot, warp), []):
            requests = [
                _decode_request(r, ctx.mapper, ctx.kernel_id) for r in record["requests"]
            ]
            yield Phase(
                compute_cycles=record["compute"],
                requests=requests,
                wait_for_replies=record["wait"],
            )

    def sm_slots(self) -> int:
        return max(sm for sm, _ in self._phases) + 1

    def total_requests(self) -> int:
        return sum(len(r["requests"]) for records in self._phases.values() for r in records)
