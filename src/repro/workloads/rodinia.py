"""The Rodinia benchmark suite as synthetic GPU kernel profiles (Table II).

We do not execute CUDA; each benchmark is modelled by a
:class:`~repro.workloads.synthetic.GPUKernelProfile` whose parameters are
chosen to reproduce the *relative* memory behaviour the paper
characterizes (Figure 4 and the per-kernel discussion in Section VII-B):

* **G4 cfd** — highest interconnect request rate.
* **G6 gaussian** — highest bank-level parallelism; poor locality
  (RBHR ≈ 32 %, Section VII-B).
* **G10 huffman** — compute intensive (used as the insensitive extreme in
  Figure 13).
* **G11 kmeans** — high MEM request arrival rate at the controller.
* **G15 nn** — highest DRAM request rate (little L2 reuse).
* **G17 pathfinder** — highest row-buffer hit rate.
* **G19 srad_v2** — heavy interconnect traffic that the L2 mostly filters.

The remaining kernels fill out a realistic spread of intensities.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.synthetic import GPUKernelProfile


def _profile(name: str, **kwargs) -> GPUKernelProfile:
    return GPUKernelProfile(name=name, **kwargs)


#: Profiles in Table II order, keyed "G1".."G20".
RODINIA: Dict[str, GPUKernelProfile] = {
    "G1": _profile(
        "b+tree", compute_per_phase=60, accesses_per_phase=2, row_locality=0.30,
        l2_reuse=0.45, store_fraction=0.05, footprint_rows=96, bank_spread=16,
    ),
    "G2": _profile(
        "backprop", compute_per_phase=35, accesses_per_phase=4, row_locality=0.60,
        l2_reuse=0.35, store_fraction=0.25, footprint_rows=48, bank_spread=12,
    ),
    "G3": _profile(
        "bfs", compute_per_phase=25, accesses_per_phase=2, row_locality=0.15,
        l2_reuse=0.30, store_fraction=0.10, footprint_rows=128, bank_spread=16,
    ),
    "G4": _profile(
        "cfd", compute_per_phase=4, accesses_per_phase=8, row_locality=0.55,
        l2_reuse=0.55, store_fraction=0.20, footprint_rows=64, bank_spread=16,
    ),
    "G5": _profile(
        "dwt2d", compute_per_phase=45, accesses_per_phase=4, row_locality=0.70,
        l2_reuse=0.40, store_fraction=0.30, footprint_rows=40, bank_spread=10,
    ),
    "G6": _profile(
        "gaussian", compute_per_phase=8, accesses_per_phase=8, row_locality=0.12,
        l2_reuse=0.15, store_fraction=0.25, footprint_rows=128, bank_spread=16,
    ),
    "G7": _profile(
        "heartwall", compute_per_phase=90, accesses_per_phase=3, row_locality=0.55,
        l2_reuse=0.50, store_fraction=0.10, footprint_rows=48, bank_spread=8,
    ),
    "G8": _profile(
        "hotspot", compute_per_phase=50, accesses_per_phase=4, row_locality=0.65,
        l2_reuse=0.55, store_fraction=0.20, footprint_rows=32, bank_spread=12,
    ),
    "G9": _profile(
        "hotspot3D", compute_per_phase=30, accesses_per_phase=4, row_locality=0.55,
        l2_reuse=0.45, store_fraction=0.20, footprint_rows=48, bank_spread=12,
    ),
    "G10": _profile(
        "huffman", compute_per_phase=260, accesses_per_phase=2, row_locality=0.40,
        l2_reuse=0.60, store_fraction=0.10, footprint_rows=24, bank_spread=8,
        accesses_per_warp=192,
    ),
    "G11": _profile(
        "kmeans", compute_per_phase=5, accesses_per_phase=8, row_locality=0.55,
        l2_reuse=0.20, store_fraction=0.05, footprint_rows=96, bank_spread=16,
    ),
    "G12": _profile(
        "lavaMD", compute_per_phase=110, accesses_per_phase=4, row_locality=0.60,
        l2_reuse=0.55, store_fraction=0.15, footprint_rows=32, bank_spread=8,
    ),
    "G13": _profile(
        "lud", compute_per_phase=40, accesses_per_phase=4, row_locality=0.50,
        l2_reuse=0.50, store_fraction=0.20, footprint_rows=48, bank_spread=12,
    ),
    "G14": _profile(
        "mummergpu", compute_per_phase=30, accesses_per_phase=2, row_locality=0.20,
        l2_reuse=0.35, store_fraction=0.05, footprint_rows=160, bank_spread=16,
    ),
    "G15": _profile(
        "nn", compute_per_phase=3, accesses_per_phase=8, row_locality=0.55,
        l2_reuse=0.05, store_fraction=0.05, footprint_rows=128, bank_spread=16,
    ),
    "G16": _profile(
        "nw", compute_per_phase=55, accesses_per_phase=3, row_locality=0.45,
        l2_reuse=0.40, store_fraction=0.25, footprint_rows=64, bank_spread=10,
    ),
    "G17": _profile(
        "pathfinder", compute_per_phase=10, accesses_per_phase=6, row_locality=0.96,
        l2_reuse=0.25, store_fraction=0.15, footprint_rows=16, bank_spread=8,
    ),
    "G18": _profile(
        "srad_v1", compute_per_phase=45, accesses_per_phase=4, row_locality=0.60,
        l2_reuse=0.45, store_fraction=0.25, footprint_rows=48, bank_spread=12,
    ),
    "G19": _profile(
        "srad_v2", compute_per_phase=6, accesses_per_phase=8, row_locality=0.70,
        l2_reuse=0.70, store_fraction=0.20, footprint_rows=32, bank_spread=12,
    ),
    "G20": _profile(
        "streamcluster", compute_per_phase=20, accesses_per_phase=4, row_locality=0.65,
        l2_reuse=0.60, store_fraction=0.10, footprint_rows=64, bank_spread=12,
    ),
}

#: The four memory-intensive kernels + the compute-intensive one used by
#: Figures 5 and 13.
MEMORY_INTENSIVE = ["G6", "G11", "G17", "G19"]
COMPUTE_INTENSIVE = "G10"
FIGURE5_CORUNNERS = ["G4", "G6", "G15", "G17"]


def rodinia_ids() -> List[str]:
    return list(RODINIA)


def get_gpu_kernel(gid: str) -> GPUKernelProfile:
    try:
        return RODINIA[gid]
    except KeyError:
        raise KeyError(f"unknown Rodinia id {gid!r}; known: {list(RODINIA)}") from None
