"""The PIM benchmark suite (Table III) as block-structured PIM kernels.

Each benchmark is expressed with the fine-grained PIM ISA of
:mod:`repro.pim.isa`, following the block structure of Figure 3 — RF-sized
blocks of operations per operand row, executed sequentially.  The op
patterns mirror what each benchmark computes per element:

* **P1 Stream Add** — ``c = a + b``: load a, add b, store c.
* **P2 Stream Copy** — ``c = a``: load a, store c.
* **P3 Stream Daxpy** — ``c += s*a``: load c, mac a, store c.
* **P4 Stream Scale** — ``c = s*b``: load b, mul, store c.
* **P5/P6 BN Fwd/Bwd** — batch-norm style chains over more operand rows.
* **P7 Fully connected** — GEMV: long MAC streams, rare stores.
* **P8 KMeans** — distance accumulation: load, sub, mul, mac.
* **P9 GRIM** — bit-vector filter: load, add (popcount proxy), store.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pim.isa import PIMOpKind
from repro.workloads.synthetic import KernelSpec, PIMGemvKernel, PIMStreamKernel

L, S, A, SU, M, MC = (
    PIMOpKind.LOAD,
    PIMOpKind.STORE,
    PIMOpKind.ADD,
    PIMOpKind.SUB,
    PIMOpKind.MUL,
    PIMOpKind.MAC,
)

#: Benchmarks in Table III order, keyed "P1".."P9".
PIM_SUITE: Dict[str, KernelSpec] = {
    "P1": PIMStreamKernel(
        name="Stream Add", ops=((L, 0), (A, 1), (S, 2)), elements_per_warp=2048
    ),
    "P2": PIMStreamKernel(
        name="Stream Copy", ops=((L, 0), (S, 1)), elements_per_warp=2048
    ),
    "P3": PIMStreamKernel(
        name="Stream Daxpy", ops=((L, 0), (MC, 1), (S, 0)), elements_per_warp=2048
    ),
    "P4": PIMStreamKernel(
        name="Stream Scale", ops=((L, 0), (M, 0), (S, 1)), elements_per_warp=2048
    ),
    "P5": PIMStreamKernel(
        name="BN Fwd",
        ops=((L, 0), (SU, 1), (M, 2), (A, 3), (S, 4)),
        elements_per_warp=1536,
    ),
    "P6": PIMStreamKernel(
        name="BN Bwd",
        ops=((L, 0), (L, 1), (M, 2), (MC, 3), (SU, 4), (S, 5)),
        elements_per_warp=1280,
    ),
    "P7": PIMGemvKernel(
        name="Fully connected", outputs_per_warp=96, macs_per_output=16
    ),
    "P8": PIMStreamKernel(
        name="KMeans", ops=((L, 0), (SU, 1), (M, 2), (MC, 3)), elements_per_warp=1536
    ),
    "P9": PIMStreamKernel(
        name="GRIM", ops=((L, 0), (A, 1), (S, 2)), elements_per_warp=2048
    ),
}


def pim_ids() -> List[str]:
    return list(PIM_SUITE)


def get_pim_kernel(pid: str) -> KernelSpec:
    try:
        return PIM_SUITE[pid]
    except KeyError:
        raise KeyError(f"unknown PIM id {pid!r}; known: {list(PIM_SUITE)}") from None
