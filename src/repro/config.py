"""System configuration (Table I of the paper).

Two presets are provided:

* :meth:`SystemConfig.paper` — the full configuration from Table I
  (80 SMs, 32 channels, 512-entry NoC queues).  Faithful but slow in a
  pure-Python cycle simulator.
* :meth:`SystemConfig.scaled` — the default for tests and benchmarks: a
  proportionally scaled system (fewer channels/SMs, shorter queues) that
  preserves the ratios driving the paper's phenomena (PIM:MEM injection
  rate, queue:burst size, CAP:block size).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dram.address import PAPER_ADDRESS_MAP, AddressMapper, scaled_address_map
from repro.dram.timings import DRAMTimings


@dataclass(frozen=True)
class SystemConfig:
    """Full-system configuration.

    Attributes mirror Table I; see :class:`repro.dram.timings.DRAMTimings`
    for the DRAM timing fields.
    """

    # --- GPU ---
    num_sms: int = 80
    warps_per_sm: int = 4
    max_outstanding_per_sm: int = 64

    # --- Memory organization ---
    num_channels: int = 32
    banks_per_channel: int = 16
    address_map: str = PAPER_ADDRESS_MAP
    timings: DRAMTimings = field(default_factory=DRAMTimings)

    # --- Memory controller ---
    mem_queue_size: int = 64
    pim_queue_size: int = 64
    #: Model all-bank refresh (tREFI/tRFC).  Off by default: refresh adds
    #: ~6% noise to every experiment without changing any qualitative
    #: result; the refresh study enables it explicitly.
    refresh_enabled: bool = False

    # --- PIM ---
    pim_fus_per_channel: int = 8  # one FU per bank pair
    pim_rf_size: int = 16  # entries per FU (8 per bank)

    # --- Interconnect ---
    noc_queue_size: int = 512  # total entries per channel input queue
    num_virtual_channels: int = 1  # 1 = VC1 baseline, 2 = VC2 proposal
    sm_output_queue_size: int = 8
    reply_latency: int = 20  # fixed DRAM->SM return-path latency
    #: "crossbar" (paper baseline, iSlip) or "mesh" (multi-hop XY study).
    noc_topology: str = "crossbar"
    mesh_router_buffer: int = 8  # per-port buffer entries (mesh only)

    # --- L2 cache ---
    l2_size_bytes: int = 6 * 1024 * 1024
    l2_assoc: int = 16
    l2_line_bytes: int = 128
    l2_latency: int = 30
    l2_mshrs_per_slice: int = 32

    # --- L1 cache (per SM; Table I: 32 KB L1D) ---
    #: Off by default: workload profiles are calibrated against the L2
    #: alone (see repro.cache.l1).  Enable for the L1 filtering study.
    l1_enabled: bool = False
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 4
    l1_latency: int = 28

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("need at least one SM")
        if self.num_virtual_channels not in (1, 2):
            raise ValueError("num_virtual_channels must be 1 (VC1) or 2 (VC2)")
        if self.noc_topology not in ("crossbar", "mesh"):
            raise ValueError("noc_topology must be 'crossbar' or 'mesh'")
        if self.noc_queue_size < self.num_virtual_channels:
            raise ValueError("NoC queue too small for the VC split")
        mapper = self.mapper  # validates the address map spec
        if mapper.num_channels != self.num_channels:
            raise ValueError(
                f"address map encodes {mapper.num_channels} channels, "
                f"config says {self.num_channels}"
            )
        if mapper.num_banks != self.banks_per_channel:
            raise ValueError(
                f"address map encodes {mapper.num_banks} banks, "
                f"config says {self.banks_per_channel}"
            )
        if self.banks_per_channel % self.pim_fus_per_channel:
            raise ValueError("banks per channel must be a multiple of PIM FUs")
        if self.pim_rf_size % 2:
            raise ValueError("PIM RF is split between two banks; size must be even")

    def fingerprint_payload(self) -> dict:
        """Canonical identity of this configuration for the result store.

        Every field participates — the fields *are* the simulation input;
        derived properties (mapper, banks_per_fu) are functions of them.
        Spelled out rather than relying on generic dataclass traversal so
        that the cache-key contract is explicit and stays stable under
        refactors of :mod:`repro.store.fingerprint`.
        """
        from dataclasses import asdict

        payload = asdict(self)
        payload["__config__"] = type(self).__name__
        return payload

    @property
    def mapper(self) -> AddressMapper:
        return AddressMapper(self.address_map)

    @property
    def banks_per_fu(self) -> int:
        return self.banks_per_channel // self.pim_fus_per_channel

    @property
    def rf_entries_per_bank(self) -> int:
        """Register-file entries available to each bank (paper: 8)."""
        return self.pim_rf_size // self.banks_per_fu

    @property
    def with_vc2(self) -> "SystemConfig":
        """This configuration with the separate PIM virtual channel added."""
        return replace(self, num_virtual_channels=2)

    @property
    def with_vc1(self) -> "SystemConfig":
        return replace(self, num_virtual_channels=1)

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The configuration of Table I."""
        return cls()

    @classmethod
    def scaled(
        cls,
        num_channels: int = 8,
        num_sms: int = 10,
        noc_queue_size: int = 64,
        banks_per_channel: int = 16,
    ) -> "SystemConfig":
        """Laptop-scale configuration preserving the paper's ratios.

        Defaults: 8 channels x 16 banks, 10 SMs (8 "GPU" + 2 "PIM" in the
        standard competitive split), 64-entry NoC queues.  DRAM timings,
        queue sizes at the MC, and the PIM RF are kept at paper values.
        """
        channel_bits = (num_channels - 1).bit_length()
        if 1 << channel_bits != num_channels:
            raise ValueError("num_channels must be a power of two")
        bank_bits = (banks_per_channel - 1).bit_length()
        if 1 << bank_bits != banks_per_channel:
            raise ValueError("banks_per_channel must be a power of two")
        return cls(
            num_sms=num_sms,
            num_channels=num_channels,
            banks_per_channel=banks_per_channel,
            address_map=scaled_address_map(channel_bits, bank_bits=bank_bits),
            noc_queue_size=noc_queue_size,
            max_outstanding_per_sm=32,
        )
