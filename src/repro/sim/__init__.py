"""Full-system simulation: wiring, cycle engine, results, exporters."""

from repro.sim.export import (
    kernel_to_dict,
    load_result_json,
    result_to_dict,
    save_kernels_csv,
    save_result_json,
    save_rows_csv,
)
from repro.sim.results import KernelResult, SimResult
from repro.sim.system import GPUSystem, KernelRun

__all__ = [
    "GPUSystem",
    "KernelResult",
    "KernelRun",
    "SimResult",
    "kernel_to_dict",
    "load_result_json",
    "result_to_dict",
    "save_kernels_csv",
    "save_result_json",
    "save_rows_csv",
]
