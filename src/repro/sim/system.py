"""End-to-end system model (Figure 1 / Figure 7).

``GPUSystem`` wires the full memory path::

    SMs -> per-SM output buffers -> iSlip crossbar
        -> interconnect->L2 queues (per channel)
        -> L2 slice (MEM) / bypass (PIM)
        -> L2->DRAM queues (per channel)
        -> memory controller (MEM-Q / PIM-Q + policy)
        -> DRAM banks / PIM executor

Every buffer is a :class:`~repro.noc.vc.VCBuffer`: with
``config.num_virtual_channels == 1`` the system is the paper's **VC1**
baseline (PIM bursts head-of-line-block MEM requests); with ``2`` it is the
**VC2** proposal (separate MEM/PIM queues at every hop, round-robin
service, half capacity each).

The engine is cycle-driven, processing stages downstream-first so a request
moves at most one hop per cycle.  Two engine-level optimizations (see
``docs/performance.md``) keep the per-cycle cost proportional to the amount
of actual work instead of the machine size:

* **Active-set scheduling** — every inter-stage buffer notifies the engine
  on push/pop (``BoundedQueue.on_push``/``on_pop``), so each stage loop
  visits only the channels/SMs that can make progress this cycle.
  Controllers and SMs that sleep on a future self-event park on a wake
  heap and leave the loops entirely.
* **Event-driven fast-forwarding** — when the system is quiescent (no
  buffered work, no active controller or SM), the clock jumps straight to
  the earliest scheduled event (reply, DRAM/PIM completion, wake, refresh,
  timeline sample).  Skipped cycles are provably no-ops, so results are
  bit-identical to ticking through them (enforced by
  ``tests/test_fast_forward.py``); set ``REPRO_FAST_FORWARD=0`` or pass
  ``fast_forward=False`` to fall back to the naive loop.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.l1 import L1Cache
from repro.cache.l2 import L2Slice, LookupResult
from repro.config import SystemConfig
from repro.core.controller import NEVER, MemoryController
from repro.core.policies import PolicySpec
from repro.dram.channel import Channel
from repro.dram.storage import DataStore
from repro.gpu.kernel import KernelInstance, KernelSpec, LaunchContext
from repro.gpu.sm import SM
from repro.noc.islip import ISlipArbiter
from repro.noc.mesh import MeshFabric
from repro.noc.vc import VCBuffer
from repro.obs import events as obs_events
from repro.pim.executor import PIMExecutor
from repro.request import Mode, Request
from repro.sim.activeset import OrderedIndexSet
from repro.sim.results import KernelResult, SimResult

#: Words (32 B DRAM accesses) per modelled L2 entry.  The slice caches
#: individual DRAM words (see repro.cache.l2 docstring).
WORD_BYTES = 32


def _default_fast_forward() -> bool:
    value = os.environ.get("REPRO_FAST_FORWARD", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


class KernelRun:
    """A kernel bound to a set of SMs, optionally re-launched in a loop."""

    def __init__(
        self,
        spec: KernelSpec,
        kernel_id: int,
        sm_indices: Sequence[int],
        loop: bool,
    ) -> None:
        self.spec = spec
        self.kernel_id = kernel_id
        self.sm_indices = list(sm_indices)
        self.loop = loop
        self.instance: Optional[KernelInstance] = None
        self.first_duration: Optional[int] = None
        self.completions = 0
        self.running = False


class GPUSystem:
    """The complete simulated GPU + PIM-enabled memory system."""

    def __init__(
        self,
        config: SystemConfig,
        policy: PolicySpec,
        seed: int = 0,
        functional: bool = False,
        scale: float = 1.0,
        fast_forward: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.policy_spec = policy
        self.seed = seed
        self.scale = scale
        self.mapper = config.mapper
        self.store = DataStore() if functional else None
        self.fast_forward = (
            _default_fast_forward() if fast_forward is None else fast_forward
        )

        timings = config.timings
        vcs = config.num_virtual_channels
        self.channels: List[Channel] = []
        self.pim_execs: List[PIMExecutor] = []
        self.controllers: List[MemoryController] = []
        self.l2_slices: List[L2Slice] = []
        self.input_buffers: List[VCBuffer] = []  # interconnect -> L2
        self.dram_queues: List[VCBuffer] = []  # L2 -> DRAM (MC ingress)
        self.writebacks: List[deque] = []

        slice_words = max(
            config.l2_assoc, config.l2_size_bytes // WORD_BYTES // config.num_channels
        )
        for ch in range(config.num_channels):
            channel = Channel(ch, config.banks_per_channel, timings)
            pim_exec = PIMExecutor(
                channel,
                fus_per_channel=config.pim_fus_per_channel,
                rf_entries_per_bank=config.rf_entries_per_bank,
                store=self.store,
                functional=functional,
            )
            controller = MemoryController(
                channel,
                pim_exec,
                policy.create(),
                mem_queue_size=config.mem_queue_size,
                pim_queue_size=config.pim_queue_size,
                refresh_enabled=config.refresh_enabled,
            )
            self.channels.append(channel)
            self.pim_execs.append(pim_exec)
            self.controllers.append(controller)
            self.l2_slices.append(
                L2Slice(
                    slice_bytes=slice_words,
                    assoc=config.l2_assoc,
                    line_bytes=1,
                    mshr_capacity=config.l2_mshrs_per_slice,
                    channel_index=ch,
                    mapper=self.mapper,
                )
            )
            self.input_buffers.append(
                VCBuffer(config.noc_queue_size, vcs, name=f"noc->l2[{ch}]")
            )
            self.dram_queues.append(
                VCBuffer(config.noc_queue_size, vcs, name=f"l2->dram[{ch}]")
            )
            self.writebacks.append(deque())

        self.sm_buffers = [
            VCBuffer(config.sm_output_queue_size, vcs, name=f"sm[{i}]")
            for i in range(config.num_sms)
        ]
        self.sms = []
        for i in range(config.num_sms):
            l1 = None
            if config.l1_enabled:
                l1 = L1Cache(
                    capacity_words=max(config.l1_assoc, config.l1_size_bytes // WORD_BYTES),
                    assoc=config.l1_assoc,
                )
            self.sms.append(
                SM(
                    i,
                    self.sm_buffers[i],
                    max_outstanding=config.max_outstanding_per_sm,
                    l1=l1,
                    l1_latency=config.l1_latency,
                )
            )
        if config.noc_topology == "mesh":
            self.crossbar = None
            self.mesh = MeshFabric(
                num_sms=config.num_sms,
                num_channels=config.num_channels,
                num_vcs=vcs,
                router_buffer=config.mesh_router_buffer,
            )
        else:
            self.crossbar = ISlipArbiter(config.num_sms, config.num_channels)
            self.mesh = None

        self.cycle = 0
        self.runs: List[KernelRun] = []
        self._next_kernel_id = 0
        self._free_sms = deque(range(config.num_sms))
        self._reply_heap: List[Tuple[int, int, Request]] = []
        self._reply_seq = itertools.count()
        self.replies_sent = 0
        self._kernel_inflight: Dict[int, int] = {}
        self._injected: Dict[int, int] = {}
        self._awaiting_first = 0  # runs without a first completion yet
        self.timeline = None  # optional metrics.timeline.TimelineSampler

        # -- active-set scheduling state (docs/performance.md) -------------
        # Total items in watched buffers (SM outputs, interconnect->L2,
        # L2->DRAM) plus pending writebacks; zero is a precondition for
        # fast-forwarding.
        # Stage loops visit members in ascending order (iteration order is
        # simulated behaviour — it fixes reply sequence numbers), so the
        # active sets maintain that order incrementally instead of paying a
        # sorted() per stage per cycle.
        self._backlog = 0
        self._l2_active = OrderedIndexSet()  # channels: input_buffers non-empty
        self._ingress_active = OrderedIndexSet()  # channels: dram_queues non-empty
        self._wb_active = OrderedIndexSet()  # channels: pending writebacks
        self._xbar_active = OrderedIndexSet()  # SMs: sm_buffers non-empty
        self._busy_channels = OrderedIndexSet()  # channels with DRAM/PIM in flight
        self._mc_active = OrderedIndexSet(range(config.num_channels))
        self._sm_active = OrderedIndexSet()
        # Sleeping controllers (kind 0) / SMs (kind 1) with a self-scheduled
        # future event; entries are lazy-deleted (stale wakes are no-ops).
        self._wake_heap: List[Tuple[int, int, int]] = []
        for ch in range(config.num_channels):
            self._watch_buffer(self.input_buffers[ch], self._l2_active, ch)
            self._watch_buffer(self.dram_queues[ch], self._ingress_active, ch)
        for i, buffer in enumerate(self.sm_buffers):
            self._watch_buffer(buffer, self._xbar_active, i)

        # -- observability (repro.perf / repro.obs) ------------------------
        self.perf = None  # optional repro.perf.counters.EngineCounters
        self.telemetry = None  # optional repro.obs.telemetry.Telemetry
        # Optional repro.resilience.watchdog.Watchdog (no-progress guard);
        # dormant cost is one None check + one int compare per step.
        self.watchdog = None
        self.steps_executed = 0
        self.cycles_skipped = 0
        self._stages = (
            ("completions", self._stage_completions),
            ("replies", self._stage_replies),
            ("controllers", self._stage_controllers),
            ("mc_ingress", self._stage_mc_ingress),
            ("l2", self._stage_l2),
            ("writebacks", self._stage_writebacks),
            ("crossbar", self._stage_crossbar),
            ("sms", self._stage_sms),
            ("kernel_completion", self._stage_kernel_completion),
        )

    def _watch_buffer(self, buffer: VCBuffer, active_set: OrderedIndexSet, key: int) -> None:
        def on_push() -> None:
            self._backlog += 1
            active_set.add(key)

        def on_pop() -> None:
            self._backlog -= 1
            if not buffer:
                active_set.discard(key)

        buffer.watch(on_push, on_pop)

    # -- kernel management -------------------------------------------------

    def add_kernel(self, spec: KernelSpec, num_sms: int, loop: bool = False) -> KernelRun:
        """Assign a kernel to ``num_sms`` SM slots (launched at run start)."""
        if num_sms < 1:
            raise ValueError("a kernel needs at least one SM")
        if len(self._free_sms) < num_sms:
            raise ValueError(
                f"not enough free SMs: requested {num_sms}, available {len(self._free_sms)}"
            )
        indices = [self._free_sms.popleft() for _ in range(num_sms)]
        run = KernelRun(spec, self._next_kernel_id, indices, loop)
        self._next_kernel_id += 1
        self.runs.append(run)
        self._kernel_inflight[run.kernel_id] = 0
        self._injected[run.kernel_id] = 0
        self._awaiting_first += 1
        return run

    def _create_instance(self, run: KernelRun, ctx: LaunchContext) -> KernelInstance:
        """Materialize the kernel instance for a (re-)launch.

        Subclasses may substitute an instance with identical semantics
        (the SoA backend wraps warp programs in a record/replay cache for
        looping kernels).
        """
        return KernelInstance(run.spec, ctx, run.kernel_id, seed=self.seed)

    def _launch(self, run: KernelRun) -> None:
        ctx = LaunchContext(
            mapper=self.mapper,
            num_channels=self.config.num_channels,
            banks_per_channel=self.config.banks_per_channel,
            num_sms=len(run.sm_indices),
            warps_per_sm=self.config.warps_per_sm,
            rng=np.random.default_rng(self.seed),
            scale=self.scale,
            rf_entries_per_bank=self.config.rf_entries_per_bank,
            kernel_id=run.kernel_id,
        )
        run.instance = self._create_instance(run, ctx)
        for slot, sm_index in enumerate(run.sm_indices):
            self.sms[sm_index].attach(run.instance, slot, self.cycle)
        self._sm_active.update(run.sm_indices)
        run.running = True
        if self.telemetry is not None:
            self.telemetry.emit(
                self.cycle,
                obs_events.KERNEL_LAUNCH,
                kernel=run.kernel_id,
                name=run.spec.name,
                sms=list(run.sm_indices),
            )

    # -- per-cycle stages -----------------------------------------------------

    def _stage_completions(self) -> None:
        busy = self._busy_channels
        if not busy:
            return
        cycle = self.cycle
        for ch in busy.snapshot():
            controller = self.controllers[ch]
            # Nothing completes before the earliest in-flight entry, and the
            # in-flight counts cannot change until something completes, so a
            # channel whose next completion lies in the future can be skipped
            # without touching it.
            head = controller.channel.next_completion_cycle()
            pim_head = controller.pim_exec.next_completion_cycle()
            if (head is None or head > cycle) and (pim_head is None or pim_head > cycle):
                if head is None and pim_head is None:
                    busy.discard(ch)
                continue
            done = controller.pop_completed(cycle)
            if done:
                self._mc_active.add(ch)  # pop_completed marked it dirty
                for request in done:
                    self._handle_completion(ch, request, cycle)
            if not controller.channel.mem_in_flight() and not controller.pim_exec.in_flight():
                busy.discard(ch)

    def _handle_completion(self, ch: int, request: Request, cycle: int) -> None:
        if request.is_writeback:
            return
        if self.telemetry is not None:
            self.telemetry.record_completion(request, cycle)
        if request.is_pim or not request.is_load:
            self._finish_request(request)
            return
        if request.is_l2_fill:
            waiting, writeback = self.l2_slices[ch].install(request)
            if writeback is not None:
                self.writebacks[ch].append(writeback)
                self._backlog += 1
                self._wb_active.add(ch)
            for waiter in waiting:
                self._schedule_reply(waiter, cycle + self.config.reply_latency)
        else:  # pragma: no cover - every DRAM load is a fill in this model
            self._schedule_reply(request, cycle + self.config.reply_latency)

    def _schedule_reply(self, request: Request, when: int) -> None:
        self.replies_sent += 1
        heapq.heappush(self._reply_heap, (when, next(self._reply_seq), request))

    def _stage_replies(self) -> None:
        cycle = self.cycle
        heap = self._reply_heap
        if not heap or heap[0][0] > cycle:
            return
        sm_active = self._sm_active
        telemetry = self.telemetry
        while heap and heap[0][0] <= cycle:
            _, _, request = heapq.heappop(heap)
            self.sms[request.source].receive_reply(request, cycle)
            sm_active.add(request.source)  # receive_reply marked it dirty
            self._finish_request(request)
            if telemetry is not None:
                telemetry.record_return(request, cycle)

    def _finish_request(self, request: Request) -> None:
        self._kernel_inflight[request.kernel_id] -= 1

    def _stage_controllers(self) -> None:
        active = self._mc_active
        if not active:
            return
        cycle = self.cycle
        controllers = self.controllers
        wake_heap = self._wake_heap
        for ch in active.snapshot():
            controller = controllers[ch]
            if controller.tick(cycle) is not None:
                self._busy_channels.add(ch)
            if controller._dirty:
                continue  # must re-evaluate next cycle
            wake = controller.next_wake_cycle(cycle)
            if wake <= cycle + 1:
                continue
            active.discard(ch)
            if wake < NEVER:
                heapq.heappush(wake_heap, (wake, 0, ch))

    def _stage_mc_ingress(self) -> None:
        """Move one request per channel from the L2->DRAM queue into the MC."""
        active = self._ingress_active
        if not active:
            return
        cycle = self.cycle
        for ch in active.snapshot():
            queue = self.dram_queues[ch]
            controller = self.controllers[ch]
            for head in queue.heads():
                if controller.can_accept(head):
                    queue.pop_matching(head)
                    controller.enqueue(head, cycle)
                    self._mc_active.add(ch)  # enqueue marked it dirty
                    break

    def _stage_l2(self) -> None:
        """Per channel, sink one request from the interconnect->L2 queue."""
        active = self._l2_active
        if not active:
            return
        cycle = self.cycle
        telemetry = self.telemetry
        for ch in active.snapshot():
            buffer = self.input_buffers[ch]
            slice_ = self.l2_slices[ch]
            dram_queue = self.dram_queues[ch]
            for head in buffer.heads():
                if head.is_pim:
                    if dram_queue.can_push(head):
                        buffer.pop_matching(head)
                        if telemetry is not None:
                            head.cycle_l2_arrival = cycle
                        dram_queue.try_push(head)
                        break
                    continue  # PIM VC blocked; try the other VC's head
                # MEM request: a miss/forward will need L2->DRAM space.
                if not dram_queue.queue(Mode.MEM).full:
                    outcome = slice_.lookup(head)
                    if outcome == LookupResult.BLOCKED:
                        continue  # MSHRs full: leave at head, try other VC
                    buffer.pop_matching(head)
                    if telemetry is not None:
                        head.cycle_l2_arrival = cycle
                    if outcome == LookupResult.HIT:
                        if head.is_load:
                            self._schedule_reply(head, cycle + self.config.l2_latency)
                        else:
                            self._finish_request(head)
                            if telemetry is not None:
                                telemetry.record_l2_filtered(head, cycle)
                    elif outcome == LookupResult.MISS_SECONDARY:
                        pass  # merged; replied when the fill returns
                    else:  # MISS_PRIMARY or STORE_FORWARD
                        dram_queue.try_push(head)
                    break

    def _stage_writebacks(self) -> None:
        active = self._wb_active
        if not active:
            return
        for ch in active.snapshot():
            pending = self.writebacks[ch]
            queue = self.dram_queues[ch].queue(Mode.MEM)
            if not queue.full:
                queue.try_push(pending.popleft())
                self._backlog -= 1
                if not pending:
                    active.discard(ch)

    def _stage_crossbar(self) -> None:
        if self.mesh is not None:
            # The fabric must also run with empty SM buffers while flits
            # are still in flight between routers.
            if self._xbar_active or self.mesh.occupancy:
                self.mesh.step(self.sm_buffers, self.input_buffers)
        elif self._xbar_active:
            self.crossbar.step(
                self.sm_buffers, self.input_buffers, self._xbar_active.snapshot()
            )

    def _stage_sms(self) -> None:
        active = self._sm_active
        if not active:
            return
        cycle = self.cycle
        sms = self.sms
        wake_heap = self._wake_heap
        for i in active.snapshot():
            sm = sms[i]
            if sm.instance is None:
                active.discard(i)
                continue
            before = sm.requests_injected
            issued = sm.step(cycle)
            if issued:
                sm.requests_injected = before + issued
                kernel_id = sm.instance.kernel_id
                self._injected[kernel_id] += issued
                self._kernel_inflight[kernel_id] += issued
            if sm._dirty:
                continue  # a reply arrived while stepping
            wake = sm.next_event_cycle()
            if wake <= cycle + 1:
                continue
            active.discard(i)
            heapq.heappush(wake_heap, (wake, 1, i))

    def _stage_kernel_completion(self) -> None:
        cycle = self.cycle
        for run in self.runs:
            if not run.running:
                continue
            if self._kernel_inflight[run.kernel_id] != 0:
                continue
            if not all(self.sms[i].is_done(cycle) for i in run.sm_indices):
                continue
            run.instance.cycle_finished = cycle
            duration = run.instance.duration
            if run.first_duration is None:
                run.first_duration = duration
                self._awaiting_first -= 1
            run.completions += 1
            run.running = False
            if self.telemetry is not None:
                self.telemetry.emit(
                    cycle,
                    obs_events.KERNEL_DRAIN,
                    kernel=run.kernel_id,
                    name=run.spec.name,
                    duration=duration,
                    completions=run.completions,
                )
            if run.loop:
                self._launch(run)

    # -- main loop -----------------------------------------------------------

    def attach_timeline(self, interval: int = 100) -> "TimelineSampler":
        """Record system state every ``interval`` cycles (see
        :mod:`repro.metrics.timeline`)."""
        from repro.metrics.timeline import TimelineSampler

        self.timeline = TimelineSampler(interval=interval)
        return self.timeline

    def step(self) -> None:
        """Advance the whole system by one cycle."""
        cycle = self.cycle
        wakes = self._wake_heap
        while wakes and wakes[0][0] <= cycle:
            _, kind, index = heapq.heappop(wakes)
            (self._sm_active if kind else self._mc_active).add(index)
        if self.timeline is not None and self.timeline.due(cycle):
            self.timeline.sample(self, cycle)
        if self.perf is None:
            self._stage_completions()
            self._stage_replies()
            self._stage_controllers()
            self._stage_mc_ingress()
            self._stage_l2()
            self._stage_writebacks()
            self._stage_crossbar()
            self._stage_sms()
            self._stage_kernel_completion()
        else:
            clock = self.perf.clock
            add = self.perf.add
            for name, stage in self._stages:
                start = clock()
                stage()
                add(name, clock() - start)
        watchdog = self.watchdog
        if watchdog is not None and cycle >= watchdog.next_check:
            watchdog.scan(self)
        self.steps_executed += 1
        self.cycle = cycle + 1

    def _quiescent(self) -> bool:
        """No buffered work and no component that can act next cycle."""
        if self._backlog or self._mc_active or self._sm_active:
            return False
        return self.mesh is None or not self.mesh.occupancy

    def _fast_forward_clock(self, limit: int) -> None:
        """Jump the clock to the next scheduled event (system is quiescent).

        Every skipped cycle would have been a no-op step: components only
        act on buffered work (none — active sets empty), at a self-scheduled
        wake (on the wake heap), or on a completion/reply event (bounded
        below by the respective heads).  Timeline sampling caps the jump at
        the next due sample so the sample series is unchanged.
        """
        cycle = self.cycle
        target = limit
        replies = self._reply_heap
        if replies and replies[0][0] < target:
            target = replies[0][0]
        wakes = self._wake_heap
        if wakes and wakes[0][0] < target:
            target = wakes[0][0]
        for ch in self._busy_channels:
            head = self.channels[ch].next_completion_cycle()
            if head is not None and head < target:
                target = head
            head = self.pim_execs[ch].next_completion_cycle()
            if head is not None and head < target:
                target = head
        timeline = self.timeline
        if timeline is not None:
            remainder = cycle % timeline.interval
            due = cycle if remainder == 0 else cycle + timeline.interval - remainder
            if due < target:
                target = due
        if target > cycle:
            self.cycles_skipped += target - cycle
            self.cycle = target
            if self.telemetry is not None:
                self.telemetry.emit(
                    cycle, obs_events.FAST_FORWARD, start=cycle, skipped=target - cycle
                )

    def enable_watchdog(self, window: Optional[int] = None) -> "Watchdog":
        """Attach the no-forward-progress guard (see :mod:`repro.resilience`).

        Every ``window`` cycles the watchdog compares a signature of the
        engine's monotonic progress counters; if nothing moved while work
        is outstanding it raises
        :class:`~repro.resilience.watchdog.SimulationStalled` with a
        diagnostic dump instead of spinning to the cycle budget.  The
        watchdog observes but never schedules, so enabled runs are
        bit-identical to disabled ones.  Idempotent per system.
        """
        if self.watchdog is not None:
            return self.watchdog
        from repro.resilience.watchdog import DEFAULT_WINDOW, Watchdog

        self.watchdog = Watchdog(DEFAULT_WINDOW if window is None else window)
        self.watchdog.next_check = self.cycle + self.watchdog.window
        return self.watchdog

    def enable_perf_counters(self) -> "EngineCounters":
        """Attach per-stage wall-clock counters (see :mod:`repro.perf`)."""
        from repro.perf.counters import EngineCounters

        self.perf = EngineCounters()
        return self.perf

    def enable_telemetry(
        self,
        ring_capacity: int = 65536,
        timeline_interval: Optional[int] = 100,
        perf_counters: bool = False,
    ) -> "Telemetry":
        """Attach request-path telemetry (see :mod:`repro.obs`).

        The unified observability entry point: creates the
        :class:`~repro.obs.telemetry.Telemetry` hub (latency histograms +
        event ring), shares it with every memory controller, attaches a
        :class:`~repro.metrics.timeline.TimelineSampler` (unless one is
        already attached, or ``timeline_interval`` is None) for the trace
        writer's queue-occupancy counter tracks, and — with
        ``perf_counters=True`` — also enables the per-stage wall-clock
        :class:`~repro.perf.counters.EngineCounters`.

        Telemetry observes but never schedules: an enabled run is
        bit-identical to a disabled one (``tests/test_telemetry.py``).
        Call before :meth:`run`; idempotent.
        """
        if self.telemetry is not None:
            return self.telemetry
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(ring_capacity=ring_capacity)
        self.telemetry = telemetry
        if timeline_interval is not None and self.timeline is None:
            self.attach_timeline(interval=timeline_interval)
        telemetry.timeline = self.timeline
        if perf_counters and self.perf is None:
            self.enable_perf_counters()
        telemetry.perf = self.perf
        for controller in self.controllers:
            controller.telemetry = telemetry
        for ch, buffer in enumerate(self.input_buffers):
            buffer.watch_rejects(self._make_reject_emitter(ch))
        return telemetry

    def _make_reject_emitter(self, ch: int):
        def on_reject() -> None:
            self.telemetry.emit(self.cycle, obs_events.NOC_REJECT, channel=ch)

        return on_reject

    def run(
        self,
        max_cycles: int = 2_000_000,
        until_all_complete_once: bool = True,
    ) -> SimResult:
        """Launch all kernels and simulate.

        With ``until_all_complete_once`` (the paper's methodology) the run
        stops once every kernel has completed at least one launch; looping
        kernels are re-launched until then.
        """
        if not self.runs:
            raise ValueError("no kernels added")
        for run in self.runs:
            self._launch(run)
        fast = self.fast_forward
        while self.cycle < max_cycles:
            self.step()
            if until_all_complete_once and not self._awaiting_first:
                break
            if fast and self._quiescent():
                self._fast_forward_clock(max_cycles)
        for controller in self.controllers:
            controller.finalize(self.cycle)
        return self._collect_results()

    # -- energy accounting ---------------------------------------------------

    def energy_report(self, params=None) -> "EnergyBreakdown":
        """Event-energy breakdown of the whole run so far (nJ).

        See :mod:`repro.dram.power` for the model and its constants.
        """
        from repro.dram.power import EnergyAccountant, EnergyParams

        accountant = EnergyAccountant(params or EnergyParams())
        activates = sum(
            c.stats.mem_misses + c.stats.mem_conflicts for c in self.channels
        )
        reads = sum(c.stats.mem_reads for c in self.channels)
        writes = sum(c.stats.mem_writes for c in self.channels)
        pim_ops = sum(e.stats.dram_ops for e in self.pim_execs)
        pim_row_switches = sum(e.stats.row_switches for e in self.pim_execs)
        refreshes = sum(c.refresh.stats.refreshes_issued for c in self.controllers)
        if self.mesh is not None:
            # Multi-hop network: every hop pays link/router energy.
            noc_transfers = self.mesh.hops + self.mesh.transfers + self.replies_sent
        else:
            noc_transfers = self.crossbar.transfers + self.replies_sent
        return accountant.account(
            cycles=self.cycle,
            num_channels=self.config.num_channels,
            activates=activates,
            reads=reads,
            writes=writes,
            pim_ops=pim_ops,
            pim_banks=self.config.banks_per_channel,
            pim_row_switches=pim_row_switches,
            refreshes=refreshes,
            noc_transfers=noc_transfers,
        )

    # -- result collection -----------------------------------------------

    def _collect_results(self) -> SimResult:
        result = SimResult(cycles=self.cycle)
        for run in self.runs:
            kid = run.kernel_id
            kernel_result = KernelResult(
                kernel_id=kid,
                name=run.spec.name,
                is_pim=run.spec.is_pim,
                first_duration=run.first_duration,
                completions=run.completions,
                requests_injected=self._injected[kid],
            )
            for controller in self.controllers:
                kernel_result.mc_arrivals += controller.stats.kernel_mem_arrivals.get(kid, 0)
                kernel_result.mc_arrivals += controller.stats.kernel_pim_arrivals.get(kid, 0)
            for channel in self.channels:
                outcomes = channel.stats.kernel_outcomes.get(kid)
                if outcomes:
                    kernel_result.dram_row_hits += outcomes[0]
                    kernel_result.dram_row_misses += outcomes[1]
                    kernel_result.dram_row_conflicts += outcomes[2]
            for slice_ in self.l2_slices:
                kernel_result.l2_accesses += slice_.stats.kernel_accesses.get(kid, 0)
                kernel_result.l2_hits += slice_.stats.kernel_hits.get(kid, 0)
            if run.spec.is_pim:
                # Channel stats only track MEM row outcomes; PIM locality
                # comes from the executors.  With several concurrent PIM
                # kernels this attributes the aggregate to each, which is
                # exact for the single-PIM-kernel scenarios we model.
                ops = sum(e.stats.ops_executed for e in self.pim_execs)
                switches = sum(e.stats.row_switches for e in self.pim_execs)
                kernel_result.dram_row_hits = ops - switches
                kernel_result.dram_row_conflicts = switches
            result.kernels[kid] = kernel_result

        blps = [
            channel.bank_level_parallelism(executor.busy_intervals)
            for channel, executor in zip(self.channels, self.pim_execs)
        ]
        active = [c for c in blps if c > 0]
        result.bank_level_parallelism = sum(active) / len(active) if active else 0.0
        hits = sum(c.stats.mem_hits for c in self.channels)
        total = sum(c.stats.mem_accesses for c in self.channels)
        result.row_buffer_hit_rate = hits / total if total else 0.0

        drain_latencies: List[int] = []
        total_switches = 0
        switches_to_pim = 0
        extra_conflicts = 0
        mode_cycles = {Mode.MEM: 0, Mode.PIM: 0}
        for controller in self.controllers:
            stats = controller.stats
            total_switches += stats.switches
            switches_to_pim += stats.switches_to_pim
            extra_conflicts += stats.additional_conflicts
            drain_latencies.extend(stats.mem_drain_latencies)
            for mode, cycles in stats.mode_cycles.items():
                mode_cycles[mode] += cycles
        result.mode_switches = total_switches
        result.switches_to_pim = switches_to_pim
        result.additional_conflicts_per_switch = (
            extra_conflicts / switches_to_pim if switches_to_pim else 0.0
        )
        result.mem_drain_latency_per_switch = (
            sum(drain_latencies) / len(drain_latencies) if drain_latencies else 0.0
        )
        result.mode_cycles = mode_cycles
        result.noc_rejects = sum(b.total_rejects for b in self.input_buffers)
        if self.telemetry is not None:
            result.telemetry = self.telemetry.summary()
        return result
