"""Result export: SimResult / outcome records to JSON and CSV.

Downstream analysis usually happens in pandas or a plotting notebook;
these helpers flatten the simulator's result objects into plain rows.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.sim.results import SimResult

PathLike = Union[str, Path]


def result_to_dict(result: SimResult) -> Dict:
    """Flatten a SimResult into JSON-serializable data.

    The ``telemetry`` key (per-hop latency percentiles, event counts) is
    only present when the run had telemetry enabled (see :mod:`repro.obs`).
    """
    record = {
        "cycles": result.cycles,
        "bank_level_parallelism": result.bank_level_parallelism,
        "row_buffer_hit_rate": result.row_buffer_hit_rate,
        "mode_switches": result.mode_switches,
        "switches_to_pim": result.switches_to_pim,
        "additional_conflicts_per_switch": result.additional_conflicts_per_switch,
        "mem_drain_latency_per_switch": result.mem_drain_latency_per_switch,
        "mode_cycles": {mode.value: cycles for mode, cycles in result.mode_cycles.items()},
        "noc_rejects": result.noc_rejects,
        "kernels": [kernel_to_dict(k) for k in result.kernels.values()],
    }
    if result.telemetry is not None:
        record["telemetry"] = result.telemetry
    return record


def kernel_to_dict(kernel) -> Dict:
    return {
        "kernel_id": kernel.kernel_id,
        "name": kernel.name,
        "is_pim": kernel.is_pim,
        "first_duration": kernel.first_duration,
        "completions": kernel.completions,
        "requests_injected": kernel.requests_injected,
        "mc_arrivals": kernel.mc_arrivals,
        "l2_accesses": kernel.l2_accesses,
        "l2_hits": kernel.l2_hits,
        "l2_hit_rate": kernel.l2_hit_rate,
        "dram_row_hits": kernel.dram_row_hits,
        "dram_row_misses": kernel.dram_row_misses,
        "dram_row_conflicts": kernel.dram_row_conflicts,
        "row_buffer_hit_rate": kernel.row_buffer_hit_rate,
    }


def result_from_dict(record: Dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output.

    Derived per-kernel fields (hit rates) are recomputed, not trusted;
    the roundtrip is exact for every stored field, which is what lets the
    result store hand back cached runs indistinguishable from fresh ones.
    """
    return SimResult.from_payload(record)


def save_result_json(result: SimResult, path: PathLike) -> None:
    with open(path, "w") as fh:
        json.dump(result_to_dict(result), fh, indent=2)


def load_result_json(path: PathLike) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def save_rows_csv(rows: Sequence[Dict], path: PathLike) -> None:
    """Write a list of flat dicts as CSV (union of keys, sorted header)."""
    if not rows:
        raise ValueError("no rows to write")
    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def save_kernels_csv(result: SimResult, path: PathLike) -> None:
    save_rows_csv([kernel_to_dict(k) for k in result.kernels.values()], path)
