"""Simulation result records.

:class:`SimResult` aggregates everything the metrics and experiment layers
need: per-kernel execution times, injection/arrival counts, DRAM service
statistics, and memory-controller switch bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.request import Mode


@dataclass
class KernelResult:
    """Outcome of one kernel in a simulation."""

    kernel_id: int
    name: str
    is_pim: bool
    first_duration: Optional[int] = None  # cycles, first completed run
    completions: int = 0
    requests_injected: int = 0  # requests entering the interconnect
    mc_arrivals: int = 0  # requests arriving at memory controllers
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_row_conflicts: int = 0

    @property
    def dram_accesses(self) -> int:
        return self.dram_row_hits + self.dram_row_misses + self.dram_row_conflicts

    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.dram_accesses
        return self.dram_row_hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def injection_rate(self, cycles: int) -> float:
        """Interconnect request arrival rate (requests per cycle), Fig 4a."""
        return self.requests_injected / cycles if cycles else 0.0

    def mc_arrival_rate(self, cycles: int) -> float:
        """DRAM request arrival rate (requests per cycle), Fig 4b / Fig 6."""
        return self.mc_arrivals / cycles if cycles else 0.0


@dataclass
class SimResult:
    """Full outcome of one simulation run."""

    cycles: int
    kernels: Dict[int, KernelResult] = field(default_factory=dict)
    # DRAM utilization, aggregated over channels.
    bank_level_parallelism: float = 0.0
    row_buffer_hit_rate: float = 0.0
    # Memory-controller aggregates (summed over channels).
    mode_switches: int = 0
    switches_to_pim: int = 0
    additional_conflicts_per_switch: float = 0.0
    mem_drain_latency_per_switch: float = 0.0
    mode_cycles: Dict[Mode, int] = field(default_factory=dict)
    noc_rejects: int = 0
    # Telemetry stats summary (Telemetry.summary()); only populated when the
    # run had telemetry enabled (see repro.obs).
    telemetry: Optional[Dict] = None

    def kernel(self, kernel_id: int) -> KernelResult:
        return self.kernels[kernel_id]

    def by_name(self, name: str) -> KernelResult:
        for result in self.kernels.values():
            if result.name == name:
                return result
        raise KeyError(f"no kernel named {name!r}")

    @property
    def all_completed(self) -> bool:
        return all(k.first_duration is not None for k in self.kernels.values())

    def durations(self) -> List[int]:
        return [k.first_duration for k in self.kernels.values() if k.first_duration is not None]
