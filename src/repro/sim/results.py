"""Simulation result records.

:class:`SimResult` aggregates everything the metrics and experiment layers
need: per-kernel execution times, injection/arrival counts, DRAM service
statistics, and memory-controller switch bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.request import Mode


@dataclass
class KernelResult:
    """Outcome of one kernel in a simulation."""

    kernel_id: int
    name: str
    is_pim: bool
    first_duration: Optional[int] = None  # cycles, first completed run
    completions: int = 0
    requests_injected: int = 0  # requests entering the interconnect
    mc_arrivals: int = 0  # requests arriving at memory controllers
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_row_conflicts: int = 0

    @property
    def dram_accesses(self) -> int:
        return self.dram_row_hits + self.dram_row_misses + self.dram_row_conflicts

    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.dram_accesses
        return self.dram_row_hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def injection_rate(self, cycles: int) -> float:
        """Interconnect request arrival rate (requests per cycle), Fig 4a."""
        return self.requests_injected / cycles if cycles else 0.0

    def mc_arrival_rate(self, cycles: int) -> float:
        """DRAM request arrival rate (requests per cycle), Fig 4b / Fig 6."""
        return self.mc_arrivals / cycles if cycles else 0.0

    @classmethod
    def from_payload(cls, payload: Dict) -> "KernelResult":
        """Rebuild from an exported dict, ignoring derived/extra fields."""
        fields = {
            "kernel_id", "name", "is_pim", "first_duration", "completions",
            "requests_injected", "mc_arrivals", "l2_accesses", "l2_hits",
            "dram_row_hits", "dram_row_misses", "dram_row_conflicts",
        }
        return cls(**{k: v for k, v in payload.items() if k in fields})


@dataclass
class SimResult:
    """Full outcome of one simulation run."""

    cycles: int
    kernels: Dict[int, KernelResult] = field(default_factory=dict)
    # DRAM utilization, aggregated over channels.
    bank_level_parallelism: float = 0.0
    row_buffer_hit_rate: float = 0.0
    # Memory-controller aggregates (summed over channels).
    mode_switches: int = 0
    switches_to_pim: int = 0
    additional_conflicts_per_switch: float = 0.0
    mem_drain_latency_per_switch: float = 0.0
    mode_cycles: Dict[Mode, int] = field(default_factory=dict)
    noc_rejects: int = 0
    # Telemetry stats summary (Telemetry.summary()); only populated when the
    # run had telemetry enabled (see repro.obs).
    telemetry: Optional[Dict] = None

    def kernel(self, kernel_id: int) -> KernelResult:
        return self.kernels[kernel_id]

    def by_name(self, name: str) -> KernelResult:
        for result in self.kernels.values():
            if result.name == name:
                return result
        raise KeyError(f"no kernel named {name!r}")

    @property
    def all_completed(self) -> bool:
        return all(k.first_duration is not None for k in self.kernels.values())

    def durations(self) -> List[int]:
        return [k.first_duration for k in self.kernels.values() if k.first_duration is not None]

    @classmethod
    def from_payload(cls, payload: Dict) -> "SimResult":
        """Rebuild from :func:`repro.sim.export.result_to_dict` output.

        The inverse of the JSON export (used by the result store): mode
        keys come back as :class:`Mode` members and kernels re-key by id,
        so ``from_payload(result_to_dict(r)) == r`` for any completed run
        (telemetry summaries survive verbatim).
        """
        result = cls(
            cycles=payload["cycles"],
            bank_level_parallelism=payload.get("bank_level_parallelism", 0.0),
            row_buffer_hit_rate=payload.get("row_buffer_hit_rate", 0.0),
            mode_switches=payload.get("mode_switches", 0),
            switches_to_pim=payload.get("switches_to_pim", 0),
            additional_conflicts_per_switch=payload.get("additional_conflicts_per_switch", 0.0),
            mem_drain_latency_per_switch=payload.get("mem_drain_latency_per_switch", 0.0),
            mode_cycles={
                Mode(mode): cycles
                for mode, cycles in payload.get("mode_cycles", {}).items()
            },
            noc_rejects=payload.get("noc_rejects", 0),
            telemetry=payload.get("telemetry"),
        )
        for kernel_payload in payload.get("kernels", []):
            kernel = KernelResult.from_payload(kernel_payload)
            result.kernels[kernel.kernel_id] = kernel
        return result
