"""Order-preserving active sets for the cycle engine.

The engine's stage loops visit their active members in ascending index
order — iteration order is *simulated behaviour* (reply sequence numbers
are assigned in visit order), so it must be deterministic and stable.
The original implementation kept plain ``set`` objects and paid a
``sorted()`` per stage per cycle; :class:`OrderedIndexSet` maintains the
ascending order incrementally instead.

Membership is tracked in a hash set; the iteration order lives in a
sorted list updated by bisection insert / list removal.  Active sets hold
small dense indices (channels, SMs), so the O(n) list operations are
single C-level ``memmove``s and beat re-sorting every cycle.

``snapshot()`` returns a copy for loops that discard members while
iterating (every drain-style stage does).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, Iterator, List, Set


class OrderedIndexSet:
    """A set of small integer indices, iterable in ascending order."""

    __slots__ = ("_members", "_order")

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._members: Set[int] = set(items)
        self._order: List[int] = sorted(self._members)

    def add(self, key: int) -> None:
        if key not in self._members:
            self._members.add(key)
            insort(self._order, key)

    def discard(self, key: int) -> None:
        if key in self._members:
            self._members.remove(key)
            self._order.remove(key)

    def update(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.add(key)

    def snapshot(self) -> List[int]:
        """Ascending copy, safe to iterate while mutating the set."""
        return self._order.copy()

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: int) -> bool:
        return key in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedIndexSet({self._order!r})"


class DenseIndexSet:
    """Flag-array drop-in for :class:`OrderedIndexSet` over ``range(n)``.

    The SoA engine's fused stage loops visit their members with C-level
    ``list.index(True, start)`` scans, so membership lives in a plain
    list of flags: ``add``/``discard`` become single subscript stores —
    which the fused loops inline as ``active._flags[key] = True``.  The
    list carries one extra always-``True`` sentinel flag at index
    ``size`` so a scan terminates without raising ``ValueError``:
    ``index(True, k)`` returning ``size`` means "no member at or after
    ``k``".  The full ``OrderedIndexSet`` API is kept so the
    object-engine fallback paths (wake-heap drain, telemetry stages,
    buffer watch hooks) work unchanged on either implementation.

    Not for sparse/unbounded keys: every operation is O(n) or O(1) with
    n the fixed universe size, which beats set-plus-sorted-list churn
    only because n is a handful of dense indices.
    """

    __slots__ = ("_flags", "_size")

    def __init__(self, size: int, items: Iterable[int] = ()) -> None:
        self._size = size
        self._flags: List[bool] = [False] * size + [True]
        for key in items:
            self._flags[key] = True

    def add(self, key: int) -> None:
        self._flags[key] = True

    def discard(self, key: int) -> None:
        self._flags[key] = False

    def update(self, keys: Iterable[int]) -> None:
        flags = self._flags
        for key in keys:
            flags[key] = True

    def snapshot(self) -> List[int]:
        """Ascending copy, safe to iterate while mutating the set."""
        flags = self._flags
        return [key for key in range(self._size) if flags[key]]

    def __bool__(self) -> bool:
        return self._flags.index(True) < self._size

    def __len__(self) -> int:
        return self._flags.count(True) - 1

    def __contains__(self, key: int) -> bool:
        return self._flags[key]

    def __iter__(self) -> Iterator[int]:
        flags = self._flags
        return (key for key in range(self._size) if flags[key])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DenseIndexSet({self.snapshot()!r})"
