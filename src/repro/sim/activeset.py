"""Order-preserving active sets for the cycle engine.

The engine's stage loops visit their active members in ascending index
order — iteration order is *simulated behaviour* (reply sequence numbers
are assigned in visit order), so it must be deterministic and stable.
The original implementation kept plain ``set`` objects and paid a
``sorted()`` per stage per cycle; :class:`OrderedIndexSet` maintains the
ascending order incrementally instead.

Membership is tracked in a hash set; the iteration order lives in a
sorted list updated by bisection insert / list removal.  Active sets hold
small dense indices (channels, SMs), so the O(n) list operations are
single C-level ``memmove``s and beat re-sorting every cycle.

``snapshot()`` returns a copy for loops that discard members while
iterating (every drain-style stage does).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, Iterator, List, Set


class OrderedIndexSet:
    """A set of small integer indices, iterable in ascending order."""

    __slots__ = ("_members", "_order")

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._members: Set[int] = set(items)
        self._order: List[int] = sorted(self._members)

    def add(self, key: int) -> None:
        if key not in self._members:
            self._members.add(key)
            insort(self._order, key)

    def discard(self, key: int) -> None:
        if key in self._members:
            self._members.remove(key)
            self._order.remove(key)

    def update(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.add(key)

    def snapshot(self) -> List[int]:
        """Ascending copy, safe to iterate while mutating the set."""
        return self._order.copy()

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, key: int) -> bool:
        return key in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderedIndexSet({self._order!r})"
