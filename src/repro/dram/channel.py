"""DRAM channel: banks plus channel-level command/data rails.

A channel owns its banks, the shared data bus (column commands are spaced
by the burst length), and the tRRD activate rail.  MEM requests are
serviced per bank, concurrently across banks; PIM requests are executed by
the lock-step executor (:mod:`repro.pim.executor`), which shares the same
bank state so mode switches correctly destroy/restore row locality.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.bank import AccessKind, Bank
from repro.dram.timings import DRAMTimings
from repro.request import Request, RequestType


def merge_intervals(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of half-open intervals."""
    if not intervals:
        return 0
    total = 0
    current_start, current_end = None, None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if current_start is None:
            current_start, current_end = start, end
        elif start <= current_end:
            current_end = max(current_end, end)
        else:
            total += current_end - current_start
            current_start, current_end = start, end
    if current_start is not None:
        total += current_end - current_start
    return total


@dataclass
class ChannelStats:
    """Per-channel service statistics."""

    mem_hits: int = 0
    mem_misses: int = 0
    mem_conflicts: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    pim_ops: int = 0
    pim_row_switches: int = 0
    # Per-kernel row-buffer outcome counts: kernel_id -> [hits, misses, conflicts]
    kernel_outcomes: Dict[int, List[int]] = field(default_factory=dict)

    def record_mem(self, kind: AccessKind, request: Request) -> None:
        if kind is AccessKind.HIT:
            self.mem_hits += 1
        elif kind is AccessKind.MISS:
            self.mem_misses += 1
        else:
            self.mem_conflicts += 1
        if request.type is RequestType.MEM_STORE:
            self.mem_writes += 1
        else:
            self.mem_reads += 1
        outcome = self.kernel_outcomes.setdefault(request.kernel_id, [0, 0, 0])
        outcome[(AccessKind.HIT, AccessKind.MISS, AccessKind.CONFLICT).index(kind)] += 1

    @property
    def mem_accesses(self) -> int:
        return self.mem_hits + self.mem_misses + self.mem_conflicts

    @property
    def row_buffer_hit_rate(self) -> float:
        total = self.mem_accesses
        return self.mem_hits / total if total else 0.0


class Channel:
    """One HBM channel with ``banks_per_channel`` banks."""

    def __init__(
        self,
        index: int,
        num_banks: int,
        timings: DRAMTimings,
        log_commands: bool = False,
    ) -> None:
        self.index = index
        self.timings = timings
        self.banks = [Bank(i, timings) for i in range(num_banks)]
        self.stats = ChannelStats()
        #: Optional JEDEC-style command log for repro.dram.validate.
        self.log_commands = log_commands
        self.command_log: List["Command"] = []

        # Channel-level rails.
        self.next_col_bus = 0  # data-bus availability (burst spacing)
        self.next_act = 0  # tRRD rail

        # In-flight MEM requests as a min-heap of (completion, seq, request).
        self._in_flight: List[Tuple[int, int, Request]] = []
        self._heap_seq = 0

    # -- queries ----------------------------------------------------------

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    def is_row_hit(self, request: Request) -> bool:
        return self.banks[request.bank].is_row_hit(request.row)

    def classify(self, request: Request) -> AccessKind:
        return self.banks[request.bank].classify(request.row)

    def bank_can_accept(self, bank: int, cycle: int) -> bool:
        return self.banks[bank].can_accept(cycle)

    def mem_in_flight(self) -> int:
        return len(self._in_flight)

    def next_completion_cycle(self) -> Optional[int]:
        """Completion cycle of the earliest in-flight MEM request.

        Fast-forward contract: no in-flight request completes before this,
        so the engine may jump the clock up to (but not past) it.
        """
        return self._in_flight[0][0] if self._in_flight else None

    def drain_complete_cycle(self) -> int:
        """Cycle by which every in-flight MEM request will have completed."""
        if not self._in_flight:
            return 0
        return max(completion for completion, _, _ in self._in_flight)

    def all_banks_idle(self, cycle: int) -> bool:
        return not self._in_flight and all(b.is_idle(cycle) for b in self.banks)

    def open_rows(self) -> List[Optional[int]]:
        return [b.open_row for b in self.banks]

    def next_bank_event(self, cycle: int) -> int:
        """Earliest future cycle at which some bank becomes acceptable.

        Used by the controller to skip idle decision cycles.
        """
        best = -1
        for bank in self.banks:
            accept_at = bank.state.accept_at
            if accept_at > cycle and (best < 0 or accept_at < best):
                best = accept_at
        return best if best > 0 else cycle + 1

    # -- MEM servicing ------------------------------------------------------

    def issue_mem(self, request: Request, cycle: int) -> int:
        """Service a MEM request; returns its completion cycle."""
        bank = self.banks[request.bank]
        if not bank.can_accept(cycle):
            raise RuntimeError(
                f"bank {request.bank} cannot accept at cycle {cycle} "
                f"(accept_at={bank.state.accept_at})"
            )
        is_write = request.type is RequestType.MEM_STORE
        kind, first_cmd, col, completion, act = bank.schedule(
            cycle, request.row, is_write, self.next_col_bus, self.next_act
        )
        self.next_col_bus = col + self.timings.burst_length
        if act is not None:
            self.next_act = act + self.timings.tRRD
        if self.log_commands:
            self._log_mem_commands(request, kind, first_cmd, col, act, is_write)
        self.stats.record_mem(kind, request)
        request.access_kind = kind.value
        request.cycle_issued = cycle
        return self._finish_issue(request, completion)

    def _log_mem_commands(self, request, kind, first_cmd, col, act, is_write) -> None:
        from repro.dram.validate import ACT, PRE, READ, WRITE, Command

        if kind is AccessKind.CONFLICT:
            self.command_log.append(Command(first_cmd, PRE, request.bank))
        if act is not None:
            self.command_log.append(Command(act, ACT, request.bank, request.row))
        kind_name = WRITE if is_write else READ
        self.command_log.append(Command(col, kind_name, request.bank, request.row))

    def _finish_issue(self, request: Request, completion: int) -> int:
        self._heap_seq += 1
        heapq.heappush(self._in_flight, (completion, self._heap_seq, request))
        return completion

    def pop_completed(self, cycle: int) -> List[Request]:
        """Return MEM requests whose service completes at or before ``cycle``."""
        done: List[Request] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            completion, _, request = heapq.heappop(self._in_flight)
            request.cycle_completed = completion
            done.append(request)
        return done

    # -- BLP accounting -----------------------------------------------------

    def bank_level_parallelism(
        self, all_bank_intervals: Optional[List[Tuple[int, int]]] = None
    ) -> float:
        """Average number of busy banks over cycles with >=1 busy bank.

        ``all_bank_intervals`` are intervals during which *every* bank was
        busy (the lock-step PIM executor's occupancy).
        """
        all_intervals: List[Tuple[int, int]] = []
        busy_bank_cycles = 0
        for bank in self.banks:
            intervals = bank.state.busy_intervals
            busy_bank_cycles += merge_intervals(intervals)
            all_intervals.extend(intervals)
        if all_bank_intervals:
            busy_bank_cycles += merge_intervals(all_bank_intervals) * self.num_banks
            all_intervals.extend(all_bank_intervals)
        active = merge_intervals(all_intervals)
        return busy_bank_cycles / active if active else 0.0

    def active_cycles(
        self, all_bank_intervals: Optional[List[Tuple[int, int]]] = None
    ) -> int:
        all_intervals: List[Tuple[int, int]] = []
        for bank in self.banks:
            all_intervals.extend(bank.state.busy_intervals)
        if all_bank_intervals:
            all_intervals.extend(all_bank_intervals)
        return merge_intervals(all_intervals)

    def reset(self) -> None:
        for bank in self.banks:
            bank.reset()
        self.stats = ChannelStats()
        self.next_col_bus = 0
        self.next_act = 0
        self._in_flight.clear()
        self.command_log.clear()
