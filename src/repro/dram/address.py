"""Physical address mapping.

Table I gives the paper's address map as a bit string (MSB to LSB)::

    RRRRRRRR RRRRRRRR RRRRRBBB CCCBDDDD DCCC

where R=row, B=bank, C=column and D=channel.  The paper deliberately uses
this regular scheme (instead of pseudo-random I-poly interleaving) so PIM
kernels can map warps to channels and threads to banks.

:class:`AddressMapper` parses such a spec string and provides bidirectional
translation between flat byte addresses and (channel, bank, row, column)
coordinates.  The mapping is a bijection over the address bits named in the
spec; any address bits above the spec are treated as additional row bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# Paper's map, MSB first (dots are cosmetic separators).
PAPER_ADDRESS_MAP = "RRRRRRRRRRRRRRRRRRRRRBBBCCCBDDDDDCCC"

_FIELDS = {"R": "row", "B": "bank", "C": "column", "D": "channel"}


@dataclass(frozen=True)
class DecodedAddress:
    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Bit-sliced address mapper built from a spec string.

    Parameters
    ----------
    spec:
        String of characters from ``{R, B, C, D}`` (dots/spaces ignored),
        written MSB first.  Each letter assigns one address bit to the
        corresponding field; bits are concatenated MSB-first within a
        field.
    """

    def __init__(self, spec: str = PAPER_ADDRESS_MAP) -> None:
        clean = [c for c in spec if c not in ". _"]
        unknown = sorted({c for c in clean if c not in _FIELDS})
        if unknown:
            raise ValueError(f"unknown field letters in address map: {unknown}")
        if not clean:
            raise ValueError("empty address map spec")
        self.spec = "".join(clean)
        self.total_bits = len(clean)

        # For each field, the list of address-bit positions (LSB=0) holding
        # its bits, ordered from the field's own MSB to LSB.
        positions: Dict[str, List[int]] = {name: [] for name in _FIELDS.values()}
        for i, letter in enumerate(clean):
            bit = self.total_bits - 1 - i  # MSB first in the spec
            positions[_FIELDS[letter]].append(bit)
        self._positions = positions

        self.channel_bits = len(positions["channel"])
        self.bank_bits = len(positions["bank"])
        self.row_bits = len(positions["row"])
        self.column_bits = len(positions["column"])

    @property
    def num_channels(self) -> int:
        return 1 << self.channel_bits

    @property
    def num_banks(self) -> int:
        return 1 << self.bank_bits

    @property
    def num_rows(self) -> int:
        return 1 << self.row_bits

    @property
    def num_columns(self) -> int:
        return 1 << self.column_bits

    def _extract(self, address: int, field: str) -> int:
        value = 0
        for bit in self._positions[field]:
            value = (value << 1) | ((address >> bit) & 1)
        return value

    def decode(self, address: int) -> DecodedAddress:
        """Split a flat byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        base = address & ((1 << self.total_bits) - 1)
        extra_row = address >> self.total_bits  # overflow bits extend the row
        return DecodedAddress(
            channel=self._extract(base, "channel"),
            bank=self._extract(base, "bank"),
            row=self._extract(base, "row") | (extra_row << self.row_bits),
            column=self._extract(base, "column"),
        )

    def encode(self, channel: int, bank: int, row: int, column: int) -> int:
        """Compose DRAM coordinates back into a flat byte address."""
        fields = {"channel": channel, "bank": bank, "row": row, "column": column}
        for name, value in fields.items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("channel", "bank", "column"):
            width = len(self._positions[name])
            if fields[name] >= (1 << width):
                raise ValueError(f"{name}={fields[name]} exceeds {width} bits")
        extra_row = row >> self.row_bits
        fields["row"] = row & ((1 << self.row_bits) - 1)

        address = extra_row << self.total_bits
        for name, value in fields.items():
            bits = self._positions[name]
            for i, bit in enumerate(bits):
                # bits[] is MSB-first for the field.
                field_bit = (value >> (len(bits) - 1 - i)) & 1
                address |= field_bit << bit
        return address

    def assign(self, request) -> None:
        """Decode ``request.address`` into the request's coordinate fields."""
        decoded = self.decode(request.address)
        request.channel = decoded.channel
        request.bank = decoded.bank
        request.row = decoded.row
        request.column = decoded.column

    def shape(self) -> Tuple[int, int, int, int]:
        return (self.num_channels, self.num_banks, self.num_rows, self.num_columns)


def scaled_address_map(channel_bits: int, bank_bits: int = 4, column_bits: int = 7, row_bits: int = 16) -> str:
    """Build a paper-style address map with a different channel count.

    Keeps the paper's general structure (row bits on top, channel bits low
    so consecutive cache lines stripe across channels, a column split
    around the channel bits for burst locality).
    """
    if min(channel_bits, bank_bits, row_bits) < 0 or column_bits < 1:
        raise ValueError("bit widths must be non-negative (>=1 column bit)")
    low_col = min(3, column_bits)
    high_col = column_bits - low_col
    return "R" * row_bits + "B" * bank_bits + "C" * high_col + "D" * channel_bits + "C" * low_col
