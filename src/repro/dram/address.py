"""Physical address mapping.

Table I gives the paper's address map as a bit string (MSB to LSB)::

    RRRRRRRR RRRRRRRR RRRRRBBB CCCBDDDD DCCC

where R=row, B=bank, C=column and D=channel.  The paper deliberately uses
this regular scheme (instead of pseudo-random I-poly interleaving) so PIM
kernels can map warps to channels and threads to banks.

:class:`AddressMapper` parses such a spec string and provides bidirectional
translation between flat byte addresses and (channel, bank, row, column)
coordinates.  The mapping is a bijection over the address bits named in the
spec; any address bits above the spec are treated as additional row bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# Paper's map, MSB first (dots are cosmetic separators).
PAPER_ADDRESS_MAP = "RRRRRRRRRRRRRRRRRRRRRBBBCCCBDDDDDCCC"

_FIELDS = {"R": "row", "B": "bank", "C": "column", "D": "channel"}


@dataclass(frozen=True)
class DecodedAddress:
    channel: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Bit-sliced address mapper built from a spec string.

    Parameters
    ----------
    spec:
        String of characters from ``{R, B, C, D}`` (dots/spaces ignored),
        written MSB first.  Each letter assigns one address bit to the
        corresponding field; bits are concatenated MSB-first within a
        field.
    """

    def __init__(self, spec: str = PAPER_ADDRESS_MAP) -> None:
        clean = [c for c in spec if c not in ". _"]
        unknown = sorted({c for c in clean if c not in _FIELDS})
        if unknown:
            raise ValueError(f"unknown field letters in address map: {unknown}")
        if not clean:
            raise ValueError("empty address map spec")
        self.spec = "".join(clean)
        self.total_bits = len(clean)

        # For each field, the list of address-bit positions (LSB=0) holding
        # its bits, ordered from the field's own MSB to LSB.
        positions: Dict[str, List[int]] = {name: [] for name in _FIELDS.values()}
        for i, letter in enumerate(clean):
            bit = self.total_bits - 1 - i  # MSB first in the spec
            positions[_FIELDS[letter]].append(bit)
        self._positions = positions

        self.channel_bits = len(positions["channel"])
        self.bank_bits = len(positions["bank"])
        self.row_bits = len(positions["row"])
        self.column_bits = len(positions["column"])

        # Compile each field's bit positions into contiguous runs of
        # (field_shift, address_shift, mask) so encode/decode are a handful
        # of shift/mask ops instead of a per-bit loop.  A run covers address
        # bits [addr_shift, addr_shift + width) holding field-value bits
        # [field_shift, field_shift + width).
        self._field_runs: Dict[str, List[Tuple[int, int, int]]] = {}
        for name, bits in positions.items():
            runs: List[Tuple[int, int, int]] = []
            i = 0
            width = len(bits)
            while i < width:
                j = i
                while j + 1 < width and bits[j + 1] == bits[j] - 1:
                    j += 1
                run_width = j - i + 1
                field_shift = width - 1 - j  # LSB of the run within the field
                runs.append((field_shift, bits[j], (1 << run_width) - 1))
                i = j + 1
            self._field_runs[name] = runs
        self._base_mask = (1 << self.total_bits) - 1
        self._row_mask = (1 << self.row_bits) - 1

    @property
    def num_channels(self) -> int:
        return 1 << self.channel_bits

    @property
    def num_banks(self) -> int:
        return 1 << self.bank_bits

    @property
    def num_rows(self) -> int:
        return 1 << self.row_bits

    @property
    def num_columns(self) -> int:
        return 1 << self.column_bits

    def _extract(self, address: int, field: str) -> int:
        value = 0
        for field_shift, addr_shift, mask in self._field_runs[field]:
            value |= ((address >> addr_shift) & mask) << field_shift
        return value

    def decode(self, address: int) -> DecodedAddress:
        """Split a flat byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError("address must be non-negative")
        base = address & self._base_mask
        extra_row = address >> self.total_bits  # overflow bits extend the row
        return DecodedAddress(
            channel=self._extract(base, "channel"),
            bank=self._extract(base, "bank"),
            row=self._extract(base, "row") | (extra_row << self.row_bits),
            column=self._extract(base, "column"),
        )

    def encode(self, channel: int, bank: int, row: int, column: int) -> int:
        """Compose DRAM coordinates back into a flat byte address."""
        if channel < 0 or bank < 0 or row < 0 or column < 0:
            raise ValueError("channel/bank/row/column must be non-negative")
        if channel >> self.channel_bits:
            raise ValueError(f"channel={channel} exceeds {self.channel_bits} bits")
        if bank >> self.bank_bits:
            raise ValueError(f"bank={bank} exceeds {self.bank_bits} bits")
        if column >> self.column_bits:
            raise ValueError(f"column={column} exceeds {self.column_bits} bits")

        runs = self._field_runs
        address = (row >> self.row_bits) << self.total_bits
        row &= self._row_mask
        for field_shift, addr_shift, mask in runs["row"]:
            address |= ((row >> field_shift) & mask) << addr_shift
        for field_shift, addr_shift, mask in runs["bank"]:
            address |= ((bank >> field_shift) & mask) << addr_shift
        for field_shift, addr_shift, mask in runs["column"]:
            address |= ((column >> field_shift) & mask) << addr_shift
        for field_shift, addr_shift, mask in runs["channel"]:
            address |= ((channel >> field_shift) & mask) << addr_shift
        return address

    def assign(self, request) -> None:
        """Decode ``request.address`` into the request's coordinate fields.

        This is the *only* place request coordinates are derived; every
        downstream consumer (L2 slicing, the controller's per-bank index,
        DRAM issue) reads the cached fields.
        """
        address = request.address
        if address < 0:
            raise ValueError("address must be non-negative")
        base = address & self._base_mask
        extract = self._extract
        request.channel = extract(base, "channel")
        request.bank = extract(base, "bank")
        request.row = extract(base, "row") | ((address >> self.total_bits) << self.row_bits)
        request.column = extract(base, "column")

    def shape(self) -> Tuple[int, int, int, int]:
        return (self.num_channels, self.num_banks, self.num_rows, self.num_columns)


def scaled_address_map(channel_bits: int, bank_bits: int = 4, column_bits: int = 7, row_bits: int = 16) -> str:
    """Build a paper-style address map with a different channel count.

    Keeps the paper's general structure (row bits on top, channel bits low
    so consecutive cache lines stripe across channels, a column split
    around the channel bits for burst locality).
    """
    if min(channel_bits, bank_bits, row_bits) < 0 or column_bits < 1:
        raise ValueError("bit widths must be non-negative (>=1 column bit)")
    low_col = min(3, column_bits)
    high_col = column_bits - low_col
    return "R" * row_bits + "B" * bank_bits + "C" * high_col + "D" * channel_bits + "C" * low_col
