"""Functional DRAM contents.

The timing model does not need data values, but the examples and functional
tests do: a PIM vector-add should actually produce the right sums.
:class:`DataStore` holds one value per DRAM word, addressed by
(channel, bank, row, column), lazily materialized (untouched words read as
zero).  Values are floats; a DRAM word's SIMD lanes are represented by a
single representative lane, which is sufficient because the modelled FU
applies the same operation to every lane.
"""

from __future__ import annotations

from typing import Dict, Tuple

Coordinate = Tuple[int, int, int, int]  # (channel, bank, row, column)


class DataStore:
    """Sparse functional storage for DRAM words."""

    def __init__(self) -> None:
        self._words: Dict[Coordinate, float] = {}

    def read(self, channel: int, bank: int, row: int, column: int) -> float:
        return self._words.get((channel, bank, row, column), 0.0)

    def write(self, channel: int, bank: int, row: int, column: int, value: float) -> None:
        self._words[(channel, bank, row, column)] = float(value)

    def read_addr(self, mapper, address: int) -> float:
        d = mapper.decode(address)
        return self.read(d.channel, d.bank, d.row, d.column)

    def write_addr(self, mapper, address: int, value: float) -> None:
        d = mapper.decode(address)
        self.write(d.channel, d.bank, d.row, d.column, value)

    def __len__(self) -> int:
        return len(self._words)

    def clear(self) -> None:
        self._words.clear()
