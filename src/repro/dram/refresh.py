"""DRAM refresh model.

HBM requires an all-bank refresh every tREFI on average; each refresh
occupies the channel for tRFC and leaves every bank precharged.  Refresh
interacts with PIM scheduling the same way mode switches do: in-flight
MEM requests must drain and the lock-step PIM executor must be idle before
REF can issue, and the lost row buffers surface as extra conflicts
afterwards.

Like real controllers, the model may postpone up to
``max_postponed`` refreshes (DDR/HBM allow 8) while useful work is
in flight, issuing make-up refreshes back-to-back when it falls behind.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RefreshStats:
    refreshes_issued: int = 0
    cycles_blocked: int = 0
    max_backlog: int = 0


class RefreshTimer:
    """Tracks refresh obligations for one channel."""

    def __init__(self, trefi: int, trfc: int, max_postponed: int = 8, enabled: bool = True) -> None:
        if trefi < 1 or trfc < 1:
            raise ValueError("tREFI and tRFC must be positive")
        if max_postponed < 0:
            raise ValueError("max_postponed must be non-negative")
        self.trefi = trefi
        self.trfc = trfc
        self.max_postponed = max_postponed
        self.enabled = enabled
        self._next_due = trefi
        self._pending = 0
        self.stats = RefreshStats()

    # -- obligation tracking -----------------------------------------------

    def _accrue(self, cycle: int) -> None:
        while cycle >= self._next_due:
            self._pending += 1
            self._next_due += self.trefi
        if self._pending > self.stats.max_backlog:
            self.stats.max_backlog = self._pending

    def pending(self, cycle: int) -> int:
        """Number of refreshes currently owed."""
        if not self.enabled:
            return 0
        self._accrue(cycle)
        return self._pending

    @property
    def backlog(self) -> int:
        """Refreshes owed as of the last accrual (no side effects)."""
        return self._pending

    def next_due_cycle(self) -> int:
        """Cycle at which the next refresh obligation accrues.

        Part of the engine's fast-forward contract: an idle controller with
        refresh enabled must wake no later than this cycle.
        """
        return self._next_due

    def must_refresh(self, cycle: int) -> bool:
        """The postponement budget is exhausted: refresh now."""
        return self.pending(cycle) >= self.max_postponed

    def should_refresh(self, cycle: int) -> bool:
        """A refresh is owed (the controller may still postpone it)."""
        return self.pending(cycle) > 0

    # -- execution -----------------------------------------------------------

    def perform(self, cycle: int) -> int:
        """Issue one refresh starting at ``cycle``; returns its end cycle."""
        if not self.enabled:
            raise RuntimeError("refresh is disabled")
        self._accrue(cycle)
        if self._pending == 0:
            raise RuntimeError("no refresh owed")
        self._pending -= 1
        self.stats.refreshes_issued += 1
        self.stats.cycles_blocked += self.trfc
        return cycle + self.trfc

    def reset(self) -> None:
        self._next_due = self.trefi
        self._pending = 0
        self.stats = RefreshStats()
