"""DRAM command-stream validation.

The bank/channel model schedules a request's commands in one shot
(:meth:`repro.dram.bank.Bank.schedule`).  To verify that the resulting
schedules never violate JEDEC-style constraints, the channel can record
every command it implies (``Channel(log_commands=True)``) and
:func:`validate_command_log` replays the log against the raw timing rules:

* per bank: ACT→column ≥ tRCD, ACT→PRE ≥ tRAS, PRE→ACT ≥ tRP,
  column→column ≥ tCCDl, READ→PRE ≥ tRTP, WRITE-data→PRE ≥ tWR;
* per channel: ACT→ACT ≥ tRRD across banks, column commands spaced by the
  burst length (shared data bus).

Used by the property-based tests as an independent oracle for the timing
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dram.timings import DRAMTimings

#: Command kinds recorded in the log.
ACT = "ACT"
PRE = "PRE"
READ = "READ"
WRITE = "WRITE"


@dataclass(frozen=True)
class Command:
    cycle: int
    kind: str
    bank: int
    row: int = -1


@dataclass
class Violation:
    rule: str
    command: Command
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.rule} at cycle {self.command.cycle} (bank {self.command.bank}): {self.detail}"


class _BankTracker:
    def __init__(self) -> None:
        self.last_act: Optional[int] = None
        self.last_pre: Optional[int] = None
        self.last_col: Optional[int] = None
        self.last_read: Optional[int] = None
        self.last_write: Optional[int] = None
        self.open_row: Optional[int] = None


def validate_command_log(
    commands: List[Command], timings: DRAMTimings
) -> List[Violation]:
    """Check a channel's command log; returns all violations found."""
    t = timings
    banks: Dict[int, _BankTracker] = {}
    last_act_any: Optional[int] = None
    last_col_any: Optional[int] = None
    violations: List[Violation] = []

    def check(condition: bool, rule: str, command: Command, detail: str) -> None:
        if not condition:
            violations.append(Violation(rule, command, detail))

    for command in sorted(commands, key=lambda c: c.cycle):
        bank = banks.setdefault(command.bank, _BankTracker())
        cycle = command.cycle
        if command.kind == ACT:
            check(
                bank.open_row is None,
                "ACT-on-open-row",
                command,
                f"row {bank.open_row} still open",
            )
            if bank.last_pre is not None:
                check(
                    cycle - bank.last_pre >= t.tRP,
                    "tRP",
                    command,
                    f"PRE at {bank.last_pre}",
                )
            if last_act_any is not None:
                check(
                    cycle - last_act_any >= t.tRRD,
                    "tRRD",
                    command,
                    f"previous ACT at {last_act_any}",
                )
            bank.last_act = cycle
            bank.open_row = command.row
            last_act_any = cycle
        elif command.kind == PRE:
            if bank.last_act is not None:
                check(
                    cycle - bank.last_act >= t.tRAS,
                    "tRAS",
                    command,
                    f"ACT at {bank.last_act}",
                )
            if bank.last_read is not None:
                check(
                    cycle - bank.last_read >= t.tRTP,
                    "tRTP",
                    command,
                    f"READ at {bank.last_read}",
                )
            if bank.last_write is not None:
                write_done = bank.last_write + t.tWL + t.burst_length
                check(
                    cycle - write_done >= t.tWR,
                    "tWR",
                    command,
                    f"WRITE data done at {write_done}",
                )
            bank.last_pre = cycle
            bank.open_row = None
        elif command.kind in (READ, WRITE):
            check(
                bank.open_row is not None and bank.open_row == command.row,
                "column-to-closed-row",
                command,
                f"open row is {bank.open_row}, accessed {command.row}",
            )
            if bank.last_act is not None:
                check(
                    cycle - bank.last_act >= t.tRCD,
                    "tRCD",
                    command,
                    f"ACT at {bank.last_act}",
                )
            if bank.last_col is not None:
                check(
                    cycle - bank.last_col >= t.tCCDl,
                    "tCCDl",
                    command,
                    f"previous column at {bank.last_col}",
                )
            if last_col_any is not None:
                check(
                    cycle - last_col_any >= t.burst_length,
                    "data-bus",
                    command,
                    f"previous column (any bank) at {last_col_any}",
                )
            bank.last_col = cycle
            last_col_any = cycle
            if command.kind == READ:
                bank.last_read = cycle
            else:
                bank.last_write = cycle
        else:
            violations.append(Violation("unknown-command", command, command.kind))
    return violations
