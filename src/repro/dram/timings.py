"""HBM timing parameters (Table I of the paper).

All values are in DRAM cycles.  The defaults reproduce the paper's
configuration; alternative technologies can be modelled by constructing a
different :class:`DRAMTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing constraints, Table I defaults.

    Attributes
    ----------
    tCCDs / tCCDl:
        Column-to-column delay, short (different bank group) and long
        (same bank group).
    tRRD:
        Activate-to-activate delay across banks.
    tRCD:
        Activate-to-column delay (row to column).
    tRP:
        Precharge period.
    tRAS:
        Minimum row-open time (activate to precharge).
    tCL:
        Read (CAS) latency.
    tWL:
        Write latency.
    tWR:
        Write recovery (last write data to precharge).
    tRTP:
        Read-to-precharge delay (tRTPL in Table I).
    burst_length:
        Number of bus beats per access (Table I: 2).
    tREFI / tRFC:
        Average refresh interval and refresh cycle time.  Defaults follow
        JESD235 HBM at the paper's 850 MHz DRAM clock (3.9 us / ~260 ns).
    """

    tCCDs: int = 1
    tCCDl: int = 2
    tRRD: int = 3
    tRCD: int = 12
    tRP: int = 12
    tRAS: int = 28
    tCL: int = 12
    tWL: int = 2
    tWR: int = 10
    tRTP: int = 3
    burst_length: int = 2
    tREFI: int = 3315
    tRFC: int = 220

    def __post_init__(self) -> None:
        for name in (
            "tCCDs",
            "tCCDl",
            "tRRD",
            "tRCD",
            "tRP",
            "tRAS",
            "tCL",
            "tWL",
            "tWR",
            "tRTP",
            "burst_length",
            "tREFI",
            "tRFC",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tRAS < self.tRCD:
            raise ValueError("tRAS must cover at least tRCD")

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles a row-buffer miss pays over a hit (ACT only)."""
        return self.tRCD

    @property
    def row_conflict_penalty(self) -> int:
        """Extra cycles a row-buffer conflict pays over a hit (PRE + ACT)."""
        return self.tRP + self.tRCD

    @property
    def read_latency(self) -> int:
        """Column command to last data beat, for a read."""
        return self.tCL + self.burst_length

    @property
    def write_latency(self) -> int:
        """Column command to last data beat, for a write."""
        return self.tWL + self.burst_length
