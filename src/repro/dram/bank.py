"""DRAM bank state machine.

Each bank tracks its open row and the earliest cycles at which it can
legally accept the next column command, precharge, or activate.  The model
services requests as atoms: the channel computes the PRE/ACT/column command
schedule for a request in one shot and advances the bank's rails, which is
equivalent to a command-level model under an open-page policy with greedy
command issue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dram.timings import DRAMTimings


class AccessKind(enum.Enum):
    """Row-buffer outcome of an access."""

    HIT = "hit"
    MISS = "miss"  # row buffer empty (bank precharged)
    CONFLICT = "conflict"  # different row open


@dataclass
class BankState:
    """Mutable timing state of one DRAM bank."""

    open_row: Optional[int] = None
    accept_at: int = 0  # earliest cycle a new request may be issued here
    next_col: int = 0  # earliest next column command (tCCD rail)
    pre_ready: int = 0  # earliest legal precharge
    act_ready: int = 0  # earliest legal activate
    busy_until: int = 0  # completion time of the latest access
    # Set by FR-FCFS-style policies: bank stalls awaiting a mode switch.
    conflict_bit: bool = False
    # Whether this bank issued a request since the last mode switch; the
    # conflict bit may only be set afterwards (Section VII-A: the switch
    # logic "needs to track whether every bank has had at least one
    # request issued before marking the next request as a conflict").
    issued_since_switch: bool = False
    # Busy intervals for bank-level-parallelism accounting.
    busy_intervals: List[Tuple[int, int]] = field(default_factory=list)

    def classify(self, row: int) -> AccessKind:
        if self.open_row is None:
            return AccessKind.MISS
        if self.open_row == row:
            return AccessKind.HIT
        return AccessKind.CONFLICT

    def is_idle(self, cycle: int) -> bool:
        return cycle >= self.busy_until


class Bank:
    """One DRAM bank: row buffer plus timing rails.

    The channel calls :meth:`schedule` to place a request's commands; this
    method returns the scheduled (first_command, column_command, completion)
    cycles and advances all rails.
    """

    def __init__(self, index: int, timings: DRAMTimings) -> None:
        self.index = index
        self.timings = timings
        self.state = BankState()

    # -- queries ---------------------------------------------------------

    @property
    def open_row(self) -> Optional[int]:
        return self.state.open_row

    def classify(self, row: int) -> AccessKind:
        return self.state.classify(row)

    def is_row_hit(self, row: int) -> bool:
        return self.state.open_row == row

    def can_accept(self, cycle: int) -> bool:
        """Whether the controller may issue a new request to this bank."""
        return cycle >= self.state.accept_at

    def is_idle(self, cycle: int) -> bool:
        return self.state.is_idle(cycle)

    # -- command scheduling ----------------------------------------------

    def schedule(
        self,
        cycle: int,
        row: int,
        is_write: bool,
        col_bus_free: int,
        act_rail_free: int,
    ) -> Tuple[AccessKind, int, int, int, Optional[int]]:
        """Place one access's commands starting no earlier than ``cycle``.

        Parameters
        ----------
        col_bus_free / act_rail_free:
            Channel-level constraints: earliest cycle the shared data bus
            can carry another burst / earliest legal ACT under tRRD.

        Returns ``(kind, first_cmd, col_cmd, completion, act_cycle)`` where
        ``act_cycle`` is ``None`` for row hits.  Advances all bank rails.
        """
        t = self.timings
        s = self.state
        kind = s.classify(row)

        act_cycle: Optional[int] = None
        if kind is AccessKind.HIT:
            col = max(cycle, s.next_col, col_bus_free)
            first_cmd = col
        elif kind is AccessKind.MISS:
            act_cycle = max(cycle, s.act_ready, act_rail_free)
            col = max(act_cycle + t.tRCD, s.next_col, col_bus_free)
            first_cmd = act_cycle
        else:  # CONFLICT: PRE then ACT then column
            pre = max(cycle, s.pre_ready)
            act_cycle = max(pre + t.tRP, s.act_ready, act_rail_free)
            col = max(act_cycle + t.tRCD, s.next_col, col_bus_free)
            first_cmd = pre

        if is_write:
            completion = col + t.tWL + t.burst_length
            write_recovery = col + t.tWL + t.burst_length + t.tWR
        else:
            completion = col + t.tCL + t.burst_length
            write_recovery = 0

        # Advance rails.
        s.open_row = row
        s.next_col = col + t.tCCDl
        s.accept_at = col  # next request may be picked once our column slot passes
        if act_cycle is not None:
            s.pre_ready = act_cycle + t.tRAS
            s.act_ready = act_cycle  # future ACTs gated via pre_ready + tRP path
        read_to_pre = 0 if is_write else col + t.tRTP
        s.pre_ready = max(s.pre_ready, read_to_pre, write_recovery)
        s.act_ready = max(s.act_ready, s.pre_ready + t.tRP)
        s.busy_until = max(s.busy_until, completion)
        s.busy_intervals.append((first_cmd, completion))
        return kind, first_cmd, col, completion, act_cycle

    def reset(self) -> None:
        self.state = BankState()
