"""HBM DRAM substrate: timings, address mapping, banks, channels."""

from repro.dram.address import PAPER_ADDRESS_MAP, AddressMapper, DecodedAddress, scaled_address_map
from repro.dram.bank import AccessKind, Bank, BankState
from repro.dram.channel import Channel, ChannelStats, merge_intervals
from repro.dram.power import EnergyAccountant, EnergyBreakdown, EnergyParams
from repro.dram.refresh import RefreshTimer
from repro.dram.storage import DataStore
from repro.dram.timings import DRAMTimings
from repro.dram.validate import Command, Violation, validate_command_log

__all__ = [
    "AccessKind",
    "AddressMapper",
    "Bank",
    "BankState",
    "Channel",
    "ChannelStats",
    "Command",
    "DRAMTimings",
    "DataStore",
    "DecodedAddress",
    "EnergyAccountant",
    "EnergyBreakdown",
    "EnergyParams",
    "PAPER_ADDRESS_MAP",
    "RefreshTimer",
    "Violation",
    "merge_intervals",
    "scaled_address_map",
    "validate_command_log",
]
