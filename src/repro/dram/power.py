"""DRAM + PIM energy model.

A DRAMPower-style event-energy model: each command class carries a fixed
energy, plus background power per channel-cycle.  The constants are
representative of HBM-class devices (order-of-magnitude correct, not
vendor-calibrated) and are easily overridden; what the experiments care
about is the *relative* breakdown — in particular the PIM energy
proposition the paper's introduction cites: PIM ops pay the DRAM core
column energy on every bank but never the I/O, SerDes, interconnect, or
cache energy of moving data to the host.

Energies are in picojoules; reports are in nanojoules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) and background power (pJ/cycle/channel)."""

    act_pre_pj: float = 1200.0  # one ACT + eventual PRE of one bank's row
    core_column_pj: float = 250.0  # DRAM core energy of one 32B column access
    io_pj: float = 750.0  # I/O + bus energy of moving 32B off-device
    pim_fu_pj: float = 60.0  # one FU SIMD op on one DRAM word
    refresh_pj: float = 25_000.0  # one all-bank refresh
    noc_hop_pj: float = 100.0  # one request/reply crossing the interconnect
    background_pj_per_cycle: float = 120.0  # per channel

    def __post_init__(self) -> None:
        for name in (
            "act_pre_pj",
            "core_column_pj",
            "io_pj",
            "pim_fu_pj",
            "refresh_pj",
            "noc_hop_pj",
            "background_pj_per_cycle",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def mem_read_pj(self) -> float:
        """One 32B read reaching the host: core column + I/O."""
        return self.core_column_pj + self.io_pj

    @property
    def mem_write_pj(self) -> float:
        return self.core_column_pj + self.io_pj

    def pim_op_pj(self, banks: int) -> float:
        """One lock-step PIM op: a column access + FU op in every bank."""
        return banks * (self.core_column_pj + self.pim_fu_pj)


@dataclass
class EnergyBreakdown:
    """Energy totals (nJ) by component."""

    activate: float = 0.0
    read: float = 0.0
    write: float = 0.0
    pim: float = 0.0
    refresh: float = 0.0
    noc: float = 0.0
    background: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.activate
            + self.read
            + self.write
            + self.pim
            + self.refresh
            + self.noc
            + self.background
        )

    @property
    def dynamic(self) -> float:
        return self.total - self.background

    def as_dict(self) -> Dict[str, float]:
        return {
            "activate": self.activate,
            "read": self.read,
            "write": self.write,
            "pim": self.pim,
            "refresh": self.refresh,
            "noc": self.noc,
            "background": self.background,
            "total": self.total,
        }


class EnergyAccountant:
    """Turns simulation counters into an :class:`EnergyBreakdown`."""

    def __init__(self, params: EnergyParams = EnergyParams()) -> None:
        self.params = params

    def account(
        self,
        cycles: int,
        num_channels: int,
        activates: int,
        reads: int,
        writes: int,
        pim_ops: int,
        pim_banks: int,
        pim_row_switches: int,
        refreshes: int,
        noc_transfers: int,
    ) -> EnergyBreakdown:
        """All counts are totals across channels; energies come out in nJ."""
        p = self.params
        # PIM row switches precharge+activate every bank in lock-step.
        total_activates = activates + pim_row_switches * pim_banks
        return EnergyBreakdown(
            activate=total_activates * p.act_pre_pj / 1000.0,
            read=reads * p.mem_read_pj / 1000.0,
            write=writes * p.mem_write_pj / 1000.0,
            pim=pim_ops * p.pim_op_pj(pim_banks) / 1000.0,
            refresh=refreshes * p.refresh_pj / 1000.0,
            noc=noc_transfers * p.noc_hop_pj / 1000.0,
            background=cycles * num_channels * p.background_pj_per_cycle / 1000.0,
        )
