"""Content-addressed simulation result store (see docs/store.md).

``fingerprint`` turns simulation inputs into stable content addresses;
``ResultStore`` persists each completed result under its address with
atomic writes and checksummed reads.  Together they make grid sweeps
incremental: any cell already simulated — by this process, an earlier
interrupted run, or another shard — is a cache hit.
"""

from repro.store.disk import ResultStore, StoreEntry, StoreStats
from repro.store.fingerprint import (
    CODE_VERSION_ENV,
    STORE_SCHEMA,
    canonical_json,
    canonical_policy,
    canonicalize,
    code_version,
    competitive_payload,
    fingerprint,
    standalone_payload,
    workload_descriptor,
)

__all__ = [
    "CODE_VERSION_ENV",
    "ResultStore",
    "STORE_SCHEMA",
    "StoreEntry",
    "StoreStats",
    "canonical_json",
    "canonical_policy",
    "canonicalize",
    "code_version",
    "competitive_payload",
    "fingerprint",
    "standalone_payload",
    "workload_descriptor",
]
