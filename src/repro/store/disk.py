"""Content-addressed on-disk result store.

Layout under the store root::

    objects/<key[:2]>/<key>.json   one document per simulation result
    journal.jsonl                  append-only log of writes and GC

Each document carries the fingerprint key it is stored under, the store
schema version, the code version that produced it, free-form ``meta``
(kind + human label, used by ``repro store ls``), a checksum of the
value, and the value itself.  Durability and concurrency rules:

* **Atomic publication.**  Documents are written to a temp file in the
  final directory and ``os.replace``d into place, so a reader (or a
  crash) never observes a half-written object — a cell either exists
  completely or not at all.  That is what makes interrupted sweeps
  resumable: re-running simply misses on the cells that never landed.
* **Checksummed reads.**  ``get`` re-derives the value checksum and
  treats any mismatch — truncation, bit rot, hand-editing — as a miss
  (and records it), never as a crash or a wrong result.
* **Multi-writer safe.**  Keys are content addresses, so two workers
  racing on the same cell write identical documents; last rename wins
  and both outcomes are correct.  The journal is append-only with one
  ``write()`` per line.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.store.fingerprint import STORE_SCHEMA, checksum, code_version

PathLike = Union[str, Path]


@dataclass
class StoreStats:
    """Hit/miss/write accounting for one ResultStore instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    by_kind: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, kind: Optional[str], event: str) -> None:
        setattr(self, event, getattr(self, event) + 1)
        if kind:
            bucket = self.by_kind.setdefault(kind, {})
            bucket[event] = bucket.get(event, 0) + 1


@dataclass
class StoreEntry:
    """One on-disk document, as seen by ls/verify."""

    key: str
    path: Path
    status: str  # "ok" | "corrupt" | "stale"
    kind: str = ""
    label: str = ""
    code: str = ""
    size: int = 0


class ResultStore:
    """Content-addressed store of simulation results.

    ``counters`` may be a :class:`repro.perf.counters.EngineCounters`;
    every hit/miss/write is then also recorded there (``store.hit`` …),
    which is how store activity rides the existing cross-worker counter
    aggregation of ``run_grid_parallel(collect_perf=True)``.  Setting
    ``read_enabled=False`` turns every lookup into a miss while keeping
    writes — the ``--fresh`` sweep mode that recomputes but still
    repopulates the cache.
    """

    JOURNAL = "journal.jsonl"

    def __init__(
        self,
        root: PathLike,
        counters=None,
        read_enabled: bool = True,
    ) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / self.JOURNAL
        self.counters = counters
        self.read_enabled = read_enabled
        self.stats = StoreStats()

    # -- key/value ---------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def object_path(self, key: str) -> Path:
        """On-disk location of ``key``'s document (exists only if put)."""
        return self._path(key)

    def _count(self, kind: Optional[str], event: str) -> None:
        self.stats.record(kind, event)
        if self.counters is not None:
            self.counters.count(f"store.{event}")
            if kind:
                self.counters.count(f"store.{event}.{kind}")

    def get(self, key: str, kind: Optional[str] = None):
        """Return the stored value for ``key`` or ``None`` on any miss.

        Missing, truncated, corrupted, or schema-incompatible documents
        are all misses; corruption is additionally counted so ``verify``
        -style tooling can surface it.
        """
        if not self.read_enabled:
            self._count(kind, "misses")
            return None
        try:
            raw = self._path(key).read_text()
        except OSError:
            self._count(kind, "misses")
            return None
        value, status = self._decode(key, raw)
        if status != "ok":
            if status == "corrupt":
                self._count(kind, "corrupt")
            self._count(kind, "misses")
            return None
        self._count(kind, "hits")
        return value

    def put(self, key: str, value, meta: Optional[Dict] = None) -> Path:
        """Atomically publish ``value`` under ``key`` and journal it."""
        meta = dict(meta or {})
        meta.setdefault("code", code_version())
        document = {
            "key": key,
            "schema": STORE_SCHEMA,
            "meta": meta,
            "checksum": checksum(value),
            "value": value,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(document, sort_keys=True))
        os.replace(tmp, path)
        self._count(meta.get("kind"), "writes")
        self._journal(
            {"event": "put", "key": key, "kind": meta.get("kind", ""), "label": meta.get("label", "")}
        )
        return path

    @staticmethod
    def _decode(key: str, raw: str):
        """Parse + validate one document; returns (value, status)."""
        try:
            document = json.loads(raw)
            value = document["value"]
            if document["key"] != key or document["checksum"] != checksum(value):
                return None, "corrupt"
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None, "corrupt"
        if document.get("schema") != STORE_SCHEMA:
            return None, "stale"
        return value, "ok"

    # -- journal -----------------------------------------------------------

    def _journal(self, record: Dict) -> None:
        line = json.dumps({**record, "ts": time.time()}, sort_keys=True)
        # One O_APPEND write of the whole line: a Ctrl-C or crash between
        # syscalls cannot leave a torn half-line for the next reader
        # (journal_entries tolerates one anyway, but only at the tail).
        fd = os.open(self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode())
        finally:
            os.close(fd)

    def log_event(self, event: str, **fields) -> None:
        """Append a structured event line to the journal (public API).

        Used by the sweep supervisor to record quarantined cells next to
        the ``put`` lines of the cells that did complete, so a store
        directory is a self-contained account of what happened to a grid.
        """
        self._journal({"event": event, **fields})

    def journal_entries(self) -> List[Dict]:
        if not self.journal_path.exists():
            return []
        entries = []
        with open(self.journal_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:  # torn tail line from a crash
                    continue
        return entries

    # -- maintenance -------------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Walk every object file, validating each (ls/verify backend).

        ``stale`` means unreachable by current keys: the document is
        intact but was written by a different code version or store
        schema, so no current lookup can hit it.
        """
        current = code_version()
        for path in sorted(self.objects.glob("*/*.json")):
            key = path.stem
            try:
                raw = path.read_text()
                size = path.stat().st_size
            except OSError:
                continue
            value, status = self._decode(key, raw)
            meta: Dict = {}
            if status != "corrupt":
                meta = json.loads(raw).get("meta", {})
                if status == "ok" and meta.get("code") != current:
                    status = "stale"
            yield StoreEntry(
                key=key,
                path=path,
                status=status,
                kind=meta.get("kind", ""),
                label=meta.get("label", ""),
                code=meta.get("code", ""),
                size=size,
            )

    def verify(self) -> Dict[str, List[StoreEntry]]:
        """Classify every entry as ok / stale / corrupt."""
        report: Dict[str, List[StoreEntry]] = {"ok": [], "stale": [], "corrupt": []}
        for entry in self.entries():
            report[entry.status].append(entry)
        return report

    def gc(self, drop_stale: bool = True, drop_corrupt: bool = True) -> Dict[str, int]:
        """Delete unreachable entries; returns removal counts."""
        removed = {"stale": 0, "corrupt": 0}
        for entry in self.entries():
            if (entry.status == "stale" and drop_stale) or (
                entry.status == "corrupt" and drop_corrupt
            ):
                try:
                    entry.path.unlink()
                except OSError:
                    continue
                removed[entry.status] += 1
        if any(removed.values()):
            self._journal({"event": "gc", **removed})
        return removed
