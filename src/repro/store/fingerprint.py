"""Canonical fingerprints for simulation inputs.

A grid cell is identified by *what* was simulated, never by *when* or
*where*: the fingerprint of (system configuration, workload descriptor,
seed, policy + parameters, code version) is the content address under
which its result is stored (see :mod:`repro.store.disk`).  Two processes
that would run the same simulation must therefore derive the same key,
which drives every rule here:

* **Canonical form first.**  Inputs are reduced to a tree of JSON
  scalars, lists, and string-keyed dicts by :func:`canonicalize`; the
  fingerprint is the SHA-256 of its compact JSON with sorted keys.  Dict
  insertion order, set iteration order, and ``PYTHONHASHSEED`` cannot
  leak into the key.
* **Defaults are resolved.**  ``PolicySpec("F3FS")`` and
  ``PolicySpec("F3FS", mem_cap=4)`` (4 being the default) describe the
  same simulation; :func:`canonical_policy` fills every constructor
  default so they hash equal.  Dataclasses (``SystemConfig``,
  ``ExperimentScale``, kernel specs) carry their defaults in their
  fields, so plain field extraction already canonicalizes them.
* **Code is part of the key.**  Simulator changes change results, so
  :func:`code_version` — a digest of every ``repro`` source file, or the
  ``REPRO_CODE_VERSION`` override — is folded into every key.  Entries
  written by older code become unreachable (and are reaped by
  ``repro store gc``) instead of serving stale results.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import inspect
import json
import math
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional

#: Environment override for the code-version key component (tests, or
#: deployments that pin a release id instead of hashing sources).
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

#: Bump when the store's on-disk document layout changes; old documents
#: are then treated as stale rather than misread.
STORE_SCHEMA = 1


# ---------------------------------------------------------------------------
# canonical form
# ---------------------------------------------------------------------------


def canonicalize(obj):
    """Reduce ``obj`` to a deterministic JSON-serializable tree.

    Handles scalars, enums, numpy scalars, lists/tuples, sets (sorted by
    their canonical encoding), dicts (string-coerced sorted keys), and
    dataclass instances (class name + every field, so defaults are always
    explicit).  Objects may instead supply a ``fingerprint_payload()``
    method returning their canonical description.  Anything else raises
    ``TypeError`` — an unknown type silently hashed by ``repr`` could
    smuggle memory addresses into the key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            return {"__float__": repr(obj)}
        return obj
    if hasattr(obj, "fingerprint_payload"):
        return canonicalize(obj.fingerprint_payload())
    if isinstance(obj, enum.Enum):
        return canonicalize(obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, dict):
        out: Dict[str, object] = {}
        for key, value in obj.items():
            if isinstance(key, str):
                skey = key
            else:
                skey = canonical_json(key)
            if skey in out:
                raise ValueError(f"canonical key collision for {key!r}")
            out[skey] = canonicalize(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        encoded = sorted(canonical_json(item) for item in obj)
        return {"__set__": encoded}
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    item = getattr(obj, "item", None)  # numpy scalar
    if callable(item) and getattr(obj, "shape", None) == ():
        return canonicalize(obj.item())
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def canonical_json(obj) -> str:
    """Compact, key-sorted JSON of the canonical form of ``obj``."""
    return json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint(obj) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def checksum(obj) -> str:
    """Content checksum used to detect corrupted/truncated store files."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# code version
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def _source_version() -> str:
    """Digest of every ``repro`` source file (name + content)."""
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def code_version() -> str:
    """The code-version key component (env override, else source digest)."""
    override = os.environ.get(CODE_VERSION_ENV)
    if override:
        return override
    return _source_version()


# ---------------------------------------------------------------------------
# simulation-input payloads
# ---------------------------------------------------------------------------


def canonical_policy(name: str, params: Optional[Dict] = None) -> Dict:
    """Policy name + parameters with every constructor default resolved.

    ``PolicySpec("BLISS")`` and ``PolicySpec("BLISS", threshold=4)`` (the
    default) canonicalize identically; any non-default value shows up as
    a differing field.  Unknown policies (not in the registry) keep their
    given params verbatim rather than failing — custom registered
    factories may be ``**kwargs``-style.
    """
    from repro.core.policies import _REGISTRY

    resolved = dict(params or {})
    try:
        factory = _REGISTRY[name]
        signature = inspect.signature(factory.__init__ if inspect.isclass(factory) else factory)
        for pname, parameter in signature.parameters.items():
            if pname == "self" or parameter.default is inspect.Parameter.empty:
                continue
            resolved.setdefault(pname, parameter.default)
    except (KeyError, ValueError, TypeError):
        pass
    return {"name": name, "params": resolved}


def workload_descriptor(spec) -> Dict:
    """Canonical description of a kernel spec (the workload's identity).

    Kernel specs are dataclasses whose fields are the workload model's
    parameters; non-dataclass specs fall back to (class, name, kind) and
    rely on the code-version component for their behaviour.
    """
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        return {"spec": canonicalize(spec)}
    return {
        "spec": {
            "__class__": type(spec).__name__,
            "name": spec.name,
            "kind": spec.kind,
        }
    }


def standalone_payload(scale, config, label: str, spec, sms: int, num_vcs: int) -> Dict:
    """Key payload for one standalone (baseline) simulation."""
    return {
        "kind": "standalone",
        "schema": STORE_SCHEMA,
        "code": code_version(),
        "scale": canonicalize(scale),
        "config": canonicalize(config),
        "label": label,
        "workload": workload_descriptor(spec),
        "sms": sms,
        "num_vcs": num_vcs,
    }


def competitive_payload(
    scale,
    config,
    gpu_id: str,
    pim_id: str,
    policy_name: str,
    policy_params: Optional[Dict],
    num_vcs: int,
    gpu_spec=None,
    pim_spec=None,
) -> Dict:
    """Key payload for one competitive grid cell."""
    payload = {
        "kind": "competitive",
        "schema": STORE_SCHEMA,
        "code": code_version(),
        "scale": canonicalize(scale),
        "config": canonicalize(config),
        "gpu": gpu_id,
        "pim": pim_id,
        "policy": canonical_policy(policy_name, policy_params),
        "num_vcs": num_vcs,
    }
    if gpu_spec is not None:
        payload["gpu_workload"] = workload_descriptor(gpu_spec)
    if pim_spec is not None:
        payload["pim_workload"] = workload_descriptor(pim_spec)
    return payload
