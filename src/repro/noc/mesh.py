"""2D-mesh interconnect (alternative to the baseline crossbar).

The paper evaluates a crossbar between SMs and memory partitions; larger
GPUs use multi-hop networks where the PIM-congestion problem is *worse*
(backpressure propagates hop by hop).  This module provides a
dimension-ordered (XY) wormhole mesh with per-link virtual-channel
buffers, so the VC1/VC2 comparison can be reproduced on a multi-hop
topology (``SystemConfig.noc_topology = "mesh"``).

Model summary:

* Nodes are laid out row-major on a ``width x height`` grid.  SMs occupy
  the first nodes, memory channels the last ones (so traffic crosses the
  mesh).
* Each router has five input ports (N/S/E/W/LOCAL), each a
  :class:`~repro.noc.vc.VCBuffer` of ``router_buffer`` entries (split in
  half per VC under VC2 — the same total-capacity rule as the paper's
  crossbar queues).
* One flit (request) per output link per cycle; per-output round-robin
  arbitration over input ports, with the same per-link VC alternation as
  the modified iSlip of Section V-A (the VCBuffer's rotation).
* Two-phase update: all moves are computed against cycle-start state and
  then applied, so a flit advances at most one hop per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.noc.vc import VCBuffer
from repro.request import Request

#: Port names; OPPOSITE[d] is the input port a flit arrives on after
#: leaving through output d.
NORTH, SOUTH, EAST, WEST, LOCAL = "N", "S", "E", "W", "L"
PORTS = (NORTH, SOUTH, EAST, WEST, LOCAL)
OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


@dataclass(frozen=True)
class MeshShape:
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    @property
    def nodes(self) -> int:
        return self.width * self.height

    def coordinates(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        return y * self.width + x

    @staticmethod
    def fit(min_nodes: int) -> "MeshShape":
        """Smallest near-square mesh with at least ``min_nodes`` nodes."""
        width = 1
        while width * width < min_nodes:
            width += 1
        height = width
        while width * (height - 1) >= min_nodes:
            height -= 1
        return MeshShape(width, height)


class MeshRouter:
    """One mesh router: five VC-buffered input ports."""

    def __init__(self, node: int, buffer_size: int, num_vcs: int) -> None:
        self.node = node
        self.ports: Dict[str, VCBuffer] = {
            port: VCBuffer(buffer_size, num_vcs, name=f"r{node}/{port}")
            for port in PORTS
        }
        # Rotating input-port service order (advanced every cycle).
        self._rotation = 0

    def occupancy(self) -> int:
        return sum(len(buffer) for buffer in self.ports.values())


class MeshFabric:
    """Dimension-ordered mesh connecting SM buffers to channel buffers."""

    def __init__(
        self,
        num_sms: int,
        num_channels: int,
        num_vcs: int = 1,
        shape: Optional[MeshShape] = None,
        router_buffer: int = 8,
    ) -> None:
        self.shape = shape or MeshShape.fit(num_sms + num_channels)
        if self.shape.nodes < num_sms + num_channels:
            raise ValueError(
                f"mesh {self.shape.width}x{self.shape.height} too small for "
                f"{num_sms} SMs + {num_channels} channels"
            )
        self.num_sms = num_sms
        self.num_channels = num_channels
        self.routers = [
            MeshRouter(node, router_buffer, num_vcs) for node in range(self.shape.nodes)
        ]
        # Placement: SMs first, channels at the tail of the grid.
        self._sm_node = {i: i for i in range(num_sms)}
        self._channel_node = {
            c: self.shape.nodes - num_channels + c for c in range(num_channels)
        }
        self._node_channel = {node: c for c, node in self._channel_node.items()}
        self.transfers = 0  # ejections into channel buffers
        self.hops = 0
        #: Flits currently inside the mesh (router port occupancy), kept
        #: incrementally so the engine can skip the whole fabric stage when
        #: nothing is in flight and no SM has traffic to inject.
        self.occupancy = 0

    # -- routing -----------------------------------------------------------

    def _route(self, node: int, dest: int) -> str:
        """XY dimension-ordered routing: X first, then Y."""
        x, y = self.shape.coordinates(node)
        dx, dy = self.shape.coordinates(dest)
        if x < dx:
            return EAST
        if x > dx:
            return WEST
        if y < dy:
            return SOUTH
        if y > dy:
            return NORTH
        return LOCAL

    def _neighbor(self, node: int, direction: str) -> int:
        x, y = self.shape.coordinates(node)
        if direction == EAST:
            return self.shape.node_at(x + 1, y)
        if direction == WEST:
            return self.shape.node_at(x - 1, y)
        if direction == SOUTH:
            return self.shape.node_at(x, y + 1)
        if direction == NORTH:
            return self.shape.node_at(x, y - 1)
        raise ValueError(direction)

    # -- one cycle -----------------------------------------------------------

    def step(
        self,
        sm_buffers: Sequence[VCBuffer],
        channel_buffers: Sequence[VCBuffer],
    ) -> List[Tuple[int, Request]]:
        """Advance every flit by at most one hop; returns ejections."""
        moves = self._plan_moves(channel_buffers)
        ejected = self._apply_moves(moves, channel_buffers)
        self._inject(sm_buffers)
        return ejected

    def _plan_moves(self, channel_buffers) -> List[Tuple[int, str, Request, str]]:
        """Pick at most one flit per (router, output port), by RR."""
        moves: List[Tuple[int, str, Request, str]] = []
        # Capacity claims this cycle, so two flits don't target one slot.
        claimed: Dict[Tuple[int, str, bool], int] = {}
        for router in self.routers:
            used_outputs = set()
            port_order = self._rr_ports(router)
            for in_port in port_order:
                buffer = router.ports[in_port]
                if not buffer:
                    continue
                for head in buffer.heads():
                    dest_node = self._channel_node[head.channel]
                    direction = self._route(router.node, dest_node)
                    if direction in used_outputs:
                        continue
                    if not self._target_can_accept(
                        router.node, direction, head, channel_buffers, claimed
                    ):
                        continue
                    moves.append((router.node, in_port, head, direction))
                    used_outputs.add(direction)
                    key = self._claim_key(router.node, direction, head)
                    claimed[key] = claimed.get(key, 0) + 1
                    break  # one flit per input port per cycle
        return moves

    def _rr_ports(self, router: MeshRouter) -> List[str]:
        # Serve input ports starting from a rotating offset to avoid
        # systematically favoring one direction.
        start = router._rotation
        router._rotation = (router._rotation + 1) % len(PORTS)
        return [PORTS[(start + i) % len(PORTS)] for i in range(len(PORTS))]

    def _claim_key(self, node: int, direction: str, request: Request):
        if direction == LOCAL:
            return (node, LOCAL, request.is_pim)
        return (self._neighbor(node, direction), OPPOSITE[direction], request.is_pim)

    def _target_can_accept(
        self, node, direction, request, channel_buffers, claimed
    ) -> bool:
        key = self._claim_key(node, direction, request)
        pending = claimed.get(key, 0)
        if direction == LOCAL:
            target = channel_buffers[self._node_channel[node]]
        else:
            neighbor = self._neighbor(node, direction)
            target = self.routers[neighbor].ports[OPPOSITE[direction]]
        return target.queue_for(request).free_space > pending

    def _apply_moves(self, moves, channel_buffers) -> List[Tuple[int, Request]]:
        ejected: List[Tuple[int, Request]] = []
        # Pop all moving flits first (two-phase: decisions were made
        # against cycle-start state), then push.
        popped: List[Tuple[Request, int, str]] = []
        for node, in_port, head, direction in moves:
            request = self.routers[node].ports[in_port].pop_matching(head)
            popped.append((request, node, direction))
        for request, node, direction in popped:
            if direction == LOCAL:
                channel = self._node_channel[node]
                if not channel_buffers[channel].try_push(request):  # pragma: no cover
                    raise RuntimeError("mesh ejection flow control violated")
                ejected.append((channel, request))
                self.transfers += 1
                self.occupancy -= 1
            else:
                neighbor = self._neighbor(node, direction)
                target = self.routers[neighbor].ports[OPPOSITE[direction]]
                if not target.try_push(request):  # pragma: no cover
                    raise RuntimeError("mesh flow control violated")
                self.hops += 1
        return ejected

    def _inject(self, sm_buffers: Sequence[VCBuffer]) -> None:
        for sm_index, buffer in enumerate(sm_buffers):
            if not buffer:
                continue
            router = self.routers[self._sm_node[sm_index]]
            local = router.ports[LOCAL]
            for head in buffer.heads():
                if local.queue_for(head).full:
                    continue
                request = buffer.pop_matching(head)
                local.try_push(request)
                self.occupancy += 1
                break  # one injection per SM per cycle

    def in_flight(self) -> int:
        return sum(router.occupancy() for router in self.routers)

    def average_hops(self) -> float:
        return self.hops / self.transfers if self.transfers else 0.0
