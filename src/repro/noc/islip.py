"""iSlip crossbar arbitration (McKeown [44]), modified per Section V-A.

One arbitration iteration per cycle:

1. **Request**: every input (SM link) offers the head of each of its
   virtual channels, in round-robin VC preference order — the paper's
   modification: "the arbiter records the previous VC served for each
   incoming link and switches to the other VC presuming there is traffic
   on it".  A head is only offered if the target output buffer can accept
   it (credit-based flow control).
2. **Grant**: every output (channel link) grants one requesting input,
   chosen by a per-output round-robin pointer.
3. **Accept**: every input accepts at most one grant, preferring its VC
   rotation order; pointers advance only on accepted grants (the iSlip
   "slip" that de-synchronizes the pointers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.noc.vc import VCBuffer
from repro.request import Request


class ISlipArbiter:
    """Single-iteration iSlip matching between input and output VC buffers."""

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ValueError("need at least one input and one output")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self._grant_ptr = [0] * num_outputs  # per-output RR over inputs
        self.transfers = 0

    def step(
        self,
        inputs: Sequence[VCBuffer],
        outputs: Sequence[VCBuffer],
        active_inputs: Optional[Iterable[int]] = None,
    ) -> List[Tuple[int, Request]]:
        """Run one arbitration cycle; moves matched requests.

        ``active_inputs`` restricts the request phase to the given input
        indices (the engine passes the set of SMs with non-empty output
        buffers); empty inputs contribute nothing to arbitration, so the
        outcome is identical to scanning all inputs.

        Returns the list of ``(output_index, request)`` transfers performed.
        """
        if len(inputs) != self.num_inputs or len(outputs) != self.num_outputs:
            raise ValueError("input/output count mismatch")

        # Request phase: collect per-output proposals, remembering each
        # input's preference rank for the accept phase.
        proposals: Dict[int, List[int]] = {}
        offered: Dict[int, List[Tuple[int, Request]]] = {}
        candidates = range(self.num_inputs) if active_inputs is None else active_inputs
        for i in candidates:
            buffer = inputs[i]
            if not buffer:
                continue
            heads = buffer.heads()
            if not heads:
                continue
            ranked = []
            for rank, head in enumerate(heads):
                out = head.channel
                if not 0 <= out < self.num_outputs:
                    raise ValueError(f"request targets unknown output {out}")
                if not outputs[out].can_push(head):
                    continue
                proposals.setdefault(out, []).append(i)
                ranked.append((out, head))
            if ranked:
                offered[i] = ranked

        # Grant phase: one grant per output, round-robin from the pointer.
        grants: Dict[int, List[int]] = {}  # input -> granted outputs
        num_inputs = self.num_inputs
        for out, requesters in proposals.items():
            pointer = self._grant_ptr[out]
            chosen = requesters[0]
            best = (chosen - pointer) % num_inputs
            for i in requesters[1:]:
                distance = (i - pointer) % num_inputs
                if distance < best:
                    best = distance
                    chosen = i
            grants.setdefault(chosen, []).append(out)

        # Accept phase: each input takes the grant matching its most
        # preferred offered head.
        moved: List[Tuple[int, Request]] = []
        for i, granted_outputs in grants.items():
            granted = set(granted_outputs)
            for out, head in offered[i]:
                if out in granted:
                    request = inputs[i].pop_matching(head)
                    if not outputs[out].try_push(request):  # pragma: no cover
                        raise RuntimeError(f"output {out} overflowed after grant")
                    self._grant_ptr[out] = (i + 1) % self.num_inputs
                    moved.append((out, request))
                    self.transfers += 1
                    break
        return moved
