"""Virtual-channel buffer sets (Section V-A).

A :class:`VCBuffer` is the unit of buffering at each hop of the memory
path.  In the **VC1** baseline it is a single shared FIFO; in the **VC2**
proposal MEM and PIM requests get separate queues of half the capacity each
(the paper keeps *total* queue size equal when comparing the two), and the
consumer alternates between them round-robin, skipping a VC whose head is
blocked — this is what prevents PIM bursts from denying service to MEM
requests before the memory controller.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.noc.queues import BoundedQueue
from repro.request import Mode, Request


class VCBuffer:
    """One or two virtual-channel FIFOs with round-robin service."""

    __slots__ = ("num_vcs", "name", "_queues", "_rotation")

    def __init__(self, total_capacity: int, num_vcs: int, name: str = "") -> None:
        if num_vcs not in (1, 2):
            raise ValueError(f"num_vcs must be 1 or 2 (got {num_vcs!r})")
        if total_capacity < num_vcs:
            raise ValueError(
                f"total_capacity must be >= num_vcs={num_vcs} (got {total_capacity!r})"
            )
        self.num_vcs = num_vcs
        self.name = name
        if num_vcs == 1:
            self._queues = [BoundedQueue(total_capacity, name=f"{name}/shared")]
        else:
            half = total_capacity // 2
            self._queues = [
                BoundedQueue(half, name=f"{name}/mem"),
                BoundedQueue(total_capacity - half, name=f"{name}/pim"),
            ]
        self._rotation = 0  # index of the VC to serve next (VC2 only)

    def watch(
        self,
        on_push: Optional[Callable[[], None]],
        on_pop: Optional[Callable[[], None]],
    ) -> None:
        """Register occupancy callbacks on every underlying VC queue.

        The engine uses these to maintain active sets; direct pushes onto
        ``queue(mode)`` (e.g. L2 writebacks) fire the same hooks.
        """
        for queue in self._queues:
            queue.on_push = on_push
            queue.on_pop = on_pop

    def watch_rejects(self, on_reject: Optional[Callable[[], None]]) -> None:
        """Register a callback fired whenever a push bounces off a full VC.

        Telemetry wires this to a ``noc_reject`` trace event per bounced
        push (see :mod:`repro.obs`).
        """
        for queue in self._queues:
            queue.on_reject = on_reject

    # -- routing ---------------------------------------------------------

    def _vc_index(self, request: Request) -> int:
        if self.num_vcs == 1:
            return 0
        return 1 if request.is_pim else 0

    def queue_for(self, request: Request) -> BoundedQueue:
        return self._queues[self._vc_index(request)]

    def queue(self, mode: Mode) -> BoundedQueue:
        """The queue serving the given mode (both modes share VC0 in VC1)."""
        if self.num_vcs == 1:
            return self._queues[0]
        return self._queues[1 if mode is Mode.PIM else 0]

    # -- producer side ------------------------------------------------------

    def can_push(self, request: Request) -> bool:
        queue = self._queues[1 if self.num_vcs == 2 and request.is_pim else 0]
        return len(queue._items) < queue.capacity

    def try_push(self, request: Request) -> bool:
        queue = self._queues[1 if self.num_vcs == 2 and request.is_pim else 0]
        return queue.try_push(request)

    # -- consumer side ------------------------------------------------------

    def peek_next(self) -> Optional[Request]:
        """Head the round-robin arbiter would serve next (None if empty)."""
        for offset in range(self.num_vcs):
            queue = self._queues[(self._rotation + offset) % self.num_vcs]
            head = queue.peek()
            if head is not None:
                return head
        return None

    def heads(self) -> List[Request]:
        """Heads of all VCs in round-robin preference order.

        Used by crossbar arbitration: the first entry is the head the
        modified-iSlip arbiter prefers for this link (the VC *not* served
        last, per the paper's Section V-A).
        """
        if self.num_vcs == 1:
            queue = self._queues[0]._items
            return [queue[0]] if queue else []
        ordered = []
        for offset in range(self.num_vcs):
            head = self._queues[(self._rotation + offset) % self.num_vcs].peek()
            if head is not None:
                ordered.append(head)
        return ordered

    def pop_next(self) -> Optional[Request]:
        """Round-robin pop; advances the rotation past the served VC."""
        for offset in range(self.num_vcs):
            index = (self._rotation + offset) % self.num_vcs
            queue = self._queues[index]
            if queue:
                self._rotation = (index + 1) % self.num_vcs
                return queue.pop()
        return None

    def pop_matching(self, request: Request) -> Request:
        """Pop a specific head (after crossbar arbitration granted it)."""
        index = 1 if self.num_vcs == 2 and request.is_pim else 0
        queue = self._queues[index]
        if not queue._items or queue._items[0] is not request:
            raise ValueError("request is not at the head of its VC")
        self._rotation = (index + 1) % self.num_vcs
        return queue.pop()

    # -- stats -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)

    def __bool__(self) -> bool:
        if self._queues[0]._items:
            return True
        return self.num_vcs == 2 and bool(self._queues[1]._items)

    @property
    def total_rejects(self) -> int:
        return sum(q.rejects for q in self._queues)

    def occupancy(self, mode: Mode) -> int:
        return len(self.queue(mode))
