"""Interconnect substrate: queues, virtual channels, crossbar, 2D mesh."""

from repro.noc.islip import ISlipArbiter
from repro.noc.mesh import MeshFabric, MeshRouter, MeshShape
from repro.noc.queues import BoundedQueue
from repro.noc.vc import VCBuffer

__all__ = [
    "BoundedQueue",
    "ISlipArbiter",
    "MeshFabric",
    "MeshRouter",
    "MeshShape",
    "VCBuffer",
]
