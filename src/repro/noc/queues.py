"""Bounded FIFO queues with backpressure.

Every buffer in the modelled memory path (SM output queues, the
interconnect→L2 queues, the L2→DRAM queues) is a :class:`BoundedQueue`.
A full queue refuses pushes, which is how backpressure propagates from the
memory controller all the way back to the SMs (Figure 7a).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, Optional, TypeVar

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """FIFO with a hard capacity and occupancy statistics."""

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.rejects = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterable[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._items)

    def try_push(self, item: T) -> bool:
        if self.full:
            self.rejects += 1
            return False
        self._items.append(item)
        self.pushes += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)
        return True

    def push(self, item: T) -> None:
        if not self.try_push(item):
            raise OverflowError(f"queue {self.name or id(self)} is full")

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def pop(self) -> T:
        if not self._items:
            raise IndexError("pop from empty queue")
        return self._items.popleft()

    def clear(self) -> None:
        self._items.clear()
