"""Bounded FIFO queues with backpressure.

Every buffer in the modelled memory path (SM output queues, the
interconnect→L2 queues, the L2→DRAM queues) is a :class:`BoundedQueue`.
A full queue refuses pushes, which is how backpressure propagates from the
memory controller all the way back to the SMs (Figure 7a).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, Iterable, Optional, TypeVar

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """FIFO with a hard capacity and occupancy statistics.

    ``on_push`` / ``on_pop`` are optional zero-argument callbacks fired
    after every successful push/pop; the simulation engine uses them to
    maintain its per-stage active sets incrementally (see
    ``docs/performance.md``).  ``on_reject`` fires on every push bounced
    off a full queue; telemetry uses it to trace backpressure events
    (``docs/observability.md``).
    """

    __slots__ = (
        "capacity",
        "name",
        "_items",
        "pushes",
        "rejects",
        "peak_occupancy",
        "on_push",
        "on_pop",
        "on_reject",
    )

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.pushes = 0
        self.rejects = 0
        self.peak_occupancy = 0
        self.on_push: Optional[Callable[[], None]] = None
        self.on_pop: Optional[Callable[[], None]] = None
        self.on_reject: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterable[T]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._items)

    def try_push(self, item: T) -> bool:
        items = self._items
        if len(items) >= self.capacity:
            self.rejects += 1
            if self.on_reject is not None:
                self.on_reject()
            return False
        items.append(item)
        self.pushes += 1
        if len(items) > self.peak_occupancy:
            self.peak_occupancy = len(items)
        if self.on_push is not None:
            self.on_push()
        return True

    def push(self, item: T) -> None:
        if not self.try_push(item):
            raise OverflowError(f"queue {self.name or id(self)} is full")

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def pop(self) -> T:
        if not self._items:
            raise IndexError("pop from empty queue")
        item = self._items.popleft()
        if self.on_pop is not None:
            self.on_pop()
        return item

    def clear(self) -> None:
        if self.on_pop is not None:
            while self._items:
                self._items.popleft()
                self.on_pop()
        else:
            self._items.clear()
