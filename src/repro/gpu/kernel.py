"""Kernel and warp-program abstractions.

A kernel is described by a :class:`KernelSpec` (see
:mod:`repro.workloads`); launching it produces a :class:`KernelInstance`
bound to a set of SM slots.  Each warp executes a *program*: an iterator of
:class:`Phase` objects.  A phase is a stretch of compute cycles followed by
a burst of memory requests; load phases block the warp until every reply
returns (the GPU core model), while PIM/store phases are fire-and-forget
(bounded only by queue backpressure, matching cache-streaming stores).
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional

import numpy as np

from repro.request import Request


@dataclass
class Phase:
    """One compute-then-memory step of a warp."""

    compute_cycles: int
    requests: List[Request] = field(default_factory=list)
    wait_for_replies: bool = True

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")


WarpProgram = Iterator[Phase]


class KernelSpec(abc.ABC):
    """Recipe for a kernel's memory behaviour.

    Subclasses generate warp programs lazily; every instantiation (launch)
    re-generates fresh programs, which is how kernels are re-run in a loop
    for the co-execution methodology (Section III-B).
    """

    #: Human-readable benchmark name (e.g. ``"gaussian"`` or ``"Stream Add"``).
    name: str = "kernel"
    #: ``"gpu"`` for load/store kernels, ``"pim"`` for PIM kernels.
    kind: str = "gpu"

    @abc.abstractmethod
    def warp_program(self, ctx: "LaunchContext", sm_slot: int, warp: int) -> WarpProgram:
        """Yield this warp's phases."""

    def warps_per_sm(self, ctx: "LaunchContext") -> int:
        return ctx.warps_per_sm

    def issue_width(self, ctx: "LaunchContext") -> int:
        """Requests the SM may inject per cycle when running this kernel.

        PIM kernels are tuned to saturate the memory-subsystem interface
        (Section V); on a dual-issue SM their streaming stores inject two
        requests per cycle, which is what lets eight SMs overwhelm the
        interconnect in the paper's characterization.
        """
        return 2 if self.is_pim else 1

    @property
    def is_pim(self) -> bool:
        return self.kind == "pim"


@dataclass
class LaunchContext:
    """Everything a spec needs to generate concrete addresses.

    ``scale`` linearly shrinks workload sizes so the same specs drive both
    quick tests and longer characterization runs.
    """

    mapper: object  # repro.dram.address.AddressMapper
    num_channels: int
    banks_per_channel: int
    num_sms: int  # SMs allocated to this kernel
    warps_per_sm: int
    rng: object  # numpy Generator
    scale: float = 1.0
    rf_entries_per_bank: int = 8
    kernel_id: int = 0

    def scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, int(value * self.scale))


class KernelInstance:
    """One launch of a kernel across a set of SM slots.

    Each warp's program gets its own deterministic RNG seeded by
    ``(seed, kernel_id, sm_slot, warp)``.  The launch sequence number is
    deliberately *not* part of the seed: re-running a kernel in a loop
    (the co-execution methodology) replays the same trace, and standalone
    and contended runs of the same kernel see identical request streams —
    a prerequisite for meaningful speedup comparisons.
    """

    _next_launch = 0

    def __init__(
        self, spec: KernelSpec, ctx: LaunchContext, kernel_id: int, seed: int = 0
    ) -> None:
        self.spec = spec
        self.ctx = ctx
        self.kernel_id = kernel_id
        self.seed = seed
        self.launch_id = KernelInstance._next_launch
        KernelInstance._next_launch += 1
        self.cycle_launched: Optional[int] = None
        self.cycle_finished: Optional[int] = None

    def warp_program(self, sm_slot: int, warp: int) -> WarpProgram:
        # Seed by the *spec name*, not the kernel id: the same kernel must
        # replay the same trace regardless of the order kernels were added
        # to a system (standalone vs co-execution runs).
        name_seed = zlib.crc32(self.spec.name.encode())
        rng = np.random.default_rng([self.seed, name_seed, sm_slot, warp])
        ctx = replace(self.ctx, rng=rng)
        return self.spec.warp_program(ctx, sm_slot, warp)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_pim(self) -> bool:
        return self.spec.is_pim

    @property
    def duration(self) -> Optional[int]:
        if self.cycle_finished is None or self.cycle_launched is None:
            return None
        return self.cycle_finished - self.cycle_launched
