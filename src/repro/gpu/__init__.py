"""Host-side GPU substrate: SMs, kernels, warp programs."""

from repro.gpu.kernel import KernelInstance, KernelSpec, LaunchContext, Phase
from repro.gpu.sm import SM, WarpState

__all__ = ["KernelInstance", "KernelSpec", "LaunchContext", "Phase", "SM", "WarpState"]
