"""Streaming multiprocessor (SM) model.

The paper's bottlenecks live in the memory path, so the SM is modelled as a
warp-level request injector with the properties that shape memory traffic:

* warps alternate compute phases and memory phases,
* load phases block a warp until all replies return,
* PIM/store phases are fire-and-forget, so a PIM kernel's injection rate
  is bounded only by the SM issue width (one request per cycle) and queue
  backpressure — which is exactly how PIM kernels saturate the
  interconnect (Section V),
* a bounded number of outstanding loads (MSHR-like limit),
* requests from one warp are issued in order (Orderlight [48] semantics;
  the per-SM FIFO plus per-channel FCFS PIM queues preserve PIM block
  order end to end).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_left
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.gpu.kernel import KernelInstance, Phase
from repro.noc.vc import VCBuffer
from repro.request import Request


class WarpState:
    """Execution state of one warp."""

    __slots__ = (
        "index",
        "program",
        "compute_until",
        "pending",
        "waiting_replies",
        "wait_for_replies",
        "done",
    )

    def __init__(self, index: int, program) -> None:
        self.index = index
        self.program = program
        self.compute_until = 0
        self.pending: Deque[Request] = deque()
        self.waiting_replies = 0
        self.wait_for_replies = False
        self.done = False

    def blocked_on_replies(self) -> bool:
        return self.wait_for_replies and self.waiting_replies > 0 and not self.pending


class SM:
    """One streaming multiprocessor issuing requests for one kernel."""

    def __init__(
        self,
        index: int,
        output: VCBuffer,
        max_outstanding: int = 64,
        issue_width: int = 1,
        l1=None,
        l1_latency: int = 28,
    ) -> None:
        self.index = index
        self.output = output
        self.max_outstanding = max_outstanding
        self.issue_width = issue_width
        self.l1 = l1  # optional repro.cache.l1.L1Cache
        self.l1_latency = l1_latency
        self._local_replies: List[Tuple[int, int, Request]] = []
        self._local_seq = itertools.count()
        self.warps: List[WarpState] = []
        self._live_warps = 0  # warps not yet done (O(1) is_done)
        self.instance: Optional[KernelInstance] = None
        self.sm_slot = 0
        self.outstanding_loads = 0
        self._issue_rotation = 0
        self.requests_injected = 0
        self.finish_cycle: Optional[int] = None
        # Wake-up optimization: skip cycles where no warp can progress.
        self._next_wake = 0
        self._dirty = True
        # Per-warp event batching: instead of scanning every warp each
        # step, warps park on a due heap of (cycle, warp_index) entries —
        # compute-phase ends and reply unblocks — and move into the
        # issuable set (pending requests, compute done) when their entry
        # comes due.  Entries are lazy: a popped entry re-checks the
        # warp's state, so duplicates are harmless no-ops.
        self._due: List[Tuple[int, int]] = []
        self._issuable: set = set()

    # -- kernel binding ---------------------------------------------------

    def attach(self, instance: KernelInstance, sm_slot: int, cycle: int = 0) -> None:
        """Bind a kernel launch to this SM (slot = index within the launch)."""
        self.instance = instance
        self.sm_slot = sm_slot
        self.issue_width = instance.spec.issue_width(instance.ctx)
        warps = instance.spec.warps_per_sm(instance.ctx)
        self.warps = [WarpState(w, instance.warp_program(sm_slot, w)) for w in range(warps)]
        self._live_warps = len(self.warps)
        for warp in self.warps:
            warp.compute_until = cycle
        # Every warp must advance its first phase: seed one due entry each.
        # (Ascending warp index at equal cycles is already a valid heap.)
        self._due = [(cycle, w) for w in range(warps)]
        self._issuable = set()
        self.outstanding_loads = 0
        self.finish_cycle = None
        self._next_wake = cycle
        self._dirty = True
        if instance.cycle_launched is None:
            instance.cycle_launched = cycle

    @property
    def idle(self) -> bool:
        return self.instance is None

    def is_done(self, cycle: int) -> bool:
        # A done warp's program is exhausted, so its pending deque can
        # never refill: live-warp count zero implies all(done, no pending).
        if self.instance is None:
            return True
        return self.outstanding_loads == 0 and self._live_warps == 0

    # -- execution -----------------------------------------------------------

    def step(self, cycle: int) -> int:
        """Advance due warps and issue up to ``issue_width`` requests.

        Returns the number of requests pushed into the output buffer.
        The stage only visits warps with a due event (phase boundary,
        compute-phase end, reply unblock) plus the issuable set; warps
        deep in a compute phase or blocked on replies cost nothing.  The
        visit order — due warps by (cycle, index), issuable warps in
        round-robin order from ``_issue_rotation`` — matches the previous
        all-warp scan exactly, so issue sequences are bit-identical.
        """
        if self.instance is None:
            return 0
        if self._local_replies:
            self._deliver_local_replies(cycle)
        if not self._dirty and cycle < self._next_wake:
            return 0
        self._dirty = False
        self._advance_due_warps(cycle)
        issued = 0  # requests injected into the NoC (returned to caller)
        slots = 0  # issue slots consumed, including L1-hit loads
        issuable = self._issuable
        if issuable:
            num_warps = len(self.warps)
            base = self._issue_rotation
            # Round-robin over the issuable warps only: ascending index,
            # split circularly at the rotation point.  Non-issuable warps
            # were skipped by the old scan, so the candidate order is
            # unchanged.
            order = sorted(issuable)
            if base:
                split = bisect_left(order, base)
                order = order[split:] + order[:split]
            for warp_index in order:
                if slots >= self.issue_width:
                    break
                warp = self.warps[warp_index]
                request = warp.pending[0]
                if request.is_load and self.outstanding_loads >= self.max_outstanding:
                    continue
                l1_hit = (
                    self.l1 is not None
                    and request.is_load
                    and self.l1.lookup_load(request.address)
                )
                if not l1_hit and not self.output.can_push(request):
                    continue
                warp.pending.popleft()
                if request.cycle_created < 0:
                    request.cycle_created = cycle
                request.source = self.index
                request.warp = warp_index
                if l1_hit:
                    # Satisfied locally after the L1 hit latency; no NoC trip.
                    self.outstanding_loads += 1
                    if warp.wait_for_replies:
                        warp.waiting_replies += 1
                    heapq.heappush(
                        self._local_replies,
                        (cycle + self.l1_latency, next(self._local_seq), request),
                    )
                else:
                    if self.l1 is not None and request.type.value == "mem_store":
                        self.l1.note_store(request.address)
                    request.cycle_noc_entry = cycle
                    self.output.try_push(request)
                    if request.is_load:
                        self.outstanding_loads += 1
                        if warp.wait_for_replies:
                            warp.waiting_replies += 1
                    issued += 1
                slots += 1
                self._issue_rotation = (warp_index + 1) % num_warps
                if not warp.pending:
                    issuable.remove(warp_index)
                    if not (warp.wait_for_replies and warp.waiting_replies > 0):
                        # Phase complete and not blocked: advance the next
                        # phase once the compute window (or next step) comes.
                        heapq.heappush(
                            self._due,
                            (warp.compute_until if warp.compute_until > cycle else cycle + 1, warp_index),
                        )
        if slots or issuable:
            # Actively issuing, or an issuable warp is blocked on buffer
            # space / the outstanding-load limit — retry next cycle.
            self._next_wake = cycle + 1
        else:
            # All warps are computing, waiting on replies, or done: sleep
            # until the next due event; a reply (via receive_reply) marks
            # the SM dirty.
            self._next_wake = self._due[0][0] if self._due else cycle + 1_000_000
        return issued

    def _advance_due_warps(self, cycle: int) -> None:
        """Process due events: phase advances and issuable transitions.

        Each popped entry re-checks the warp, so stale duplicates are
        no-ops.  At most one phase is advanced per warp per step (the
        refreshed due entry is at ``cycle + 1`` or later), matching the
        previous per-step scan.
        """
        due = self._due
        warps = self.warps
        while due and due[0][0] <= cycle:
            _, warp_index = heapq.heappop(due)
            warp = warps[warp_index]
            if warp.done:
                continue
            if warp.pending:
                if cycle >= warp.compute_until:
                    self._issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            if warp.blocked_on_replies():
                continue  # receive_reply re-arms the warp
            if cycle < warp.compute_until:
                heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            phase = next(warp.program, None)
            if phase is None:
                warp.done = True
                self._live_warps -= 1
                continue
            self._load_phase(warp, phase, cycle)
            if warp.pending:
                if cycle >= warp.compute_until:
                    self._issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
            else:
                # Pure-compute phase: advance again when it ends (at the
                # earliest next step, preserving one-phase-per-step).
                heapq.heappush(
                    due,
                    (warp.compute_until if warp.compute_until > cycle else cycle + 1, warp_index),
                )

    @staticmethod
    def _load_phase(warp: WarpState, phase: Phase, cycle: int) -> None:
        warp.compute_until = cycle + phase.compute_cycles
        warp.wait_for_replies = phase.wait_for_replies
        warp.pending.extend(phase.requests)

    def _deliver_local_replies(self, cycle: int) -> None:
        heap = self._local_replies
        while heap and heap[0][0] <= cycle:
            _, _, request = heapq.heappop(heap)
            self.receive_reply(request, cycle)

    def receive_reply(self, request: Request, cycle: int) -> None:
        """A load reply returned (from the memory subsystem or the L1)."""
        self.outstanding_loads -= 1
        if self.outstanding_loads < 0:
            raise RuntimeError(f"SM {self.index}: reply without outstanding load")
        if self.l1 is not None and request.is_load:
            self.l1.install(request.address)
        warp = self.warps[request.warp]
        if warp.wait_for_replies and warp.waiting_replies > 0:
            warp.waiting_replies -= 1
        if (
            not warp.done
            and not warp.pending
            and not (warp.wait_for_replies and warp.waiting_replies > 0)
        ):
            # Fully unblocked: re-arm the warp's phase advance.  Replies
            # are delivered before this cycle's SM stage runs, so an entry
            # at ``cycle`` advances the warp this very step — exactly when
            # the old all-warp scan would have.
            heapq.heappush(
                self._due,
                (warp.compute_until if warp.compute_until > cycle else cycle, request.warp),
            )
        self._dirty = True

    def next_event_cycle(self) -> int:
        """Fast-forward contract: earliest cycle a future ``step`` could act.

        Valid when the SM is clean (``_dirty`` False): the in-step wake gate
        skips every cycle before ``_next_wake``, and pending L1-hit replies
        (delivered ahead of that gate) are the only earlier self-events.
        """
        wake = self._next_wake
        local = self._local_replies
        if local and local[0][0] < wake:
            return local[0][0]
        return wake
