"""The paper's core contribution: PIM-aware memory-controller scheduling."""

from repro.core.controller import ControllerStats, MemoryController, SwitchRecord
from repro.core.policies import (
    PAPER_POLICY_ORDER,
    PolicySpec,
    SchedulingPolicy,
    available_policies,
    make_policy,
    register_policy,
)

__all__ = [
    "ControllerStats",
    "MemoryController",
    "PAPER_POLICY_ORDER",
    "PolicySpec",
    "SchedulingPolicy",
    "SwitchRecord",
    "available_policies",
    "make_policy",
    "register_policy",
]
