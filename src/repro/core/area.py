"""Analytical area model of the mode-switch logic (Section VII-A).

The paper synthesizes FR-FCFS's and F3FS's mode-switch logic with Vitis
HLS on an AMD XCZU5EV FPGA, reporting 377 LUTs / 88 flip-flops for FR-FCFS
and 275 LUTs / 143 flip-flops for F3FS.  We cannot run HLS here, so this
module provides a first-order structural model counting the dominant
resources of each design (Figure 12):

* **FR-FCFS** needs per-bank conflict tracking: a conflict bit and an
  issued bit per bank, a row comparator and mode comparator per bank,
  and the wide AND reduction — LUT-heavy, register-light.
* **F3FS** drops the per-bank tracking and adds two bypass counters with
  compare-against-CAP logic and an age comparator — register-heavy
  (counters + CAP registers), LUT-light.

Constants below are per-resource LUT/FF costs for the target FPGA family;
they are calibrated so the paper's configuration (16 banks, 8-bit CAP
compare on a 9-bit counter) lands on the reported totals, and the model
then extrapolates to other bank counts / CAP widths.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Row-address width compared per bank (HBM row bits handled per compare).
ROW_COMPARE_BITS = 15
#: Request-age (sequence-number) comparator width in F3FS.
AGE_COMPARE_BITS = 16


@dataclass(frozen=True)
class AreaEstimate:
    luts: int
    flip_flops: int

    def __add__(self, other: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(self.luts + other.luts, self.flip_flops + other.flip_flops)


def _comparator_luts(bits: int) -> int:
    """Equality/magnitude comparator: ~1 LUT6 per 3 bit-pairs, +1 carry."""
    return max(1, (bits + 2) // 3) + 1


def frfcfs_switch_area(num_banks: int = 16) -> AreaEstimate:
    """Mode-switch logic of FR-FCFS (per-bank conflict bits + AND tree)."""
    if num_banks < 1:
        raise ValueError("need at least one bank")
    per_bank_luts = (
        _comparator_luts(ROW_COMPARE_BITS)  # open-row vs request-row compare
        + 2  # oldest-request-mode check and conflict-bit set logic
        + 15  # issued-tracking and stall gating (dominant HLS control FSM)
    )
    and_tree_luts = max(1, (num_banks + 5) // 6) + 2
    luts = per_bank_luts * num_banks + and_tree_luts + 7  # +mode FSM
    flip_flops = (
        2 * num_banks  # conflict bit + at-least-one-issued bit per bank
        + 40  # HLS FSM state, drain handshake, pipeline registers
        + 16  # request latch for the stalled compare
    )
    return AreaEstimate(luts=luts, flip_flops=flip_flops)


def f3fs_switch_area(cap_bits: int = 9, num_caps: int = 2) -> AreaEstimate:
    """Mode-switch logic of F3FS (bypass counters + CAP/age comparators)."""
    if cap_bits < 1 or num_caps < 1:
        raise ValueError("cap_bits and num_caps must be positive")
    counter_luts = cap_bits + 1  # increment + clear per counter
    cap_compare_luts = _comparator_luts(cap_bits)
    age_compare_luts = _comparator_luts(AGE_COMPARE_BITS)
    luts = (
        num_caps * (counter_luts + cap_compare_luts)
        + age_compare_luts * 2  # oldest-of-other-mode vs candidate, x2 queues
        + 230  # mode FSM, queue-head muxing (shared with FR-FCFS baseline)
    )
    flip_flops = (
        num_caps * cap_bits  # bypass counters
        + num_caps * cap_bits  # programmable CAP registers
        + AGE_COMPARE_BITS * 2  # latched ages
        + 75  # FSM/pipeline registers
    )
    return AreaEstimate(luts=luts, flip_flops=flip_flops)


#: Reported synthesis results for the paper configuration.
PAPER_FRFCFS = AreaEstimate(luts=377, flip_flops=88)
PAPER_F3FS = AreaEstimate(luts=275, flip_flops=143)


def relative_error(estimate: AreaEstimate, reference: AreaEstimate) -> float:
    """Max relative error of the estimate vs the paper's synthesis."""
    lut_err = abs(estimate.luts - reference.luts) / reference.luts
    ff_err = abs(estimate.flip_flops - reference.flip_flops) / reference.flip_flops
    return max(lut_err, ff_err)
