"""Dynamic F3FS: runtime CAP adaptation (the paper's tunability, automated).

Section VII closes with "F3FS is also tunable at runtime and can be
dynamically configured to an application's needs", and leaves
software-driven configuration to future work.  This extension closes that
loop in hardware: a feedback controller observes, every epoch, the share
of DRAM time each mode received and nudges the CAPs toward a target share.

* ``target_mem_share = 0.5`` (default) pursues fairness: both request
  types get an equal share of the serviced requests, like symmetric CAPs
  but self-tuning to the workload mix.
* other targets implement priorities (e.g. 0.67 favors the GPU process
  2:1) without any offline sensitivity study.

The observed signal is the per-epoch mix of *issued* requests (idle
residency in a mode carries no information, so time-share signals
saturate).  Adaptation is multiplicative-increase/multiplicative-decrease,
the classic stable choice for such feedback loops: if MEM's share of
issued requests exceeds the target by more than ``margin``, halve the MEM
CAP and double the PIM CAP (bounded to [min_cap, max_cap]); symmetrically
in the other direction.

Request selection is inherited from :class:`F3FS`, so every decision runs
against the controller's per-bank index (O(banks with work), not
O(queue)); the adaptation layer itself is O(1) per epoch boundary.
"""

from __future__ import annotations

from repro.core.policies.f3fs import F3FS
from repro.obs.events import DYN_CAP_ADAPT
from repro.request import Mode

DEFAULT_EPOCH = 2_000
DEFAULT_MIN_CAP = 8
DEFAULT_MAX_CAP = 512


class DynamicF3FS(F3FS):
    name = "Dyn-F3FS"

    def __init__(
        self,
        initial_cap: int = 64,
        target_mem_share: float = 0.5,
        epoch: int = DEFAULT_EPOCH,
        margin: float = 0.1,
        min_cap: int = DEFAULT_MIN_CAP,
        max_cap: int = DEFAULT_MAX_CAP,
    ) -> None:
        super().__init__(mem_cap=initial_cap, pim_cap=initial_cap)
        if not 0.0 < target_mem_share < 1.0:
            raise ValueError("target_mem_share must be in (0, 1)")
        if epoch < 1:
            raise ValueError("epoch must be positive")
        if not 0.0 <= margin < 0.5:
            raise ValueError("margin must be in [0, 0.5)")
        if not 1 <= min_cap <= max_cap:
            raise ValueError("need 1 <= min_cap <= max_cap")
        self.target_mem_share = target_mem_share
        self.epoch = epoch
        self.margin = margin
        self.min_cap = min_cap
        self.max_cap = max_cap
        self._epoch_index = 0
        self._last_issued = {Mode.MEM: 0, Mode.PIM: 0}
        self.adjustments = 0  # exposed for tests/telemetry

    def decide(self, ctl, cycle):
        # Epochs are aligned to absolute cycle boundaries (cycle // epoch)
        # rather than to the previous adaptation cycle, so skipping idle
        # decision cycles — during which the issued deltas are zero and an
        # adaptation is a no-op — cannot drift the schedule.  Part of the
        # engine's fast-forward contract.
        epoch = cycle // self.epoch
        if epoch != self._epoch_index:
            self._epoch_index = epoch
            self._adapt(ctl, cycle)
        return super().decide(ctl, cycle)

    def _adapt(self, ctl, cycle) -> None:
        issued = {Mode.MEM: ctl.stats.mem_issued, Mode.PIM: ctl.stats.pim_issued}
        delta_mem = issued[Mode.MEM] - self._last_issued[Mode.MEM]
        delta_pim = issued[Mode.PIM] - self._last_issued[Mode.PIM]
        self._last_issued = issued
        total = delta_mem + delta_pim
        if total <= 0:
            return
        mem_share = delta_mem / total
        if mem_share > self.target_mem_share + self.margin:
            self._shift_toward(Mode.PIM, cycle, mem_share)
        elif mem_share < self.target_mem_share - self.margin:
            self._shift_toward(Mode.MEM, cycle, mem_share)

    def _shift_toward(self, mode: Mode, cycle: int = 0, mem_share: float = -1.0) -> None:
        """Give ``mode`` more service: raise its CAP, lower the other's."""
        other = mode.other
        new_mode_cap = min(self.max_cap, self.caps[mode] * 2)
        new_other_cap = max(self.min_cap, self.caps[other] // 2)
        if new_mode_cap != self.caps[mode] or new_other_cap != self.caps[other]:
            self.adjustments += 1
            self.emit_event(
                cycle,
                DYN_CAP_ADAPT,
                toward=mode.value,
                mem_share=round(mem_share, 4),
                mem_cap=new_mode_cap if mode is Mode.MEM else new_other_cap,
                pim_cap=new_mode_cap if mode is Mode.PIM else new_other_cap,
            )
        self.caps[mode] = new_mode_cap
        self.caps[other] = new_other_cap
