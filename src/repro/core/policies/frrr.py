"""First-Ready Round-Robin FCFS (FR-RR-FCFS) [31].

FR-FCFS modified for fairness: the controller cycles through modes on
row-buffer conflicts.  Priority order: (1) row-buffer hit first, (2) next
mode in round-robin order first, (3) oldest first within the current mode.

The conflict trigger mirrors FR-FCFS's per-bank mechanism (Section III-D):
a bank whose best pending request is a row conflict sets its conflict bit
and stalls; when every bank with pending requests has stalled — i.e. no
row hits remain anywhere — the controller rotates to the other mode.  The
difference from FR-FCFS is what the trigger checks and where the switch
goes: FR-FCFS only stalls banks when the *globally oldest* request belongs
to the other mode (so it can stay in one mode indefinitely while that mode
keeps the oldest request), whereas FR-RR-FCFS rotates modes regardless of
age, guaranteeing both request types regular service.

In PIM mode the analogous conflict is a block boundary (the next PIM
request needs a row change), at which point the controller rotates back
to MEM if MEM traffic is waiting.
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode


class FRRRFCFS(SchedulingPolicy):
    name = "FR-RR-FCFS"

    def __init__(self) -> None:
        # Rotation only triggers after at least one request was serviced in
        # the current mode; otherwise two conflict triggers (one per mode)
        # would ping-pong the controller without ever issuing anything.
        self._served_since_switch = True

    def on_switch(self, new_mode, cycle):
        self._served_since_switch = False

    def on_issue(self, request, cycle):
        self._served_since_switch = True

    def decide(self, ctl, cycle):
        fallback = self.fallback_when_empty(ctl)
        if fallback is not None:
            return fallback
        if ctl.mode is Mode.MEM:
            return self._decide_mem(ctl, cycle)
        return self._decide_pim(ctl, cycle)

    # -- MEM mode ----------------------------------------------------------

    def _decide_mem(self, ctl, cycle):
        if not ctl.mem_queue:
            return IDLE
        if ctl.pim_queue and self._served_since_switch:
            self._update_conflict_bits(ctl)
            if self._all_pending_banks_stalled(ctl):
                return Decision.switch(Mode.PIM)
        else:
            ctl.clear_conflict_bits()
        pick = self.frfcfs_pick(ctl, cycle, exclude_conflict_banks=True)
        return Decision.mem(pick) if pick is not None else IDLE

    @staticmethod
    def _update_conflict_bits(ctl) -> None:
        """Stall banks whose best pending request is a row conflict.

        Same O(banks-with-work) index walk as FR-FCFS: the bank has a
        pending hit iff the per-bank index holds a live request for its
        open row.
        """
        banks = ctl.channel.banks
        mem_queue = ctl.mem_queue
        for bank_index in mem_queue.banks_with_work():
            state = banks[bank_index].state
            if state.conflict_bit:
                continue
            if not state.issued_since_switch:
                continue  # the bank gets one activation per mode phase
            open_row = state.open_row
            if open_row is None:
                continue  # a miss, not a conflict
            if mem_queue.row_head(bank_index, open_row) is not None:
                continue
            state.conflict_bit = True

    @staticmethod
    def _all_pending_banks_stalled(ctl) -> bool:
        banks = ctl.channel.banks
        pending = False
        for bank_index in ctl.mem_queue.banks_with_work():
            pending = True
            if not banks[bank_index].state.conflict_bit:
                return False
        return pending

    # -- PIM mode -----------------------------------------------------------

    def _decide_pim(self, ctl, cycle):
        if not ctl.pim_queue:
            return IDLE
        head = ctl.pim_queue[0]
        if ctl.pim_exec.would_switch_row(head) and ctl.mem_queue and self._served_since_switch:
            return Decision.switch(Mode.MEM)
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
