"""MEM-First and PIM-First static-priority policies.

MEM-First always services MEM requests when any are present (policy used by
Chopim [13]); PIM-First is its mirror.  Both can starve the deprioritized
request type under saturation (Section VI-A).  FR-FCFS order is used within
MEM mode; PIM executes FCFS.
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode


class _StaticFirst(SchedulingPolicy):
    """Shared machinery; ``preferred`` names the favored mode."""

    preferred = Mode.MEM

    def decide(self, ctl, cycle):
        preferred_queue = ctl.mem_queue if self.preferred is Mode.MEM else ctl.pim_queue
        other_queue = ctl.pim_queue if self.preferred is Mode.MEM else ctl.mem_queue

        if preferred_queue:
            wanted = self.preferred
        elif other_queue:
            wanted = self.preferred.other
        else:
            return IDLE

        if wanted is not ctl.mode:
            return Decision.switch(wanted)
        if wanted is Mode.PIM:
            return Decision.pim() if ctl.pim_ready(cycle) else IDLE
        pick = self.frfcfs_pick(ctl, cycle)
        return Decision.mem(pick) if pick is not None else IDLE


class MEMFirst(_StaticFirst):
    name = "MEM-First"
    preferred = Mode.MEM


class PIMFirst(_StaticFirst):
    name = "PIM-First"
    preferred = Mode.PIM
