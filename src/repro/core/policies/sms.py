"""SMS-style staged memory scheduler (Ausavarungnirun et al. [8]), adapted.

SMS decouples scheduling into batch *formation* (consecutive same-source
requests are grouped into batches) and batch *scheduling* (a simple
arbiter picks which source's batch to service next).  The paper's related
work argues SMS is unsuitable for host/PIM co-scheduling because CPU/GPU
batches can be serviced in parallel on different banks while MEM/PIM
batches are mutually exclusive — every batch boundary is a full mode
switch.  This implementation exists to demonstrate exactly that.

Adaptation to the MEM/PIM setting: batches are per mode, at most
``batch_size`` requests each; the batch scheduler alternates between modes
whenever the other mode has traffic (round-robin at batch granularity).
Within a MEM batch requests are serviced in FR-FCFS order (via the
indexed ``frfcfs_pick``, O(banks with work) per decision); PIM batches
are FCFS as always.
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode

DEFAULT_BATCH_SIZE = 32


class SMS(SchedulingPolicy):
    name = "SMS"

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError(f"SMS batch_size must be >= 1 (got {batch_size!r})")
        self.batch_size = batch_size
        self._served_in_batch = 0

    def on_switch(self, new_mode, cycle):
        self._served_in_batch = 0

    def on_issue(self, request, cycle):
        self._served_in_batch += 1

    def decide(self, ctl, cycle):
        fallback = self.fallback_when_empty(ctl)
        if fallback is not None:
            return fallback
        other_queue = ctl.pim_queue if ctl.mode is Mode.MEM else ctl.mem_queue
        if self._served_in_batch >= self.batch_size and other_queue:
            return Decision.switch(ctl.mode.other)
        if ctl.mode is Mode.MEM:
            if not ctl.mem_queue:
                return IDLE
            pick = self.frfcfs_pick(ctl, cycle)
            return Decision.mem(pick) if pick is not None else IDLE
        if not ctl.pim_queue:
            return IDLE
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
