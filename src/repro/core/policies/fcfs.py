"""First-Come First-Served.

Requests are serviced strictly in arrival order; the controller switches
modes whenever the oldest outstanding request is of the other type.  No
row-buffer-locality or bank-parallelism awareness (Section III-D policy 1).
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode


class FCFS(SchedulingPolicy):
    name = "FCFS"

    def decide(self, ctl, cycle):
        oldest = ctl.oldest_overall()
        if oldest is None:
            return IDLE
        wanted = oldest.mode
        if wanted is not ctl.mode:
            return Decision.switch(wanted)
        if wanted is Mode.PIM:
            return Decision.pim() if ctl.pim_ready(cycle) else IDLE
        # Strict order within MEM mode too: only the oldest MEM request may
        # issue; wait for its bank if it cannot accept yet.
        if ctl.channel.bank_can_accept(oldest.bank, cycle):
            return Decision.mem(oldest)
        return IDLE
