"""First-Ready FCFS (FR-FCFS) [56] with PIM-aware mode switching.

Within the current mode, row-buffer hits are prioritized over the oldest
request.  Mode switching follows the paper's description (Section III-D,
policy 4): each bank maintains a *conflict bit* that is set when the bank's
next request is a row-buffer conflict while the globally oldest request
belongs to the other mode; the bank then stalls.  Once every bank with
pending requests has stalled, the controller switches modes.

In PIM mode the analogous trigger is a block boundary (the next PIM request
needs a row change) while the oldest request overall is a MEM request —
PIM executes lock-step on all banks, so one trigger covers all banks.
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode


class FRFCFS(SchedulingPolicy):
    name = "FR-FCFS"

    def decide(self, ctl, cycle):
        fallback = self.fallback_when_empty(ctl)
        if fallback is not None:
            return fallback
        if ctl.mode is Mode.MEM:
            return self._decide_mem(ctl, cycle)
        return self._decide_pim(ctl, cycle)

    # -- MEM mode ----------------------------------------------------------

    def _decide_mem(self, ctl, cycle):
        if not ctl.mem_queue:
            return IDLE
        oldest = ctl.oldest_overall()
        oldest_is_other = oldest is not None and oldest.mode is Mode.PIM

        if oldest_is_other:
            self._update_conflict_bits(ctl, cycle)
            if self._all_pending_banks_stalled(ctl):
                return Decision.switch(Mode.PIM)
        else:
            ctl.clear_conflict_bits()

        # Stalled banks are excluded; conflicts from banks that have not
        # issued since the switch are allowed their one activation.
        pick = self.frfcfs_pick(ctl, cycle, exclude_conflict_banks=True)
        return Decision.mem(pick) if pick is not None else IDLE

    def _update_conflict_bits(self, ctl, cycle) -> None:
        """Set the conflict bit on banks whose best request is a conflict.

        A bank has a pending row hit iff the per-bank index holds a live
        request for its open row — an O(1) lookup per bank, equivalent to
        scanning the bank's pending requests.
        """
        banks = ctl.channel.banks
        mem_queue = ctl.mem_queue
        for bank_index in mem_queue.banks_with_work():
            state = banks[bank_index].state
            if state.conflict_bit:
                continue
            if not state.issued_since_switch:
                continue  # the bank gets one activation per mode phase
            open_row = state.open_row
            if open_row is None:
                continue  # a miss, not a conflict
            if mem_queue.row_head(bank_index, open_row) is not None:
                continue  # a pending hit: the bank is not stalled
            state.conflict_bit = True

    @staticmethod
    def _all_pending_banks_stalled(ctl) -> bool:
        banks = ctl.channel.banks
        pending = False
        for bank_index in ctl.mem_queue.banks_with_work():
            pending = True
            if not banks[bank_index].state.conflict_bit:
                return False
        return pending

    # -- PIM mode -----------------------------------------------------------

    def _decide_pim(self, ctl, cycle):
        if not ctl.pim_queue:
            return IDLE
        head = ctl.pim_queue[0]
        oldest = ctl.oldest_overall()
        if (
            oldest is not None
            and oldest.mode is Mode.MEM
            and ctl.pim_exec.would_switch_row(head)
        ):
            return Decision.switch(Mode.MEM)
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
