"""Scheduling-policy framework for the memory controller.

A policy inspects the controller's queues and bank state each decision
cycle and returns a :class:`Decision`:

* ``Decision.mem(request)`` — issue this MEM request (must be issuable,
  i.e. its bank accepts a new request this cycle).  Only legal in MEM mode.
* ``Decision.pim()`` — issue the oldest PIM request (PIM is always FCFS
  for correctness of the block structure).  Only legal in PIM mode.
* ``Decision.switch(mode)`` — begin a mode switch (drain, then flip).
* ``Decision.idle()`` — nothing to do this cycle.

The controller enforces the mode mechanics (draining in-flight requests,
switch-overhead accounting); policies only choose requests and request
switches.  One policy instance is created per memory controller, so
policies are free to keep per-channel state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.request import Mode, Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import MemoryController


@dataclass(frozen=True)
class Decision:
    kind: str  # "mem" | "pim" | "switch" | "idle"
    request: Optional[Request] = None
    target: Optional[Mode] = None

    @classmethod
    def mem(cls, request: Request) -> "Decision":
        return cls("mem", request=request)

    @classmethod
    def pim(cls) -> "Decision":
        return cls("pim")

    @classmethod
    def switch(cls, target: Mode) -> "Decision":
        return cls("switch", target=target)

    @classmethod
    def idle(cls) -> "Decision":
        return cls("idle")


IDLE = Decision.idle()


class SchedulingPolicy(abc.ABC):
    """Base class for memory-controller scheduling policies."""

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def attach(self, controller: "MemoryController") -> None:
        """Called once when the policy is bound to its controller."""
        self.controller = controller

    @abc.abstractmethod
    def decide(self, ctl: "MemoryController", cycle: int) -> Decision:
        """Choose the next action for this decision cycle."""

    # -- notification hooks -------------------------------------------------

    def on_issue(self, request: Request, cycle: int) -> None:
        """Called after a request is issued to DRAM/PIM."""

    def on_switch(self, new_mode: Mode, cycle: int) -> None:
        """Called when a mode switch completes."""

    def on_enqueue(self, request: Request, cycle: int) -> None:
        """Called when a request enters the controller's queues."""

    # -- telemetry -----------------------------------------------------------

    def emit_event(self, cycle: int, kind: str, **data) -> None:
        """Emit a structured trace event tagged with this policy's channel.

        No-op unless the controller has telemetry attached (see
        :mod:`repro.obs`), and safe on a detached policy instance.
        """
        controller = getattr(self, "controller", None)
        if controller is None:
            return
        telemetry = controller.telemetry
        if telemetry is not None:
            telemetry.emit(cycle, kind, channel=controller.channel.index, **data)

    # -- shared selection helpers --------------------------------------------

    @staticmethod
    def oldest(requests: Iterable[Request]) -> Optional[Request]:
        best: Optional[Request] = None
        for request in requests:
            if best is None or request.mc_seq < best.mc_seq:
                best = request
        return best

    @staticmethod
    def frfcfs_pick(ctl: "MemoryController", cycle: int, exclude_conflict_banks: bool = False) -> Optional[Request]:
        """Row-hit-first, then oldest-first pick among issuable MEM requests.

        Consumes the controller's per-bank index: per issuable bank, the
        oldest request is the bank-deque head and the oldest row hit is the
        head of the open row's deque, so the pick costs O(banks with work)
        instead of O(queue).  ``mc_seq`` is unique per controller, so the
        global minima — and therefore the decision — are identical to a
        linear scan of the queue (``tests/test_scheduler_equivalence.py``).
        """
        mem_queue = ctl.mem_queue
        banks = ctl.channel.banks
        best_hit: Optional[Request] = None
        best_any: Optional[Request] = None
        for bank_index in mem_queue.banks_with_work():
            state = banks[bank_index].state
            if cycle < state.accept_at:
                continue
            if exclude_conflict_banks and state.conflict_bit:
                continue
            head = mem_queue.bank_head(bank_index)
            if best_any is None or head.mc_seq < best_any.mc_seq:
                best_any = head
            open_row = state.open_row
            if open_row is not None:
                hit = mem_queue.row_head(bank_index, open_row)
                if hit is not None and (best_hit is None or hit.mc_seq < best_hit.mc_seq):
                    best_hit = hit
        return best_hit if best_hit is not None else best_any

    @staticmethod
    def fallback_when_empty(ctl: "MemoryController") -> Optional[Decision]:
        """Switch modes when the current queue is empty and the other is not.

        This liveness fallback is shared by every policy: no reasonable
        arbiter lets the DRAM idle while requests of the other type wait.
        """
        if ctl.mode is Mode.MEM:
            if not ctl.mem_queue and ctl.pim_queue:
                return Decision.switch(Mode.PIM)
        else:
            if not ctl.pim_queue and ctl.mem_queue:
                return Decision.switch(Mode.MEM)
        return None


class PolicySpec:
    """A policy name plus constructor parameters.

    One :class:`SchedulingPolicy` instance is created per memory
    controller, so experiments pass specs around instead of instances.
    """

    def __init__(self, name: str, **params) -> None:
        self.name = name
        self.params = dict(params)

    def create(self) -> SchedulingPolicy:
        from repro.core.policies import make_policy

        return make_policy(self.name, **self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.params:
            return f"PolicySpec({self.name!r})"
        return f"PolicySpec({self.name!r}, {self.params!r})"

    def label(self) -> str:
        return self.name
