"""Gather & Issue (G&I) [41].

Occupancy-watermark policy for PIM mode transitions: the controller stays
in MEM mode until the PIM queue reaches the *high* watermark (paper: 56 of
64 entries), then switches to PIM and drains until occupancy falls below
the *low* watermark (paper: 32).  MEM requests execute under FR-FCFS.

The paper finds that PIM kernels' injection rate keeps the PIM queue above
the watermark almost continuously, making G&I strongly PIM-biased
(Section VI-A) — a behaviour this implementation reproduces.
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode

DEFAULT_HIGH_WATERMARK = 56
DEFAULT_LOW_WATERMARK = 32


class GatherIssue(SchedulingPolicy):
    name = "G&I"

    def __init__(
        self,
        high_watermark: int = DEFAULT_HIGH_WATERMARK,
        low_watermark: int = DEFAULT_LOW_WATERMARK,
    ) -> None:
        if not 0 <= low_watermark < high_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

    def decide(self, ctl, cycle):
        occupancy = len(ctl.pim_queue)
        if ctl.mode is Mode.MEM:
            if occupancy >= self.high_watermark:
                return Decision.switch(Mode.PIM)
            if ctl.mem_queue:
                pick = self.frfcfs_pick(ctl, cycle)
                return Decision.mem(pick) if pick is not None else IDLE
            if ctl.pim_queue:
                # Liveness: MEM queue is empty, do not idle the DRAM.
                return Decision.switch(Mode.PIM)
            return IDLE
        # PIM mode: drain until the low watermark (or the queue empties).
        if occupancy == 0 or (occupancy <= self.low_watermark and ctl.mem_queue):
            if ctl.mem_queue:
                return Decision.switch(Mode.MEM)
            if occupancy == 0:
                return IDLE
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
