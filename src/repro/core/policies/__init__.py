"""Memory-controller scheduling policies (Section III-D + Section VII).

Use :func:`make_policy` (or :class:`PolicySpec`) to construct instances by
name; one instance is created per memory controller.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.policies.base import Decision, PolicySpec, SchedulingPolicy
from repro.core.policies.bliss import BLISS
from repro.core.policies.dynamic_f3fs import DynamicF3FS
from repro.core.policies.f3fs import F3FS
from repro.core.policies.fcfs import FCFS
from repro.core.policies.frfcfs import FRFCFS
from repro.core.policies.frfcfs_cap import FRFCFSCap
from repro.core.policies.frrr import FRRRFCFS
from repro.core.policies.gather_issue import GatherIssue
from repro.core.policies.sms import SMS
from repro.core.policies.static_first import MEMFirst, PIMFirst

_REGISTRY: Dict[str, Callable[..., SchedulingPolicy]] = {
    FCFS.name: FCFS,
    MEMFirst.name: MEMFirst,
    PIMFirst.name: PIMFirst,
    FRFCFS.name: FRFCFS,
    FRFCFSCap.name: FRFCFSCap,
    BLISS.name: BLISS,
    FRRRFCFS.name: FRRRFCFS,
    GatherIssue.name: GatherIssue,
    F3FS.name: F3FS,
    # Extensions beyond the paper's evaluation (see each module's
    # docstring): an SMS-style batch scheduler from the related work, and
    # the runtime-adaptive F3FS the paper leaves to future work.
    SMS.name: SMS,
    DynamicF3FS.name: DynamicF3FS,
}

#: The order in which the paper's figures present the policies.
PAPER_POLICY_ORDER: List[str] = [
    "FCFS",
    "MEM-First",
    "PIM-First",
    "FR-FCFS",
    "FR-FCFS-Cap",
    "BLISS",
    "FR-RR-FCFS",
    "G&I",
    "F3FS",
]


def available_policies() -> List[str]:
    return list(_REGISTRY)


def make_policy(name: str, **params) -> SchedulingPolicy:
    """Construct a policy by its registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(**params)


def register_policy(name: str, factory: Callable[..., SchedulingPolicy]) -> None:
    """Register a custom policy (used by extensions and tests)."""
    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


__all__ = [
    "BLISS",
    "Decision",
    "DynamicF3FS",
    "F3FS",
    "FCFS",
    "FRFCFS",
    "FRFCFSCap",
    "FRRRFCFS",
    "GatherIssue",
    "MEMFirst",
    "PAPER_POLICY_ORDER",
    "PIMFirst",
    "PolicySpec",
    "SMS",
    "SchedulingPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
