"""FR-FCFS-Cap [46]: FR-FCFS with a cap on row-hit bypasses.

A counter tracks how many row-buffer hits have been serviced while the
globally oldest request remains outstanding.  Once the counter reaches the
CAP (paper: 32, set empirically), row hits lose their priority and the
oldest request is serviced next — switching modes if it belongs to the
other mode.  This bounds the starvation FR-FCFS can inflict on low-locality
applications, at the cost of more frequent switches (Figure 10a).
"""

from __future__ import annotations

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode

DEFAULT_CAP = 32


class FRFCFSCap(SchedulingPolicy):
    name = "FR-FCFS-Cap"

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        if cap < 1:
            raise ValueError(f"FR-FCFS-Cap cap must be >= 1 (got {cap!r})")
        self.cap = cap
        self._bypasses = 0
        self._oldest_seq = -1

    def _note_oldest(self, oldest) -> None:
        seq = oldest.mc_seq if oldest is not None else -1
        if seq != self._oldest_seq:
            self._oldest_seq = seq
            self._bypasses = 0

    def decide(self, ctl, cycle):
        fallback = self.fallback_when_empty(ctl)
        if fallback is not None:
            return fallback
        # oldest_overall is O(1) against the controller's age index.
        oldest = ctl.oldest_overall()
        self._note_oldest(oldest)
        if oldest is None:
            return IDLE

        cap_hit = self._bypasses >= self.cap
        if cap_hit:
            # Serve the oldest request next, wherever it lives.
            if oldest.mode is not ctl.mode:
                return Decision.switch(oldest.mode)
            if oldest.mode is Mode.PIM:
                return Decision.pim() if ctl.pim_ready(cycle) else IDLE
            if ctl.channel.bank_can_accept(oldest.bank, cycle):
                return Decision.mem(oldest)
            return IDLE

        if ctl.mode is Mode.MEM:
            if not ctl.mem_queue:
                return IDLE
            pick = self.frfcfs_pick(ctl, cycle)
            return Decision.mem(pick) if pick is not None else IDLE
        if not ctl.pim_queue:
            return IDLE
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE

    def on_issue(self, request, cycle):
        if request.mc_seq == self._oldest_seq:
            self._bypasses = 0
            self._oldest_seq = -1
        elif request.access_kind == "hit" or request.is_pim:
            # Row hits bypassing the oldest request are what the CAP limits;
            # lock-step PIM ops count as hits within their block.
            self._bypasses += 1
