"""Blacklisting memory scheduler (BLISS) [62].

An application (kernel) that is serviced ``threshold`` times consecutively
is blacklisted.  Priority order: (1) non-blacklisted application first,
(2) row-buffer hit first, (3) oldest first.  The blacklist is cleared every
``clear_interval`` cycles.  The paper observes that with PIM co-execution
BLISS devolves into a time-multiplex of MEM-First / PIM-First / FR-FCFS
(roughly 20/20/60 with threshold 4).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.obs.events import BLISS_BLACKLIST, BLISS_CLEAR
from repro.request import Mode, Request

DEFAULT_THRESHOLD = 4
DEFAULT_CLEAR_INTERVAL = 10_000


class BLISS(SchedulingPolicy):
    name = "BLISS"

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        clear_interval: int = DEFAULT_CLEAR_INTERVAL,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"BLISS threshold must be >= 1 (got {threshold!r})")
        if clear_interval < 1:
            raise ValueError(f"BLISS clear_interval must be >= 1 (got {clear_interval!r})")
        self.threshold = threshold
        self.clear_interval = clear_interval
        self.blacklist: Set[int] = set()
        self._streak_kernel: Optional[int] = None
        self._streak_length = 0
        self._last_epoch = 0

    def _maybe_clear(self, cycle: int) -> None:
        # Clears are aligned to absolute clear_interval epochs (not to the
        # cycle of the previous clear) so that skipping idle decision
        # cycles — during which a clear is unobservable — cannot drift the
        # schedule.  Part of the engine's fast-forward contract.
        epoch = cycle // self.clear_interval
        if epoch != self._last_epoch:
            if self.blacklist:
                self.emit_event(
                    cycle, BLISS_CLEAR, epoch=epoch, cleared=len(self.blacklist)
                )
            self.blacklist.clear()
            self._last_epoch = epoch

    def _score(self, ctl, request: Request, is_hit: bool):
        """Lower tuples win: (blacklisted, not-hit, age)."""
        return (request.kernel_id in self.blacklist, not is_hit, request.mc_seq)

    def decide(self, ctl, cycle):
        self._maybe_clear(cycle)
        best: Optional[Request] = None
        best_score = None
        # Per-bank candidates from the controller's index.  For the score
        # (blacklisted, not-hit, age) the per-bank minimum is always among:
        # the oldest non-blacklisted request, the oldest non-blacklisted
        # hit on the open row, or — when the whole bank is blacklisted —
        # the unfiltered equivalents.  With an empty blacklist both
        # lookups are O(1) deque heads, matching FR-FCFS cost.
        blacklist = self.blacklist
        mem_queue = ctl.mem_queue
        banks = ctl.channel.banks
        pred = None
        if blacklist:
            pred = lambda r: r.kernel_id not in blacklist  # noqa: E731
        for bank_index in mem_queue.banks_with_work():
            state = banks[bank_index].state
            if cycle < state.accept_at:
                continue
            open_row = state.open_row
            cand_any = mem_queue.bank_oldest(bank_index, pred)
            if cand_any is not None:
                cand_hit = (
                    mem_queue.row_oldest(bank_index, open_row, pred)
                    if open_row is not None
                    else None
                )
            else:
                # Every pending request in this bank is blacklisted.
                cand_any = mem_queue.bank_head(bank_index)
                cand_hit = (
                    mem_queue.row_head(bank_index, open_row)
                    if open_row is not None
                    else None
                )
            if cand_hit is not None:
                score = (cand_hit.kernel_id in blacklist, False, cand_hit.mc_seq)
                if best_score is None or score < best_score:
                    best, best_score = cand_hit, score
            score = (
                cand_any.kernel_id in blacklist,
                cand_any.row != open_row,
                cand_any.mc_seq,
            )
            if best_score is None or score < best_score:
                best, best_score = cand_any, score
        if ctl.pim_queue:
            head = ctl.pim_queue[0]
            head_hit = not ctl.pim_exec.would_switch_row(head)
            score = self._score(ctl, head, head_hit)
            if best_score is None or score < best_score:
                best, best_score = head, score
        if best is None:
            # Nothing issuable right now; if the other queue has the only
            # traffic, the shared fallback will steer us there.
            fallback = self.fallback_when_empty(ctl)
            return fallback if fallback is not None else IDLE

        if best.mode is not ctl.mode:
            return Decision.switch(best.mode)
        if best.mode is Mode.PIM:
            return Decision.pim() if ctl.pim_ready(cycle) else IDLE
        return Decision.mem(best)

    def on_issue(self, request, cycle):
        kernel = request.kernel_id
        if kernel == self._streak_kernel:
            self._streak_length += 1
        else:
            self._streak_kernel = kernel
            self._streak_length = 1
        if self._streak_length >= self.threshold:
            if kernel not in self.blacklist:
                self.emit_event(
                    cycle, BLISS_BLACKLIST, kernel=kernel, streak=self._streak_length
                )
            self.blacklist.add(kernel)
