"""Blacklisting memory scheduler (BLISS) [62].

An application (kernel) that is serviced ``threshold`` times consecutively
is blacklisted.  Priority order: (1) non-blacklisted application first,
(2) row-buffer hit first, (3) oldest first.  The blacklist is cleared every
``clear_interval`` cycles.  The paper observes that with PIM co-execution
BLISS devolves into a time-multiplex of MEM-First / PIM-First / FR-FCFS
(roughly 20/20/60 with threshold 4).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.request import Mode, Request

DEFAULT_THRESHOLD = 4
DEFAULT_CLEAR_INTERVAL = 10_000


class BLISS(SchedulingPolicy):
    name = "BLISS"

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        clear_interval: int = DEFAULT_CLEAR_INTERVAL,
    ) -> None:
        if threshold < 1 or clear_interval < 1:
            raise ValueError("threshold and clear_interval must be positive")
        self.threshold = threshold
        self.clear_interval = clear_interval
        self.blacklist: Set[int] = set()
        self._streak_kernel: Optional[int] = None
        self._streak_length = 0
        self._last_epoch = 0

    def _maybe_clear(self, cycle: int) -> None:
        # Clears are aligned to absolute clear_interval epochs (not to the
        # cycle of the previous clear) so that skipping idle decision
        # cycles — during which a clear is unobservable — cannot drift the
        # schedule.  Part of the engine's fast-forward contract.
        epoch = cycle // self.clear_interval
        if epoch != self._last_epoch:
            self.blacklist.clear()
            self._last_epoch = epoch

    def _score(self, ctl, request: Request, is_hit: bool):
        """Lower tuples win: (blacklisted, not-hit, age)."""
        return (request.kernel_id in self.blacklist, not is_hit, request.mc_seq)

    def decide(self, ctl, cycle):
        self._maybe_clear(cycle)
        best: Optional[Request] = None
        best_score = None
        for request in ctl.issuable_mem(cycle):
            score = self._score(ctl, request, ctl.channel.is_row_hit(request))
            if best_score is None or score < best_score:
                best, best_score = request, score
        if ctl.pim_queue:
            head = ctl.pim_queue[0]
            head_hit = not ctl.pim_exec.would_switch_row(head)
            score = self._score(ctl, head, head_hit)
            if best_score is None or score < best_score:
                best, best_score = head, score
        if best is None:
            # Nothing issuable right now; if the other queue has the only
            # traffic, the shared fallback will steer us there.
            fallback = self.fallback_when_empty(ctl)
            return fallback if fallback is not None else IDLE

        if best.mode is not ctl.mode:
            return Decision.switch(best.mode)
        if best.mode is Mode.PIM:
            return Decision.pim() if ctl.pim_ready(cycle) else IDLE
        return Decision.mem(best)

    def on_issue(self, request, cycle):
        kernel = request.kernel_id
        if kernel == self._streak_kernel:
            self._streak_length += 1
        else:
            self._streak_kernel = kernel
            self._streak_length = 1
        if self._streak_length >= self.threshold:
            self.blacklist.add(kernel)
