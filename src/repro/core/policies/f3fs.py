"""First Mode-FR-FCFS (F3FS) — the paper's proposed policy (Section VII).

F3FS adds an arbitration stage in front of FR-FCFS that favors requests in
the *current* mode, implementing the priority order:

1. current mode first,
2. row-buffer hit first,
3. oldest first.

Within MEM mode requests are serviced FR-FCFS; PIM requests always execute
FCFS.  Favoring the current mode maximizes locality and minimizes mode
switches (throughput); to prevent starvation, F3FS caps the number of
requests serviced in the current mode that *bypass* an older request of the
other mode.  Age is the per-controller arrival sequence number
(``Request.mc_seq``).

Two independent CAPs — one per mode — allow asymmetric configurations:
equal CAPs promote fairness in competitive co-execution (paper default
256/256), while asymmetric CAPs (e.g. MEM/PIM = 256/128 under VC1) lower
collaborative execution time by prioritizing the slower kernel.

The ``current_mode_first`` flag exists for the Figure 14a ablation: with it
disabled, F3FS degenerates to FR-FCFS ordering across modes while keeping
the request-count CAP (the paper's intermediate design point).
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies.base import IDLE, Decision, SchedulingPolicy
from repro.obs.events import CAP_BYPASS
from repro.request import Mode, Request

DEFAULT_CAP = 256


class F3FS(SchedulingPolicy):
    name = "F3FS"

    def __init__(
        self,
        mem_cap: int = DEFAULT_CAP,
        pim_cap: int = DEFAULT_CAP,
        current_mode_first: bool = True,
    ) -> None:
        if mem_cap < 1:
            raise ValueError(f"F3FS mem_cap must be >= 1 (got {mem_cap!r})")
        if pim_cap < 1:
            raise ValueError(f"F3FS pim_cap must be >= 1 (got {pim_cap!r})")
        self.caps = {Mode.MEM: mem_cap, Mode.PIM: pim_cap}
        self.current_mode_first = current_mode_first
        self._bypasses = 0

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _other_oldest(ctl) -> Optional[Request]:
        if ctl.mode is Mode.MEM:
            return ctl.pim_queue[0] if ctl.pim_queue else None
        return ctl.mem_queue.head()

    def _cap_reached(self, ctl) -> bool:
        return self._bypasses >= self.caps[ctl.mode]

    # -- decision -----------------------------------------------------------

    def decide(self, ctl, cycle):
        fallback = self.fallback_when_empty(ctl)
        if fallback is not None:
            return fallback
        if self._other_oldest(ctl) is not None and self._cap_reached(ctl):
            return Decision.switch(ctl.mode.other)
        if self.current_mode_first:
            return self._decide_current_mode(ctl, cycle)
        return self._decide_frfcfs_order(ctl, cycle)

    def _decide_current_mode(self, ctl, cycle):
        if ctl.mode is Mode.MEM:
            if not ctl.mem_queue:
                return IDLE
            pick = self.frfcfs_pick(ctl, cycle)
            return Decision.mem(pick) if pick is not None else IDLE
        if not ctl.pim_queue:
            return IDLE
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE

    def _decide_frfcfs_order(self, ctl, cycle):
        """Ablation stage: hit-first/oldest-first across modes, CAP kept.

        Per issuable bank, the minimum of (not-hit, age) is either the
        bank's oldest request or — when that one misses — the oldest hit
        on the bank's open row, both O(1) heads of the controller's index.
        """
        mem_queue = ctl.mem_queue
        banks = ctl.channel.banks
        best: Optional[Request] = None
        best_key = None
        for bank_index in mem_queue.banks_with_work():
            state = banks[bank_index].state
            if cycle < state.accept_at:
                continue
            open_row = state.open_row
            head = mem_queue.bank_head(bank_index)
            key = (head.row != open_row, head.mc_seq)
            if best_key is None or key < best_key:
                best, best_key = head, key
            if open_row is not None and key[0]:
                hit = mem_queue.row_head(bank_index, open_row)
                if hit is not None:
                    hit_key = (False, hit.mc_seq)
                    if hit_key < best_key:
                        best, best_key = hit, hit_key
        if ctl.pim_queue:
            head = ctl.pim_queue[0]
            key = (ctl.pim_exec.would_switch_row(head), head.mc_seq)
            if best_key is None or key < best_key:
                best, best_key = head, key
        if best is None:
            return IDLE
        if best.mode is not ctl.mode:
            return Decision.switch(best.mode)
        if best.mode is Mode.PIM:
            return Decision.pim() if ctl.pim_ready(cycle) else IDLE
        return Decision.mem(best)

    # -- hooks -------------------------------------------------------------

    def on_issue(self, request, cycle):
        other = self._other_oldest(self.controller)
        if other is not None and other.mc_seq < request.mc_seq:
            self._bypasses += 1
            self.emit_event(
                cycle,
                CAP_BYPASS,
                mode=request.mode.value,
                bypasses=self._bypasses,
                cap=self.caps[request.mode],
            )

    def on_switch(self, new_mode, cycle):
        self._bypasses = 0
