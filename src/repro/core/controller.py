"""PIM-aware memory controller (Figure 1, right-hand side).

One controller per channel.  It maintains separate MEM and PIM queues
(Table I: 64 entries each), runs a pluggable scheduling policy, and
implements the MEM/PIM *mode switch* mechanics the paper analyses
(Section VI):

* **MEM → PIM**: all in-flight MEM requests must drain before the first
  PIM request issues.  Banks that finish early sit idle (Figure 9); the
  controller records the drain latency and the idle bank-cycles of every
  such switch.
* **PIM → MEM**: the lock-step PIM executor finishes its current op; PIM
  leaves every bank's row buffer pointing at PIM rows, so MEM requests
  that would have hit their pre-switch rows now conflict — the controller
  attributes those as *additional conflicts per switch* (Figure 10b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.core.memq import BankIndexedMemQueue
from repro.core.policies.base import SchedulingPolicy
from repro.dram.channel import Channel
from repro.dram.refresh import RefreshTimer
from repro.obs import events as obs_events
from repro.pim.executor import PIMExecutor
from repro.request import Mode, Request

#: Sentinel "no self-scheduled event" wake cycle: the controller only needs
#: attention again when an enqueue or completion marks it dirty.
NEVER = 1 << 62


@dataclass
class SwitchRecord:
    """Bookkeeping for one completed mode switch."""

    cycle_started: int
    cycle_completed: int
    direction: Mode  # the mode switched *to*
    drain_latency: int
    idle_bank_cycles: int


@dataclass
class ControllerStats:
    """Per-controller counters used by the paper's figures."""

    mem_arrivals: int = 0
    pim_arrivals: int = 0
    mem_issued: int = 0
    pim_issued: int = 0
    mem_rejected: int = 0  # enqueue attempts bounced off a full queue
    pim_rejected: int = 0
    switches: int = 0
    switches_to_pim: int = 0
    switch_records: List[SwitchRecord] = field(default_factory=list)
    additional_conflicts: int = 0  # post-switch conflicts on pre-switch rows
    mode_cycles: Dict[Mode, int] = field(default_factory=lambda: {Mode.MEM: 0, Mode.PIM: 0})
    # Arrival counts per kernel, for per-application arrival rates (Fig 6).
    kernel_mem_arrivals: Dict[int, int] = field(default_factory=dict)
    kernel_pim_arrivals: Dict[int, int] = field(default_factory=dict)

    @property
    def mem_drain_latencies(self) -> List[int]:
        return [
            record.drain_latency
            for record in self.switch_records
            if record.direction is Mode.PIM
        ]

    def mean_drain_latency(self) -> float:
        latencies = self.mem_drain_latencies
        return sum(latencies) / len(latencies) if latencies else 0.0

    def conflicts_per_switch(self) -> float:
        if not self.switches_to_pim:
            return 0.0
        return self.additional_conflicts / self.switches_to_pim


class MemoryController:
    """Memory controller for one channel."""

    def __init__(
        self,
        channel: Channel,
        pim_exec: PIMExecutor,
        policy: SchedulingPolicy,
        mem_queue_size: int = 64,
        pim_queue_size: int = 64,
        refresh_enabled: bool = False,
    ) -> None:
        self.channel = channel
        self.pim_exec = pim_exec
        self.policy = policy
        self.mem_queue_size = mem_queue_size
        self.pim_queue_size = pim_queue_size
        timings = channel.timings
        self.refresh = RefreshTimer(
            timings.tREFI, timings.tRFC, enabled=refresh_enabled
        )
        self._refresh_until = 0

        # MEM requests live in a per-bank index (arrival order per bank and
        # per open row) so FR-FCFS-family decisions cost O(banks with work)
        # instead of O(queue).  It is list-compatible for read access:
        # truthiness, len(), [0], and arrival-order iteration.
        self.mem_queue = BankIndexedMemQueue(len(channel.banks))
        self.pim_queue: Deque[Request] = deque()
        self.mode: Mode = Mode.MEM
        self.stats = ControllerStats()

        # Mode-switch state machine.
        self._switch_target: Optional[Mode] = None
        self._switch_started = -1

        # Additional-conflict attribution: rows open before the last
        # MEM->PIM switch, consumed on the first MEM access per bank after
        # returning to MEM mode.
        self._pre_switch_rows: Dict[int, int] = {}

        # Arrival sequence numbers (the "age" used by oldest-first).
        self._next_seq = 0

        # Wake-up optimization: skip decision cycles that cannot make
        # progress.  Any enqueue or completion marks the controller dirty.
        self._next_wake = 0
        self._dirty = True
        self._last_mode_cycle = 0

        # Optional repro.obs.telemetry.Telemetry, shared with the system;
        # None keeps every telemetry hook on its zero-cost path.
        self.telemetry = None

        policy.attach(self)

    # -- queue admission -----------------------------------------------------

    def can_accept(self, request: Request) -> bool:
        if request.is_pim:
            return len(self.pim_queue) < self.pim_queue_size
        return len(self.mem_queue) < self.mem_queue_size

    def enqueue(self, request: Request, cycle: int) -> bool:
        """Admit a request into the MEM or PIM queue; False if full."""
        if request.is_pim:
            if len(self.pim_queue) >= self.pim_queue_size:
                self.stats.pim_rejected += 1
                return False
            request.mc_seq = self._next_seq
            self._next_seq += 1
            request.cycle_mc_arrival = cycle
            self.pim_queue.append(request)
            self.stats.pim_arrivals += 1
            k = self.stats.kernel_pim_arrivals
            k[request.kernel_id] = k.get(request.kernel_id, 0) + 1
        else:
            if len(self.mem_queue) >= self.mem_queue_size:
                self.stats.mem_rejected += 1
                return False
            # Stamp the arrival sequence before the append: indexed queue
            # implementations (the SoA backend's per-bank head/hit caches)
            # read ``mc_seq`` inside ``append``.
            request.mc_seq = self._next_seq
            self._next_seq += 1
            request.cycle_mc_arrival = cycle
            self.mem_queue.append(request)
            self.stats.mem_arrivals += 1
            k = self.stats.kernel_mem_arrivals
            k[request.kernel_id] = k.get(request.kernel_id, 0) + 1
        if self.telemetry is not None:
            # Snapshot the other-mode cycle counter; the delta at issue time
            # is the mode-blocked share of this request's MC wait.
            request.mc_blocked_base = self.mode_cycles_upto(
                Mode.MEM if request.is_pim else Mode.PIM, cycle
            )
        self._dirty = True
        self.policy.on_enqueue(request, cycle)
        return True

    # -- views used by policies ----------------------------------------------

    def oldest_overall(self) -> Optional[Request]:
        mem_head = self.mem_queue.head()
        pim_head = self.pim_queue[0] if self.pim_queue else None
        if mem_head is None:
            return pim_head
        if pim_head is None:
            return mem_head
        return mem_head if mem_head.mc_seq < pim_head.mc_seq else pim_head

    def issuable_mem(self, cycle: int, exclude_conflict_banks: bool = False) -> Iterator[Request]:
        """MEM requests whose bank can accept a new request this cycle.

        Reference scan in arrival order.  The FR-FCFS-family policies use
        the per-bank index directly (``mem_queue.bank_head`` /
        ``row_head``); this view is kept for custom policies and as the
        linear-scan oracle in the equivalence suite.
        """
        banks = self.channel.banks
        for request in self.mem_queue:
            bank = banks[request.bank]
            if not bank.can_accept(cycle):
                continue
            if exclude_conflict_banks and bank.state.conflict_bit:
                continue
            yield request

    def mem_requests_by_bank(self) -> Dict[int, List[Request]]:
        """Arrival-ordered requests per bank (reference/debug view)."""
        by_bank: Dict[int, List[Request]] = {}
        for request in self.mem_queue:
            by_bank.setdefault(request.bank, []).append(request)
        return by_bank

    def pim_ready(self, cycle: int) -> bool:
        return bool(self.pim_queue) and self.pim_exec.can_issue(cycle)

    def clear_conflict_bits(self) -> None:
        for bank in self.channel.banks:
            bank.state.conflict_bit = False
            bank.state.issued_since_switch = False

    @property
    def is_switching(self) -> bool:
        return self._switch_target is not None

    # -- completions -----------------------------------------------------------

    def pop_completed(self, cycle: int) -> List[Request]:
        done = self.channel.pop_completed(cycle)
        done.extend(self.pim_exec.pop_completed(cycle))
        if done:
            self._dirty = True
        return done

    # -- mode switch machinery ---------------------------------------------

    def _begin_switch(self, target: Mode, cycle: int) -> None:
        if target is self.mode:
            raise ValueError("switching to the current mode")
        self._switch_target = target
        self._switch_started = cycle
        if self.telemetry is not None:
            self.telemetry.emit(
                cycle,
                obs_events.MODE_SWITCH_BEGIN,
                channel=self.channel.index,
                to=target.value,
            )
        if target is Mode.PIM:
            # Remember where each bank's row buffer points so post-PIM MEM
            # conflicts on those rows can be attributed to the switch.
            self._pre_switch_rows = {
                bank.index: bank.open_row
                for bank in self.channel.banks
                if bank.open_row is not None
            }

    def _drain_done(self, cycle: int) -> bool:
        if self._switch_target is Mode.PIM:
            return self.channel.mem_in_flight() == 0
        return self.pim_exec.in_flight() == 0 and self.pim_exec.can_issue(cycle)

    def _drain_complete_cycle(self) -> int:
        if self._switch_target is Mode.PIM:
            return self.channel.drain_complete_cycle()
        return self.pim_exec.drain_complete_cycle()

    def _finish_switch(self, cycle: int) -> None:
        target = self._switch_target
        drain_latency = cycle - self._switch_started
        idle_bank_cycles = 0
        if target is Mode.PIM:
            # Banks that finished before the drain completed sat idle.
            for bank in self.channel.banks:
                idle_bank_cycles += max(0, cycle - max(bank.state.busy_until, self._switch_started))
        self.stats.switch_records.append(
            SwitchRecord(
                cycle_started=self._switch_started,
                cycle_completed=cycle,
                direction=target,
                drain_latency=drain_latency,
                idle_bank_cycles=idle_bank_cycles,
            )
        )
        self.stats.switches += 1
        if target is Mode.PIM:
            self.stats.switches_to_pim += 1
        else:
            # Entering MEM mode: make PIM occupancy visible to the banks.
            self.pim_exec.sync_banks()
        self._account_mode_cycles(cycle)
        self.mode = target
        self._switch_target = None
        self.clear_conflict_bits()
        if self.telemetry is not None:
            self.telemetry.emit(
                cycle,
                obs_events.MODE_SWITCH_END,
                channel=self.channel.index,
                mode=target.value,
                drain_latency=drain_latency,
                idle_bank_cycles=idle_bank_cycles,
            )
        self.policy.on_switch(target, cycle)
        self._dirty = True

    def _account_mode_cycles(self, cycle: int) -> None:
        self.stats.mode_cycles[self.mode] += cycle - self._last_mode_cycle
        self._last_mode_cycle = cycle

    def mode_cycles_upto(self, mode: Mode, cycle: int) -> int:
        """Cycles spent in ``mode`` from the start of the run to ``cycle``.

        ``stats.mode_cycles`` is only settled at switch completion; this
        adds the in-progress residency (a switch drain counts toward the
        mode being left, matching ``_account_mode_cycles``).  The delta of
        two snapshots bounds the other-mode blocking a request saw while
        queued — the telemetry layer's ``mc_blocked`` hop.
        """
        total = self.stats.mode_cycles[mode]
        if self.mode is mode:
            total += cycle - self._last_mode_cycle
        return total

    def _attribute_post_switch_conflict(self, request: Request) -> None:
        """Count a conflict caused by the previous PIM phase (Figure 10b)."""
        expected = self._pre_switch_rows.pop(request.bank, None)
        if expected is None:
            return
        if request.row == expected and request.access_kind != "hit":
            self.stats.additional_conflicts += 1

    # -- main decision loop -----------------------------------------------

    # -- refresh handling ----------------------------------------------------

    def _handle_refresh(self, cycle: int) -> bool:
        """Returns True when the controller is blocked by refresh."""
        if cycle < self._refresh_until:
            self._next_wake = self._refresh_until
            return True
        if not self.refresh.enabled:
            return False
        must = self.refresh.must_refresh(cycle)
        opportunistic = (
            self.refresh.should_refresh(cycle)
            and not self.mem_queue
            and not self.pim_queue
        )
        if not (must or opportunistic):
            return False
        # REF needs every bank quiet, like a mode switch's drain.
        if self.channel.mem_in_flight() or not self.pim_exec.can_issue(cycle):
            self._next_wake = max(
                cycle + 1,
                self.channel.drain_complete_cycle(),
                self.pim_exec.drain_complete_cycle(),
            )
            return True
        self._refresh_until = self.refresh.perform(cycle)
        if self.telemetry is not None:
            self.telemetry.emit(
                cycle,
                obs_events.REFRESH,
                channel=self.channel.index,
                until=self._refresh_until,
            )
        for bank in self.channel.banks:
            state = bank.state
            state.open_row = None
            state.accept_at = max(state.accept_at, self._refresh_until)
            state.act_ready = max(state.act_ready, self._refresh_until)
            state.pre_ready = max(state.pre_ready, self._refresh_until)
            state.next_col = max(state.next_col, self._refresh_until)
        self.pim_exec.open_row = None
        self.pim_exec.busy_until = max(self.pim_exec.busy_until, self._refresh_until)
        self.pim_exec.next_col = max(self.pim_exec.next_col, self._refresh_until)
        self._next_wake = self._refresh_until
        self._dirty = True
        return True

    def tick(self, cycle: int) -> Optional[Request]:
        """Run one decision cycle; returns the issued request, if any."""
        if not self._dirty and cycle < self._next_wake:
            return None
        self._dirty = False

        # _handle_refresh is a no-op without refresh enabled or a REF in
        # progress; skip the call on the (default) refresh-free hot path.
        if (self.refresh.enabled or cycle < self._refresh_until) and self._handle_refresh(cycle):
            return None

        if self.is_switching:
            if self._drain_done(cycle):
                self._finish_switch(cycle)
            else:
                self._next_wake = max(cycle + 1, self._drain_complete_cycle())
                return None

        decision = self.policy.decide(self, cycle)
        if decision.kind == "idle":
            self._next_wake = min(
                self.channel.next_bank_event(cycle),
                max(cycle + 1, self.pim_exec.busy_until),
            )
            return None
        if decision.kind == "switch":
            self._begin_switch(decision.target, cycle)
            self._next_wake = max(cycle + 1, self._drain_complete_cycle())
            self._dirty = True  # re-evaluate as soon as the drain completes
            return None
        if decision.kind == "mem":
            request = decision.request
            if self.mode is not Mode.MEM:
                raise RuntimeError("policy issued MEM in PIM mode")
            self.mem_queue.remove(request)
            self.channel.issue_mem(request, cycle)
            self.channel.banks[request.bank].state.issued_since_switch = True
            self.pim_exec.note_mem_issue(request)
            self._attribute_post_switch_conflict(request)
            self.stats.mem_issued += 1
        else:  # "pim"
            if self.mode is not Mode.PIM:
                raise RuntimeError("policy issued PIM in MEM mode")
            request = self.pim_queue.popleft()
            self.pim_exec.issue(request, cycle)
            self.stats.pim_issued += 1
        if self.telemetry is not None and request.mc_blocked_base >= 0:
            request.mc_blocked_cycles = (
                self.mode_cycles_upto(
                    Mode.MEM if request.is_pim else Mode.PIM, cycle
                )
                - request.mc_blocked_base
            )
        self.policy.on_issue(request, cycle)
        self._next_wake = cycle + 1
        self._dirty = True
        return request

    def next_wake_cycle(self, cycle: int) -> int:
        """Earliest cycle at which a future ``tick`` could act (fast-forward
        contract).

        Only meaningful right after a ``tick(cycle)`` left the controller
        clean (``_dirty`` False).  Returns ``cycle + 1`` when the controller
        must keep ticking every cycle, a future cycle when it sleeps until a
        self-scheduled event (bank timing, drain, refresh), or ``NEVER``
        when only external work (enqueue/completion) can wake it.  Ticks in
        between are exactly the ones the in-tick wake gate would skip, so
        eliding them is behavior-preserving.
        """
        wake = self._next_wake
        if wake > cycle + 1:
            return wake
        if self.is_switching or self.mem_queue or self.pim_queue:
            # Busy but re-evaluating every cycle (e.g. waiting on a bank
            # that frees next cycle): cannot skip anything.
            return cycle + 1
        # Pure idle: both queues empty and no drain in progress.  decide()
        # is side-effect free on empty queues, so the only future event the
        # controller generates on its own is refresh.
        if not self.refresh.enabled:
            return NEVER
        if self.refresh.backlog:
            return cycle + 1
        wake = self.refresh.next_due_cycle()
        if cycle < self._refresh_until < wake:
            wake = self._refresh_until
        return wake if wake > cycle else cycle + 1

    def finalize(self, cycle: int) -> None:
        """Close out time-based accounting at the end of a simulation."""
        self._account_mode_cycles(cycle)

    # -- introspection -------------------------------------------------------

    def queued_requests(self) -> int:
        return len(self.mem_queue) + len(self.pim_queue)

    def outstanding(self) -> int:
        return (
            self.queued_requests()
            + self.channel.mem_in_flight()
            + self.pim_exec.in_flight()
        )
