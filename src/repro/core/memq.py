"""Per-bank indexed MEM queue for the memory controller.

The FR-FCFS family makes the same three queries every decision cycle:

* *oldest overall* — FCFS arbitration across modes,
* *oldest per bank* — the "any" candidate of FR-FCFS,
* *oldest row hit per bank* — the "hit" candidate against the bank's
  currently open row.

With a flat ``List[Request]`` each query is an O(queue) scan per
controller per cycle.  :class:`BankIndexedMemQueue` maintains the answers
incrementally instead: requests are bucketed by bank at enqueue (the
decoded ``bank``/``row`` fields are cached on the request, so no address
math happens here), each bucket keeps arrival-ordered deques per bank and
per (bank, row), and a global arrival-ordered deque answers
``oldest_overall`` in O(1).

Removal uses **lazy tombstones**: ``Request.in_mem_queue`` is flipped off
and the dead entry stays in the deques until it reaches a head, where it
is popped while trimming.  Every request enters each deque exactly once,
so trimming is amortized O(1) per request over the whole simulation.

Invariants (exercised by ``tests/test_scheduler_equivalence.py``):

* A request is *live* iff ``in_mem_queue`` is True; live requests appear
  exactly once in their bank deque, their (bank, row) deque, and the
  global age deque, all in strictly increasing ``mc_seq`` order.
* ``len(q)`` equals the number of live requests; per-bank live counts are
  maintained eagerly so ``banks_with_work`` never reports an empty bank.
* Iteration yields live requests in arrival (``mc_seq``) order — the same
  order the flat list produced — so scan-style consumers
  (``issuable_mem``, ``mem_requests_by_bank``, metrics) see identical
  sequences.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.request import Request


class BankIndexedMemQueue:
    """Arrival-ordered MEM queue with per-bank and per-row indexes."""

    __slots__ = ("_num_banks", "_pending", "_rows", "_age", "_live", "_bank_live")

    def __init__(self, num_banks: int) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self._num_banks = num_banks
        # Per-bank arrival order (lazily trimmed tombstones).
        self._pending: List[Deque[Request]] = [deque() for _ in range(num_banks)]
        # Per-bank row -> arrival-ordered requests for that row.
        self._rows: List[Dict[int, Deque[Request]]] = [{} for _ in range(num_banks)]
        # Global arrival order across banks.
        self._age: Deque[Request] = deque()
        self._live = 0
        self._bank_live = [0] * num_banks

    # -- list-compatible surface (truthiness, len, iteration, [0]) ---------

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Request]:
        # Arrival order, skipping tombstones; no trimming so iteration is
        # safe while the queue is concurrently inspected (not mutated).
        for request in self._age:
            if request.in_mem_queue:
                yield request

    def __getitem__(self, index: int) -> Request:
        if index == 0:
            head = self.head()
            if head is None:
                raise IndexError("mem queue is empty")
            return head
        # Rare path kept for list compatibility (tests, debugging).
        return list(self)[index]

    def append(self, request: Request) -> None:
        """Admit ``request`` (must carry decoded bank/row and a fresh seq)."""
        bank = request.bank
        if bank < 0 or bank >= self._num_banks:
            raise ValueError(f"request bank {bank} outside [0, {self._num_banks})")
        request.in_mem_queue = True
        self._age.append(request)
        self._pending[bank].append(request)
        rows = self._rows[bank]
        row_queue = rows.get(request.row)
        if row_queue is None:
            rows[request.row] = row_queue = deque()
        row_queue.append(request)
        self._live += 1
        self._bank_live[bank] += 1

    def remove(self, request: Request) -> None:
        """Tombstone ``request``; deque entries are trimmed lazily."""
        if not request.in_mem_queue:
            raise ValueError("request is not in the MEM queue")
        request.in_mem_queue = False
        self._live -= 1
        self._bank_live[request.bank] -= 1

    # -- O(1) heads ---------------------------------------------------------

    def head(self) -> Optional[Request]:
        """Oldest live MEM request, or None."""
        age = self._age
        while age:
            request = age[0]
            if request.in_mem_queue:
                return request
            age.popleft()
        return None

    def bank_head(self, bank: int) -> Optional[Request]:
        """Oldest live request for ``bank``, or None."""
        pending = self._pending[bank]
        while pending:
            request = pending[0]
            if request.in_mem_queue:
                return request
            pending.popleft()
        return None

    def row_head(self, bank: int, row: int) -> Optional[Request]:
        """Oldest live request for (``bank``, ``row``), or None."""
        rows = self._rows[bank]
        row_queue = rows.get(row)
        if row_queue is None:
            return None
        while row_queue:
            request = row_queue[0]
            if request.in_mem_queue:
                return request
            row_queue.popleft()
        del rows[row]
        return None

    # -- bank-level views ----------------------------------------------------

    def bank_pending(self, bank: int) -> int:
        return self._bank_live[bank]

    def banks_with_work(self) -> Iterator[int]:
        """Bank indices with at least one live request, ascending."""
        bank_live = self._bank_live
        for bank in range(self._num_banks):
            if bank_live[bank]:
                yield bank

    # -- filtered oldest lookups (BLISS blacklisting) ------------------------

    def bank_oldest(
        self, bank: int, pred: Optional[Callable[[Request], bool]] = None
    ) -> Optional[Request]:
        """Oldest live request in ``bank`` satisfying ``pred`` (or any)."""
        if pred is None:
            return self.bank_head(bank)
        for request in self._pending[bank]:
            if request.in_mem_queue and pred(request):
                return request
        return None

    def row_oldest(
        self, bank: int, row: int, pred: Optional[Callable[[Request], bool]] = None
    ) -> Optional[Request]:
        """Oldest live request for (``bank``, ``row``) satisfying ``pred``."""
        if pred is None:
            return self.row_head(bank, row)
        row_queue = self._rows[bank].get(row)
        if row_queue is None:
            return None
        for request in row_queue:
            if request.in_mem_queue and pred(request):
                return request
        return None
