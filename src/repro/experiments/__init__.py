"""Experiment harnesses: runners, per-figure sweeps, sensitivity studies."""

from repro.experiments.figures import (
    ABLATION_STAGES,
    collaborative_policy,
    competitive_policy,
    competitive_sweep,
    fig4_characterization,
    fig5_corun_slowdown,
    fig6_mem_arrival,
    fig8_fairness_throughput,
    fig10_switch_overheads,
    fig11_llm_speedup,
    fig13_intensity_extremes,
    fig14a_ablation,
    fig14b_queue_sensitivity,
    format_table,
    latency_breakdown_rows,
)
from repro.experiments.runner import (
    BASELINE_POLICY,
    CollaborativeOutcome,
    CompetitiveOutcome,
    ExperimentScale,
    Runner,
)
from repro.experiments.parallel import GridTask, make_tasks, run_grid_parallel
from repro.experiments.report import generate_report, telemetry_section
from repro.experiments.sweep import sweep_f3fs_caps, sweep_policy_parameter

__all__ = [
    "ABLATION_STAGES",
    "BASELINE_POLICY",
    "CollaborativeOutcome",
    "CompetitiveOutcome",
    "ExperimentScale",
    "Runner",
    "collaborative_policy",
    "competitive_policy",
    "competitive_sweep",
    "fig10_switch_overheads",
    "fig11_llm_speedup",
    "fig13_intensity_extremes",
    "fig14a_ablation",
    "fig14b_queue_sensitivity",
    "fig4_characterization",
    "fig5_corun_slowdown",
    "fig6_mem_arrival",
    "fig8_fairness_throughput",
    "format_table",
    "generate_report",
    "latency_breakdown_rows",
    "telemetry_section",
    "GridTask",
    "make_tasks",
    "run_grid_parallel",
    "sweep_f3fs_caps",
    "sweep_policy_parameter",
]
