"""Markdown report generation.

``generate_report`` runs a configurable subset of the paper's experiments
through a :class:`~repro.experiments.runner.Runner` and renders one
self-contained markdown document — the programmatic backbone of
EXPERIMENTS.md and of the ``python -m repro report`` command.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.policies import PAPER_POLICY_ORDER
from repro.experiments.figures import (
    fig4_characterization,
    fig6_mem_arrival,
    fig8_fairness_throughput,
    fig10_switch_overheads,
    fig11_llm_speedup,
)
from repro.experiments.runner import Runner
from repro.metrics.stats import arithmetic_mean


def _md_table(rows: Sequence[dict], columns: Sequence[str]) -> str:
    """Render rows as a GitHub-flavored markdown table."""

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(cell(row.get(c, "")) for c in columns) + " |" for row in rows
    ]
    return "\n".join([header, divider, *body])


def telemetry_section(result, title: str = "Per-hop request latency") -> str:
    """Markdown section for a telemetry-enabled :class:`SimResult`.

    Renders the per-(mode, stage) latency breakdown from
    ``result.telemetry`` (see :mod:`repro.obs`) plus the hop-sum identity
    line; raises if the run had no telemetry attached.
    """
    from repro.experiments.figures import latency_breakdown_rows

    summary = getattr(result, "telemetry", None) or result
    if not isinstance(summary, dict) or "stages" not in summary:
        raise ValueError("result has no telemetry summary (enable_telemetry first)")
    rows = latency_breakdown_rows(summary)
    sections = [f"## {title}", ""]
    sections.append(
        _md_table(rows, ["mode", "stage", "count", "mean", "p50", "p95", "p99", "max"])
    )
    identity = summary.get("hop_identity", {})
    if identity.get("requests"):
        sections.append(
            f"\nHop identity over {identity['requests']} DRAM/PIM-serviced "
            f"requests: mean total latency {identity['mean_total_latency']} "
            f"cycles vs per-hop sum {identity['mean_hop_sum']} "
            f"(mean gap {identity['mean_abs_gap']})."
        )
    return "\n".join(sections) + "\n"


def generate_report(
    runner: Runner,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    policies: Optional[Sequence[str]] = None,
    title: str = "Reproduction report",
) -> str:
    """Run the core experiments and render a markdown report."""
    policies = list(policies or PAPER_POLICY_ORDER)
    sections: List[str] = [f"# {title}", ""]
    scale = runner.scale
    sections.append(
        f"Configuration: {scale.num_channels} channels, "
        f"{scale.gpu_sms_full}/{scale.gpu_sms_corun}/{scale.pim_sms} SMs "
        f"(full/co-run/PIM), workload scale {scale.workload_scale}, "
        f"seed {scale.seed}."
    )
    sections.append(f"\nKernels: GPU {list(gpu_subset)}, PIM {list(pim_subset)}.\n")

    # Figure 4.
    char = fig4_characterization(runner, gpu_subset, pim_subset)
    rows = [
        {"group": group, "kernel": kid, **metrics}
        for group, kernels in char.items()
        for kid, metrics in kernels.items()
    ]
    sections.append("## Characterization (Figure 4)\n")
    sections.append(_md_table(rows, ["group", "kernel", "noc_rate", "mc_rate", "blp", "rbhr"]))

    # Figure 6.
    arrivals = fig6_mem_arrival(runner, gpu_subset, pim_subset, policies)
    rows = []
    for num_vcs, by_policy in arrivals.items():
        for policy, per_gpu in by_policy.items():
            rows.append(
                {
                    "config": f"VC{num_vcs}",
                    "policy": policy,
                    "mean_norm_rate": arithmetic_mean(list(per_gpu.values())),
                }
            )
    sections.append("\n## MEM arrival rate at the MC (Figure 6)\n")
    sections.append(_md_table(rows, ["config", "policy", "mean_norm_rate"]))

    # Figure 8.
    fairness = fig8_fairness_throughput(runner, gpu_subset, pim_subset, policies)
    rows = []
    for num_vcs, by_policy in fairness.items():
        for policy, per_pim in by_policy.items():
            rows.append(
                {
                    "config": f"VC{num_vcs}",
                    "policy": policy,
                    "fairness": arithmetic_mean([m["fairness"] for m in per_pim.values()]),
                    "throughput": arithmetic_mean([m["throughput"] for m in per_pim.values()]),
                }
            )
    sections.append("\n## Fairness and throughput (Figure 8)\n")
    sections.append(_md_table(rows, ["config", "policy", "fairness", "throughput"]))

    # Figure 10.
    switches = fig10_switch_overheads(runner, gpu_subset, pim_subset, policies)
    rows = []
    for num_vcs, by_policy in switches.items():
        for policy, metrics in by_policy.items():
            rows.append({"config": f"VC{num_vcs}", "policy": policy, **metrics})
    sections.append("\n## Mode switches and overheads (Figure 10)\n")
    sections.append(
        _md_table(rows, ["config", "policy", "switches_vs_fcfs", "conflicts_per_switch", "drain_latency"])
    )

    # Figure 11.
    llm = fig11_llm_speedup(runner, policies)
    rows = []
    for num_vcs, by_policy in llm.items():
        for policy, value in by_policy.items():
            rows.append({"config": f"VC{num_vcs}", "policy": policy, "speedup": value})
    sections.append("\n## Collaborative LLM speedup (Figure 11)\n")
    sections.append(_md_table(rows, ["config", "policy", "speedup"]))

    sections.append("")
    return "\n".join(sections)
