"""Per-figure experiment harnesses.

One function per table/figure of the paper's evaluation (see DESIGN.md's
experiment index).  Each returns plain data structures (dicts keyed by
kernel/policy) and leaves rendering to the caller; ``format_table`` gives a
quick aligned-text rendering used by the benchmark harness and the
examples.

All functions accept kernel subsets so the benchmark suite can run quickly;
pass the full id lists to reproduce the paper-scale sweeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.policies import PAPER_POLICY_ORDER, PolicySpec
from repro.experiments.runner import CompetitiveOutcome, Runner
from repro.metrics.stats import arithmetic_mean, geometric_mean
from repro.workloads import pim_ids, rodinia_ids

#: Paper parameter choices per policy (Sections III-D and VII-B).
COMPETITIVE_POLICY_PARAMS: Dict[str, Dict] = {
    "FR-FCFS-Cap": {"cap": 32},
    "BLISS": {"threshold": 4},
    "G&I": {"high_watermark": 56, "low_watermark": 32},
    "F3FS": {"mem_cap": 256, "pim_cap": 256},
}

#: F3FS collaborative CAPs per VC configuration, set like the paper's via
#: a sensitivity study (Section VII-B): asymmetric MEM-favoring CAPs under
#: VC1 (paper: 256/128; here 32/16 — same 2:1 ratio, magnitudes scaled to
#: the smaller system where queue pressure is lower so large CAPs never
#: bind) and symmetric CAPs under VC2 (paper: 64/64; here 32/32).
COLLABORATIVE_F3FS_CAPS = {1: {"mem_cap": 32, "pim_cap": 16}, 2: {"mem_cap": 32, "pim_cap": 32}}


def competitive_policy(name: str) -> PolicySpec:
    return PolicySpec(name, **COMPETITIVE_POLICY_PARAMS.get(name, {}))


def collaborative_policy(name: str, num_vcs: int) -> PolicySpec:
    if name == "F3FS":
        return PolicySpec(name, **COLLABORATIVE_F3FS_CAPS[num_vcs])
    return PolicySpec(name, **COMPETITIVE_POLICY_PARAMS.get(name, {}))


def _mean(values: Iterable[float]) -> float:
    data = list(values)
    return arithmetic_mean(data) if data else 0.0


# ---------------------------------------------------------------------------
# Figure 4 — memory access characterization
# ---------------------------------------------------------------------------


def fig4_characterization(
    runner: Runner,
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Arrival rates, BLP, and RBHR for GPU-80 / GPU-8 / PIM (Figure 4).

    Returns ``{group: {kernel_id: {metric: value}}}`` with metrics
    ``noc_rate`` (Fig 4a), ``mc_rate`` (Fig 4b), ``blp`` (Fig 4c) and
    ``rbhr`` (Fig 4d).
    """
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    scale = runner.scale
    data: Dict[str, Dict[str, Dict[str, float]]] = {"GPU-80": {}, "GPU-8": {}, "PIM": {}}
    for gid in gpu_subset:
        for group, sms in (("GPU-80", scale.gpu_sms_full), ("GPU-8", scale.pim_sms)):
            result = runner.gpu_standalone(gid, sms=sms)
            kernel = result.kernels[0]
            data[group][gid] = {
                "noc_rate": kernel.injection_rate(result.cycles),
                "mc_rate": kernel.mc_arrival_rate(result.cycles),
                "blp": result.bank_level_parallelism,
                "rbhr": kernel.row_buffer_hit_rate,
            }
    for pid in pim_subset:
        result = runner.pim_standalone(pid)
        kernel = result.kernels[0]
        data["PIM"][pid] = {
            "noc_rate": kernel.injection_rate(result.cycles),
            "mc_rate": kernel.mc_arrival_rate(result.cycles),
            "blp": result.bank_level_parallelism,
            "rbhr": kernel.row_buffer_hit_rate,
        }
    return data


# ---------------------------------------------------------------------------
# Figure 5 — co-run slowdown of the Rodinia suite
# ---------------------------------------------------------------------------


def fig5_corun_slowdown(
    runner: Runner,
    suite: Optional[Sequence[str]] = None,
    gpu_corunners: Sequence[str] = ("G4", "G6", "G15", "G17"),
    pim_corunner: str = "P1",
) -> Dict[str, float]:
    """Average suite speedup on the co-run SMs per co-runner (Figure 5).

    Keys: ``"none"`` (the reduced-SM effect alone), each GPU co-runner id,
    and the PIM co-runner id.  Values are normalized to the full-machine
    standalone run.
    """
    suite = list(suite or rodinia_ids())
    scale = runner.scale
    results: Dict[str, float] = {}

    def full_alone(gid: str) -> int:
        return runner.gpu_standalone(gid, sms=scale.gpu_sms_full).kernels[0].first_duration

    results["none"] = _mean(
        full_alone(gid)
        / runner.gpu_standalone(gid, sms=scale.gpu_sms_corun).kernels[0].first_duration
        for gid in suite
    )
    for corunner in gpu_corunners:
        results[corunner] = _mean(
            runner.gpu_pair(gid, corunner) for gid in suite if gid != corunner
        )
    pim_policy = competitive_policy("FR-FCFS")
    results[pim_corunner] = _mean(
        runner.competitive(gid, pim_corunner, pim_policy, num_vcs=1).gpu_speedup
        for gid in suite
    )
    return results


# ---------------------------------------------------------------------------
# Shared competitive sweep (Figures 6, 8, 10, 13, 14b)
# ---------------------------------------------------------------------------


def competitive_sweep(
    runner: Runner,
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> List[CompetitiveOutcome]:
    """Run the competitive grid; outcomes are cached inside the runner."""
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    policies = list(policies or PAPER_POLICY_ORDER)
    outcomes: List[CompetitiveOutcome] = []
    for num_vcs in vc_configs:
        for name in policies:
            spec = competitive_policy(name)
            for gid in gpu_subset:
                for pid in pim_subset:
                    outcomes.append(runner.competitive(gid, pid, spec, num_vcs=num_vcs))
    return outcomes


def fig6_mem_arrival(
    runner: Runner,
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Normalized MEM arrival rate at the MC (Figure 6).

    Returns ``{num_vcs: {policy: {gpu_id: normalized_rate}}}`` where the
    rate is averaged across PIM co-runners and normalized to the GPU
    kernel's standalone arrival rate (higher is better; 1.0 = no
    degradation).
    """
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    policies = list(policies or PAPER_POLICY_ORDER)
    scale = runner.scale
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for num_vcs in vc_configs:
        out[num_vcs] = {}
        for name in policies:
            spec = competitive_policy(name)
            per_gpu: Dict[str, float] = {}
            for gid in gpu_subset:
                # Standalone arrival rate on the co-run SM allocation.
                alone = runner.gpu_standalone(gid, sms=scale.gpu_sms_corun, num_vcs=num_vcs)
                base_rate = alone.kernels[0].mc_arrival_rate(alone.cycles)
                rates = [
                    runner.competitive(gid, pid, spec, num_vcs=num_vcs).mem_arrival_rate
                    for pid in pim_subset
                ]
                per_gpu[gid] = _mean(rates) / base_rate if base_rate else 0.0
            out[num_vcs][name] = per_gpu
    return out


def fig8_fairness_throughput(
    runner: Runner,
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> Dict[int, Dict[str, Dict[str, Dict[str, float]]]]:
    """Fairness Index and System Throughput per PIM kernel (Figure 8).

    Returns ``{num_vcs: {policy: {pim_id: {"fairness", "throughput",
    "mem_speedup", "pim_speedup"}}}}``, each averaged across GPU kernels.
    """
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    policies = list(policies or PAPER_POLICY_ORDER)
    out: Dict[int, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for num_vcs in vc_configs:
        out[num_vcs] = {}
        for name in policies:
            spec = competitive_policy(name)
            per_pim: Dict[str, Dict[str, float]] = {}
            for pid in pim_subset:
                runs = [
                    runner.competitive(gid, pid, spec, num_vcs=num_vcs) for gid in gpu_subset
                ]
                per_pim[pid] = {
                    "fairness": _mean(r.fairness for r in runs),
                    "throughput": _mean(r.throughput for r in runs),
                    "mem_speedup": _mean(r.gpu_speedup for r in runs),
                    "pim_speedup": _mean(r.pim_speedup for r in runs),
                }
            out[num_vcs][name] = per_pim
    return out


def fig10_switch_overheads(
    runner: Runner,
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Mode switches (normalized to FCFS, geomean), conflicts per switch,
    and MEM drain latency per switch (Figure 10).

    Returns ``{num_vcs: {policy: {"switches_vs_fcfs", "conflicts_per_switch",
    "drain_latency"}}}``.
    """
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    policies = list(policies or PAPER_POLICY_ORDER)
    if "FCFS" not in policies:
        policies = ["FCFS"] + policies
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for num_vcs in vc_configs:
        fcfs_spec = competitive_policy("FCFS")
        fcfs_switches = {
            (gid, pid): max(1, runner.competitive(gid, pid, fcfs_spec, num_vcs=num_vcs).mode_switches)
            for gid in gpu_subset
            for pid in pim_subset
        }
        out[num_vcs] = {}
        for name in policies:
            spec = competitive_policy(name)
            ratios: List[float] = []
            conflicts: List[float] = []
            drains: List[float] = []
            for gid in gpu_subset:
                for pid in pim_subset:
                    run = runner.competitive(gid, pid, spec, num_vcs=num_vcs)
                    ratios.append(max(run.mode_switches, 1) / fcfs_switches[(gid, pid)])
                    conflicts.append(run.conflicts_per_switch)
                    drains.append(run.drain_latency_per_switch)
            out[num_vcs][name] = {
                "switches_vs_fcfs": geometric_mean(ratios),
                "conflicts_per_switch": _mean(conflicts),
                "drain_latency": _mean(drains),
            }
    return out


# ---------------------------------------------------------------------------
# Figure 11 — collaborative LLM speedup
# ---------------------------------------------------------------------------


def fig11_llm_speedup(
    runner: Runner,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> Dict[int, Dict[str, float]]:
    """LLM speedup vs sequential execution per policy (Figure 11).

    The special key ``"Ideal"`` holds the perfect-overlap bound.
    """
    policies = list(policies or PAPER_POLICY_ORDER)
    out: Dict[int, Dict[str, float]] = {}
    for num_vcs in vc_configs:
        out[num_vcs] = {}
        ideal = None
        for name in policies:
            spec = collaborative_policy(name, num_vcs)
            run = runner.collaborative(spec, num_vcs=num_vcs)
            out[num_vcs][name] = run.speedup
            ideal = run.ideal_speedup
        if ideal is not None:
            out[num_vcs]["Ideal"] = ideal
    return out


# ---------------------------------------------------------------------------
# Figure 13 — intensity extremes
# ---------------------------------------------------------------------------


def fig13_intensity_extremes(
    runner: Runner,
    gpu_subset: Sequence[str] = ("G10", "G6", "G11", "G17", "G19"),
    pim_subset: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> Dict[int, Dict[str, Dict[str, Dict[str, float]]]]:
    """Fairness/throughput per *GPU* kernel, averaged over PIM kernels
    (Figure 13 — the orthogonal slice of Figure 8).

    Returns ``{num_vcs: {policy: {gpu_id: {"fairness", "throughput"}}}}``.
    """
    pim_subset = list(pim_subset or pim_ids())
    policies = list(policies or PAPER_POLICY_ORDER)
    out: Dict[int, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for num_vcs in vc_configs:
        out[num_vcs] = {}
        for name in policies:
            spec = competitive_policy(name)
            per_gpu: Dict[str, Dict[str, float]] = {}
            for gid in gpu_subset:
                runs = [
                    runner.competitive(gid, pid, spec, num_vcs=num_vcs) for pid in pim_subset
                ]
                per_gpu[gid] = {
                    "fairness": _mean(r.fairness for r in runs),
                    "throughput": _mean(r.throughput for r in runs),
                }
            out[num_vcs][name] = per_gpu
    return out


# ---------------------------------------------------------------------------
# Figure 14a — F3FS ablation
# ---------------------------------------------------------------------------

#: The ablation ladder (Section VII-C): each stage adds one F3FS component.
ABLATION_STAGES: List[Dict] = [
    {"label": "FR-FCFS-Cap", "policy": "FR-FCFS-Cap", "params": {"cap": 32}},
    {
        "label": "+cap on requests",
        "policy": "F3FS",
        "params": {"mem_cap": 256, "pim_cap": 256, "current_mode_first": False},
    },
    {
        "label": "+current mode first",
        "policy": "F3FS",
        "params": {"mem_cap": 256, "pim_cap": 256},
    },
    {
        "label": "+asymmetric CAPs",
        "policy": "F3FS",
        # 4:1 MEM-favoring split (paper: 256/128; a tighter PIM CAP is
        # needed for the asymmetry to bind on the scaled system).
        "params": {"mem_cap": 256, "pim_cap": 64},
    },
]


def fig14a_ablation(
    runner: Runner,
    pim_id: str = "P2",
    gpu_subset: Optional[Sequence[str]] = None,
    num_vcs: int = 2,
) -> List[Dict[str, float]]:
    """Incremental impact of F3FS components on P2 and the LLM (Figure 14a).

    GPU kernels exclude kmeans (G11), which starves under FR-FCFS-Cap in
    the paper's runs.  Returns one dict per stage with the stage label,
    fairness index, throughput, and LLM speedup.
    """
    gpu_subset = [g for g in (gpu_subset or rodinia_ids()) if g != "G11"]
    rows: List[Dict[str, float]] = []
    for stage in ABLATION_STAGES:
        spec = PolicySpec(stage["policy"], **stage["params"])
        runs = [runner.competitive(gid, pim_id, spec, num_vcs=num_vcs) for gid in gpu_subset]
        llm = runner.collaborative(spec, num_vcs=num_vcs)
        rows.append(
            {
                "label": stage["label"],
                "fairness": _mean(r.fairness for r in runs),
                "throughput": _mean(r.throughput for r in runs),
                "llm_speedup": llm.speedup,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 14b — interconnect queue-size sensitivity
# ---------------------------------------------------------------------------


def fig14b_queue_sensitivity(
    runner_factory,
    queue_sizes: Sequence[int] = (32, 64, 128),
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
) -> Dict[int, Dict[str, float]]:
    """F3FS sensitivity to NoC queue size under VC2 (Figure 14b).

    ``runner_factory(queue_size)`` must return a Runner whose scale uses
    that queue size.  Queue sizes are the scaled analog of the paper's
    256/512/1024 sweep around the 512-entry baseline.
    """
    gpu_subset = list(gpu_subset or rodinia_ids())
    pim_subset = list(pim_subset or pim_ids())
    spec = competitive_policy("F3FS")
    out: Dict[int, Dict[str, float]] = {}
    for size in queue_sizes:
        runner = runner_factory(size)
        runs = [
            runner.competitive(gid, pid, spec, num_vcs=2)
            for gid in gpu_subset
            for pid in pim_subset
        ]
        out[size] = {
            "fairness": _mean(r.fairness for r in runs),
            "throughput": _mean(r.throughput for r in runs),
        }
    return out


# ---------------------------------------------------------------------------
# Telemetry consumers (repro.obs)
# ---------------------------------------------------------------------------


def latency_breakdown_rows(telemetry: Mapping) -> List[Dict[str, object]]:
    """Flatten a telemetry stats summary into per-(mode, stage) table rows.

    ``telemetry`` is ``SimResult.telemetry`` (i.e. ``Telemetry.summary()``);
    rows follow the canonical stage order and render directly with
    :func:`format_table` / ``report._md_table``.
    """
    rows: List[Dict[str, object]] = []
    for mode in sorted(telemetry.get("stages", {})):
        for stage, hist in telemetry["stages"][mode].items():
            rows.append(
                {
                    "mode": mode,
                    "stage": stage,
                    "count": hist["count"],
                    "mean": hist["mean"],
                    "p50": hist["p50"],
                    "p95": hist["p95"],
                    "p99": hist["p99"],
                    "max": hist["max"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Rendering helper
# ---------------------------------------------------------------------------


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Align rows of dicts into a fixed-width text table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        line = {c: cell(row.get(c, "")) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(line[c]))
        rendered.append(line)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    divider = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(line[c].ljust(widths[c]) for c in columns) for line in rendered
    ]
    return "\n".join([header, divider, *body])
