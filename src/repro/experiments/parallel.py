"""Parallel execution of competitive grids.

The full 20x9x9x2 grid of Figure 8 is thousands of independent
simulations; this module fans them out over worker processes.  Each task
is self-contained — (gpu_id, pim_id, policy name+params, vcs, scale) —
and each worker process builds one Runner in its initializer and reuses
it for every task it executes, so nothing unpicklable crosses the
process boundary and standalone baselines are deduplicated across a
worker's whole task stream (not just within one task).  Pass
``cache_path`` to additionally share baselines across workers through
the disk cache.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PolicySpec
from repro.experiments.runner import CompetitiveOutcome, ExperimentScale, Runner


@dataclass(frozen=True)
class GridTask:
    """One competitive simulation, picklable."""

    gpu_id: str
    pim_id: str
    policy_name: str
    policy_params: Tuple[Tuple[str, object], ...]
    num_vcs: int

    @property
    def policy(self) -> PolicySpec:
        return PolicySpec(self.policy_name, **dict(self.policy_params))


def make_tasks(
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    policies: Sequence[PolicySpec],
    vc_configs: Sequence[int] = (1, 2),
) -> List[GridTask]:
    tasks = []
    for num_vcs in vc_configs:
        for policy in policies:
            for gpu_id in gpu_subset:
                for pim_id in pim_subset:
                    tasks.append(
                        GridTask(
                            gpu_id=gpu_id,
                            pim_id=pim_id,
                            policy_name=policy.name,
                            policy_params=tuple(sorted(policy.params.items())),
                            num_vcs=num_vcs,
                        )
                    )
    return tasks


#: Per-process Runner, created once by :func:`_init_worker` and shared by
#: every task the worker executes (its in-memory caches deduplicate the
#: standalone baselines the tasks have in common).
_WORKER_RUNNER: Optional[Runner] = None


def _init_worker(
    scale_fields: Dict, cache_path: Optional[str], perf_counters: bool = False
) -> None:
    """Process-pool initializer: build this worker's Runner once."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = Runner(
        ExperimentScale(**scale_fields),
        cache_path=cache_path,
        perf_counters=perf_counters,
    )


def _run_task(task: GridTask) -> Tuple[Dict, Optional[Dict]]:
    """Worker entry point (module-level for pickling).

    Returns ``(outcome_fields, perf_snapshot)``; the snapshot is the
    task's own engine wall-clock (the shared counter is reset before the
    run) or ``None`` when counters are disabled.
    """
    perf = _WORKER_RUNNER.perf
    if perf is not None:
        perf.reset()
    outcome = _WORKER_RUNNER.competitive(
        task.gpu_id, task.pim_id, task.policy, num_vcs=task.num_vcs
    )
    return asdict(outcome), (perf.snapshot() if perf is not None else None)


def run_grid_parallel(
    scale: ExperimentScale,
    tasks: Sequence[GridTask],
    max_workers: int = 4,
    cache_path: Optional[str] = None,
    collect_perf: bool = False,
):
    """Run tasks across processes; results come back in task order.

    With ``collect_perf=True`` every worker times its engine stages and
    the return value becomes ``(outcomes, EngineCounters)`` where the
    counters are the merge of all per-task snapshots.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    global _WORKER_RUNNER
    scale_fields = asdict(scale)
    if max_workers == 1:
        _init_worker(scale_fields, cache_path, collect_perf)
        try:
            raw = [_run_task(task) for task in tasks]
        finally:
            _WORKER_RUNNER = None
    else:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(scale_fields, cache_path, collect_perf),
        ) as pool:
            raw = list(pool.map(_run_task, tasks))
    outcomes = [CompetitiveOutcome(**record) for record, _ in raw]
    if not collect_perf:
        return outcomes
    from repro.perf.counters import EngineCounters

    merged = EngineCounters()
    for _, snapshot in raw:
        if snapshot:
            merged.merge_snapshot(snapshot)
    return outcomes, merged
