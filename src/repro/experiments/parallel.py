"""Parallel, resumable execution of competitive grids.

The full 20x9x9x2 grid of Figure 8 is thousands of independent
simulations; this module fans them out over worker processes.  Each task
is self-contained — (gpu_id, pim_id, policy name+params, vcs, scale) —
and each worker process builds one Runner in its initializer and reuses
it for every task it executes, so nothing unpicklable crosses the
process boundary and standalone baselines are deduplicated across a
worker's whole task stream (not just within one task).

With ``store_dir`` set, every completed cell (and every standalone
baseline) is written through a content-addressed
:class:`repro.store.ResultStore` *as it finishes* — atomic rename, so a
crash or Ctrl-C loses at most the cells still in flight.  Re-invoking
the same grid then hits the store for completed cells and only simulates
the remainder; ``shard=(i, n)`` splits a grid across machines that share
(or later merge) a store; :func:`collect_from_store` reassembles the
full table without running anything.  Pass ``cache_path`` to
additionally share the legacy duration cache across workers.

Execution is fault tolerant (see ``docs/resilience.md``): worker pools
run under a :class:`repro.resilience.Supervisor` that survives worker
death (``BrokenProcessPool`` → respawn), enforces per-cell wall-clock
timeouts, retries failed cells with capped exponential backoff, and
after repeated failure quarantines a cell to
``GridReport.failed_outcomes`` (journaled in the store) so one poisoned
config cannot abort a thousand-cell campaign — the sweep completes every
healthy cell and degrades gracefully.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PolicySpec
from repro.experiments.runner import CompetitiveOutcome, ExperimentScale, Runner
from repro.resilience import faults as fault_injection
from repro.resilience.supervisor import (
    FATAL_KINDS,
    CellFailure,
    RetryPolicy,
    Supervisor,
    classify_failure,
)


@dataclass(frozen=True)
class GridTask:
    """One competitive simulation, picklable."""

    gpu_id: str
    pim_id: str
    policy_name: str
    policy_params: Tuple[Tuple[str, object], ...]
    num_vcs: int

    @property
    def policy(self) -> PolicySpec:
        return PolicySpec(self.policy_name, **dict(self.policy_params))

    @property
    def label(self) -> str:
        return f"{self.gpu_id}|{self.pim_id}|{self.policy_name}|vc{self.num_vcs}"


def make_tasks(
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    policies: Sequence[PolicySpec],
    vc_configs: Sequence[int] = (1, 2),
) -> List[GridTask]:
    tasks = []
    for num_vcs in vc_configs:
        for policy in policies:
            for gpu_id in gpu_subset:
                for pim_id in pim_subset:
                    tasks.append(
                        GridTask(
                            gpu_id=gpu_id,
                            pim_id=pim_id,
                            policy_name=policy.name,
                            policy_params=tuple(sorted(policy.params.items())),
                            num_vcs=num_vcs,
                        )
                    )
    return tasks


def task_store_key(scale: ExperimentScale, task: GridTask) -> str:
    """Content address of one grid cell, computable without a Runner."""
    from repro.store import competitive_payload, fingerprint
    from repro.workloads import get_gpu_kernel, get_pim_kernel

    return fingerprint(
        competitive_payload(
            scale,
            scale.config(task.num_vcs),
            task.gpu_id,
            task.pim_id,
            task.policy_name,
            dict(task.policy_params),
            task.num_vcs,
            gpu_spec=get_gpu_kernel(task.gpu_id),
            pim_spec=get_pim_kernel(task.pim_id),
        )
    )


def grid_store_keys(
    scale: ExperimentScale, tasks: Sequence[GridTask]
) -> List[str]:
    """Content addresses for a whole grid, in task order.

    Duplicate tasks map to duplicate keys — consumers that need
    fingerprint-unique work units (the fabric coordinator's lease
    groups, dedupe accounting) collapse them; consumers that need the
    per-task view (:func:`collect_from_store`, table assembly) use the
    list as-is.
    """
    return [task_store_key(scale, task) for task in tasks]


def shard_indices(total: int, shard: Optional[Tuple[int, int]]) -> List[int]:
    """Round-robin assignment of task indices to one shard.

    ``shard=(i, n)`` selects indices ``j`` with ``j % n == i`` — the
    deterministic split, independent of execution order, that lets the
    merged table be reassembled in original task order.
    """
    if shard is None:
        return list(range(total))
    index, count = shard
    for name, value in (("index", index), ("count", count)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"shard {name} must be an integer (got {value!r})")
    if count < 1:
        raise ValueError(f"shard count must be >= 1 (got {count})")
    if not 0 <= index < count:
        raise ValueError(f"shard index must satisfy 0 <= index < {count} (got {index})")
    return [j for j in range(total) if j % count == index]


class SweepAborted(RuntimeError):
    """Raised by the cell-count abort hook (crash-resume testing)."""

    def __init__(self, completed: int) -> None:
        super().__init__(f"sweep aborted after {completed} cells")
        self.completed = completed


@dataclass
class GridReport:
    """Outcome of one (possibly sharded/resumed) grid invocation.

    ``outcomes`` is aligned with ``tasks``; entries not run by this
    invocation (other shards, quarantined cells) are ``None``.  ``hits``
    counts cells (and memoized repeats) satisfied without simulating;
    ``misses`` counts cells that ran.  ``failed_outcomes`` lists cells
    quarantined by the supervisor after exhausting their retries (or
    immediately, for deterministic config/stall failures);
    ``retry_events`` is the supervisor's retry/suspect history.
    """

    tasks: List[GridTask]
    outcomes: List[Optional[CompetitiveOutcome]]
    hits: int = 0
    misses: int = 0
    counters: Optional[object] = None  # EngineCounters when collect_perf
    shard: Optional[Tuple[int, int]] = None
    failed_outcomes: List[CellFailure] = field(default_factory=list)
    retry_events: List[Dict] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome is not None)

    @property
    def failed(self) -> int:
        return len(self.failed_outcomes)

    def completed_outcomes(self) -> List[CompetitiveOutcome]:
        return [outcome for outcome in self.outcomes if outcome is not None]


#: Per-process Runner, created once by :func:`_init_worker` and shared by
#: every task the worker executes (its in-memory caches deduplicate the
#: standalone baselines the tasks have in common).
_WORKER_RUNNER: Optional[Runner] = None


def _init_worker(
    scale_fields: Dict,
    cache_path: Optional[str],
    perf_counters: bool = False,
    store_dir: Optional[str] = None,
    fresh: bool = False,
    fault_payload: Optional[Dict] = None,
    watchdog: Optional[int] = None,
) -> None:
    """Process-pool initializer: build this worker's Runner once."""
    global _WORKER_RUNNER
    store = None
    if store_dir is not None:
        from repro.store import ResultStore

        store = ResultStore(store_dir, read_enabled=not fresh)
    if fault_payload is not None:
        fault_injection.install(fault_injection.FaultPlan.from_payload(fault_payload))
    else:
        fault_injection.install(fault_injection.load_env())
    _WORKER_RUNNER = Runner(
        ExperimentScale(**scale_fields),
        cache_path=cache_path,
        perf_counters=perf_counters,
        store=store,
        watchdog_window=watchdog,
    )


def _apply_pre_fault(task: GridTask) -> None:
    """Trigger any injected fault scheduled for this cell (test-only).

    ``crash`` kills the worker process outright (exercising the
    supervisor's BrokenProcessPool path), ``hang`` sleeps past the cell
    timeout, ``error`` raises a retryable exception.  ``corrupt`` is
    applied *after* the run (see :func:`_apply_post_fault`).
    """
    plan = fault_injection.active()
    if plan is None:
        return
    kind = plan.claim(task.label, phase="pre")
    if kind == "crash":
        fault_injection.crash_worker()
    elif kind == "hang":
        time.sleep(plan.hang_seconds)
    elif kind == "error":
        raise fault_injection.FaultInjected(f"injected transient error at {task.label}")


def _apply_post_fault(task: GridTask) -> None:
    """Corrupt this cell's just-written store object, if so scheduled."""
    plan = fault_injection.active()
    if plan is None or _WORKER_RUNNER.store is None:
        return
    if plan.claim(task.label, phase="post") == "corrupt":
        key = task_store_key(_WORKER_RUNNER.scale, task)
        fault_injection.corrupt_store_object(_WORKER_RUNNER.store, key)


def _run_task(task: GridTask) -> Dict:
    """Worker entry point (module-level for pickling).

    Returns ``{"outcome": fields, "perf": snapshot|None, "store": how}``;
    the snapshot is the task's own engine wall-clock plus store hit/miss
    counts (the shared counter is reset before the run), and ``how`` is
    the runner's ``store_last`` ("hit"/"miss"/"memo"/None).
    """
    _apply_pre_fault(task)
    perf = _WORKER_RUNNER.perf
    if perf is not None:
        perf.reset()
    outcome = _WORKER_RUNNER.competitive(
        task.gpu_id, task.pim_id, task.policy, num_vcs=task.num_vcs
    )
    _apply_post_fault(task)
    return {
        "outcome": asdict(outcome),
        "perf": perf.snapshot() if perf is not None else None,
        "store": _WORKER_RUNNER.store_last,
    }


def run_grid_parallel(
    scale: ExperimentScale,
    tasks: Sequence[GridTask],
    max_workers: int = 4,
    cache_path: Optional[str] = None,
    collect_perf: bool = False,
    store_dir: Optional[str] = None,
    fresh: bool = False,
    cell_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
):
    """Run tasks across processes; results come back in task order.

    With ``collect_perf=True`` every worker times its engine stages and
    the return value becomes ``(outcomes, EngineCounters)`` where the
    counters are the merge of all per-task snapshots.  With ``store_dir``
    set, cells are written through (and satisfied from) the
    content-addressed result store — see :func:`run_grid_resumable` for
    the sharded/abortable variant that also reports hit/miss counts.

    This legacy entry point promises a complete, ordered outcome list,
    so — unlike :func:`run_grid_resumable`, which degrades gracefully —
    it raises ``RuntimeError`` if any cell was quarantined.
    """
    report = run_grid_resumable(
        scale,
        tasks,
        max_workers=max_workers,
        cache_path=cache_path,
        collect_perf=collect_perf,
        store_dir=store_dir,
        fresh=fresh,
        cell_timeout=cell_timeout,
        retry=retry,
    )
    if report.failed_outcomes:
        summary = ", ".join(
            f"{f.label} ({f.kind})" for f in report.failed_outcomes[:5]
        )
        raise RuntimeError(
            f"{len(report.failed_outcomes)} grid cell(s) failed after retries: {summary}"
            + ("..." if len(report.failed_outcomes) > 5 else "")
        )
    outcomes = report.outcomes
    if not collect_perf:
        return outcomes
    return outcomes, report.counters


def run_grid_resumable(
    scale: ExperimentScale,
    tasks: Sequence[GridTask],
    max_workers: int = 1,
    cache_path: Optional[str] = None,
    collect_perf: bool = False,
    store_dir: Optional[str] = None,
    fresh: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    abort_after: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[fault_injection.FaultPlan] = None,
    watchdog: Optional[int] = None,
    status_interval: float = 1.0,
) -> GridReport:
    """The resumable/sharded grid engine behind :func:`run_grid_parallel`.

    Completed cells stream into the store as they finish, so aborting —
    via Ctrl-C, a crash, or the ``abort_after`` cell-count hook (which
    raises :class:`SweepAborted` after N cells, simulating a kill) —
    never loses finished work.  ``shard=(i, n)`` runs only every n-th
    task starting at i; merged results for the full grid come from
    :func:`collect_from_store`.

    Failure handling (see ``docs/resilience.md``): worker crashes,
    per-cell wall-clock timeouts (``cell_timeout`` seconds) and
    worker-raised exceptions are retried per ``retry``
    (:class:`RetryPolicy`); cells that keep failing — or fail
    deterministically (config ``ValueError``, ``SimulationStalled``) —
    are quarantined into ``GridReport.failed_outcomes`` (journaled in
    the store when ``store_dir`` is set) and the sweep completes every
    healthy cell.  ``watchdog`` arms the in-engine stall detector with
    the given cycle window; ``faults`` installs a test-only
    :class:`~repro.resilience.faults.FaultPlan` in every worker (also
    loadable via the ``REPRO_FAULTS`` environment variable).

    With ``store_dir`` set the run also heartbeats: a
    :class:`repro.obs.status.StatusPublisher` keeps an atomically
    replaced ``status.json`` in the store root (throttled to
    ``status_interval`` seconds between writes; see
    ``docs/observability.md`` for the schema), and a final
    ``sweep_summary`` event is always journaled — even when every cell
    was a warm cache hit, so a 100%-hit ``--resume`` still leaves a
    visible record instead of an empty campaign.  The heartbeat is
    observational only: armed runs compute bit-identical results and
    store fingerprints to unarmed runs.
    """
    if max_workers < 1:
        raise ValueError("max_workers must be positive")
    retry = retry or RetryPolicy()
    if faults is None:
        faults = fault_injection.load_env()
    tasks = list(tasks)
    selected = shard_indices(len(tasks), shard)
    subset = [tasks[j] for j in selected]
    global _WORKER_RUNNER
    scale_fields = asdict(scale)
    fault_payload = faults.to_payload() if faults is not None else None
    init_args = (
        scale_fields,
        cache_path,
        collect_perf,
        store_dir,
        fresh,
        fault_payload,
        watchdog,
    )

    report = GridReport(
        tasks=tasks, outcomes=[None] * len(tasks), shard=shard
    )
    if collect_perf:
        from repro.perf.counters import EngineCounters

        report.counters = EngineCounters()

    journal_store = None
    publisher = None
    if store_dir is not None:
        from repro.obs.metrics import get_registry
        from repro.obs.status import StatusPublisher
        from repro.store import ResultStore

        journal_store = ResultStore(store_dir)
        publisher = StatusPublisher(
            store_dir,
            total_cells=len(subset),
            shard=shard,
            max_workers=max_workers,
            interval=status_interval,
            registry=get_registry(),
        )

    def quarantine(failure: CellFailure) -> None:
        # Rebase the subset-relative index onto the full task list and
        # record the poisoned cell next to the puts of the cells that
        # did complete.
        failure.index = selected[failure.index]
        report.failed_outcomes.append(failure)
        if journal_store is not None:
            journal_store.log_event("quarantine", **failure.to_dict())
        if publisher is not None:
            publisher.record_quarantine(failure.to_dict())

    def fold(position: int, record: Dict) -> None:
        report.outcomes[selected[position]] = CompetitiveOutcome(**record["outcome"])
        hit = record["store"] in ("hit", "memo")
        if hit:
            report.hits += 1
        else:
            report.misses += 1
        if report.counters is not None and record["perf"]:
            report.counters.merge_snapshot(record["perf"])
        if publisher is not None:
            publisher.record_completion(hit=hit)

    def finalize(state: str) -> None:
        """Publish the final heartbeat and journal the run's summary line.

        Runs unconditionally at the end of the invocation (``complete``
        or ``aborted``), so even a sweep whose every cell was a warm
        cache hit — which journals no ``put`` lines — leaves a visible
        account of what happened.
        """
        if publisher is not None:
            publisher.sync_retries(
                sum(1 for e in report.retry_events if e.get("kind") == "retry")
            )
            publisher.finish(state)
        if journal_store is not None:
            journal_store.log_event(
                "sweep_summary",
                state=state,
                total=len(subset),
                completed=report.completed,
                hits=report.hits,
                misses=report.misses,
                failed=report.failed,
                shard=list(shard) if shard is not None else None,
            )

    completed = 0
    # Crash/hang faults must never run in the coordinating process, so
    # any installed fault plan forces the supervised pool path even at
    # max_workers=1 (so does a cell timeout, which needs a killable
    # worker to enforce).
    use_pool = max_workers > 1 or cell_timeout is not None or faults is not None
    try:
        if not use_pool:
            _init_worker(*init_args)
            try:
                for position, task in enumerate(subset):
                    attempts = 0
                    while True:
                        try:
                            record = _run_task(task)
                        except SweepAborted:
                            raise
                        except Exception as exc:
                            kind = classify_failure(exc)
                            attempts += 1
                            if kind in FATAL_KINDS or attempts > retry.retries:
                                quarantine(
                                    CellFailure(
                                        index=position,
                                        label=task.label,
                                        kind=kind,
                                        message=str(exc),
                                        attempts=attempts,
                                        diagnostic=getattr(exc, "diagnostic", None),
                                    )
                                )
                                break
                            delay = retry.delay(task.label, attempts)
                            report.retry_events.append(
                                {
                                    "kind": "retry",
                                    "label": task.label,
                                    "attempt": attempts,
                                    "failure": kind,
                                    "delay": round(delay, 4),
                                    "message": str(exc),
                                }
                            )
                            if publisher is not None:
                                publisher.record_retry(report.retry_events[-1])
                            if delay > 0:
                                time.sleep(delay)
                            continue
                        fold(position, record)
                        completed += 1
                        if abort_after is not None and completed >= abort_after:
                            raise SweepAborted(completed)
                        break
            finally:
                _WORKER_RUNNER = None
        else:
            supervisor = Supervisor(
                _run_task,
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=init_args,
                cell_timeout=cell_timeout,
                retry=retry,
                labeler=lambda task: task.label,
            )
            supervisor.on_quarantine = quarantine
            if publisher is not None:

                def heartbeat(cells: List[Dict]) -> None:
                    # Live retry count rides the same tick as liveness
                    # (the supervisor appends retry events internally).
                    publisher.sync_retries(
                        sum(1 for e in supervisor.events if e.get("kind") == "retry")
                    )
                    publisher.record_in_flight(cells)

                supervisor.on_heartbeat = heartbeat

            def on_result(position: int, record: Dict) -> None:
                nonlocal completed
                fold(position, record)
                completed += 1
                if abort_after is not None and completed >= abort_after:
                    raise SweepAborted(completed)

            supervisor.run(subset, on_result)
            report.retry_events.extend(supervisor.events)
    except BaseException:
        finalize("aborted")
        raise
    finalize("complete")
    return report


def collect_from_store(
    scale: ExperimentScale, tasks: Sequence[GridTask], store_dir: str
) -> List[CompetitiveOutcome]:
    """Reassemble a full grid from the store, in task order, running nothing.

    Raises ``KeyError`` naming the missing cells if any shard has not
    completed — merging a partial grid silently would produce a table
    that *looks* final but is not.
    """
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    outcomes: List[CompetitiveOutcome] = []
    missing: List[str] = []
    for task, key in zip(tasks, grid_store_keys(scale, tasks)):
        fields = store.get(key, kind="competitive")
        if fields is None:
            missing.append(task.label)
            continue
        outcomes.append(CompetitiveOutcome(**fields))
    if missing:
        raise KeyError(
            f"{len(missing)} of {len(tasks)} cells missing from {store_dir}: "
            + ", ".join(missing[:5])
            + ("..." if len(missing) > 5 else "")
        )
    return outcomes
