"""Parameter sweeps (sensitivity studies).

The paper reports several sensitivity studies: the FR-FCFS-Cap CAP, the
BLISS blacklist threshold (Section VI-A), the F3FS CAP pair (Section
VII-B), and the interconnect queue size (Figure 14b).  These helpers run
small competitive grids across a parameter range and report the mean
fairness/throughput for each point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import PolicySpec
from repro.experiments.runner import Runner
from repro.metrics.stats import arithmetic_mean


def sweep_policy_parameter(
    runner: Runner,
    policy_name: str,
    parameter: str,
    values: Sequence,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 2,
    base_params: Optional[Dict] = None,
) -> List[Dict[str, float]]:
    """Sweep one constructor parameter of a policy over a competitive grid.

    Returns one row per value with mean fairness and throughput.
    """
    rows: List[Dict[str, float]] = []
    for value in values:
        params = dict(base_params or {})
        params[parameter] = value
        spec = PolicySpec(policy_name, **params)
        runs = [
            runner.competitive(gid, pid, spec, num_vcs=num_vcs)
            for gid in gpu_subset
            for pid in pim_subset
        ]
        rows.append(
            {
                "value": value,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows


def sweep_f3fs_caps(
    runner: Runner,
    cap_pairs: Sequence[tuple],
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 1,
) -> List[Dict[str, float]]:
    """Sweep (MEM CAP, PIM CAP) pairs for F3FS (Section VII-B tuning)."""
    rows: List[Dict[str, float]] = []
    for mem_cap, pim_cap in cap_pairs:
        spec = PolicySpec("F3FS", mem_cap=mem_cap, pim_cap=pim_cap)
        runs = [
            runner.competitive(gid, pid, spec, num_vcs=num_vcs)
            for gid in gpu_subset
            for pid in pim_subset
        ]
        rows.append(
            {
                "mem_cap": mem_cap,
                "pim_cap": pim_cap,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows
