"""Parameter sweeps (sensitivity studies).

The paper reports several sensitivity studies: the FR-FCFS-Cap CAP, the
BLISS blacklist threshold (Section VI-A), the F3FS CAP pair (Section
VII-B), and the interconnect queue size (Figure 14b).  These helpers run
small competitive grids across a parameter range and report the mean
fairness/throughput for each point.

Each sweep point is a competitive grid, expressed as
:class:`~repro.experiments.parallel.GridTask` items and executed through
:func:`~repro.experiments.parallel.run_grid_parallel`: with
``max_workers > 1`` the points fan out over worker processes that share
standalone baselines through the runner's disk cache (``cache_path`` /
``REPRO_CACHE``); with the default ``max_workers=1`` the tasks run
serially against the caller's runner, reusing its warm in-memory caches.
Either path computes identical outcomes — the tasks are deterministic
and independent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PAPER_POLICY_ORDER, PolicySpec
from repro.experiments.parallel import (
    GridReport,
    GridTask,
    make_tasks,
    run_grid_parallel,
    run_grid_resumable,
)
from repro.experiments.runner import CompetitiveOutcome, ExperimentScale, Runner
from repro.metrics.stats import arithmetic_mean

#: The EXPERIMENTS.md "setup of record" subsets for the default benchmark
#: grid (GPU x PIM x all nine policies x VC1/VC2).
DEFAULT_GPU_SUBSET: Tuple[str, ...] = ("G6", "G17", "G19")
DEFAULT_PIM_SUBSET: Tuple[str, ...] = ("P1", "P2", "P7")


def default_grid_tasks(
    gpu_subset: Optional[Sequence[str]] = None,
    pim_subset: Optional[Sequence[str]] = None,
    policy_names: Optional[Sequence[str]] = None,
    vc_configs: Sequence[int] = (1, 2),
) -> List[GridTask]:
    """The default benchmark grid as store-addressable tasks."""
    policies = [PolicySpec(name) for name in (policy_names or PAPER_POLICY_ORDER)]
    return make_tasks(
        gpu_subset or DEFAULT_GPU_SUBSET,
        pim_subset or DEFAULT_PIM_SUBSET,
        policies,
        tuple(vc_configs),
    )


def run_sweep(
    scale: ExperimentScale,
    tasks: Sequence[GridTask],
    store_dir: Optional[str] = None,
    max_workers: int = 1,
    shard: Optional[Tuple[int, int]] = None,
    fresh: bool = False,
    collect_perf: bool = False,
    abort_after: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    retry=None,
    faults=None,
    watchdog: Optional[int] = None,
    status_interval: float = 1.0,
) -> GridReport:
    """Run a (resumable, shardable) sweep over ``tasks``.

    Every completed cell is written through the content-addressed store
    as it finishes, so an interrupted invocation resumes where it left
    off and shards merge via
    :func:`repro.experiments.parallel.collect_from_store`.  Failures are
    retried and, if persistent, quarantined per ``retry`` /
    ``cell_timeout`` (see :func:`~repro.experiments.parallel.run_grid_resumable`
    and ``docs/resilience.md``); the report's ``failed_outcomes`` lists
    what was given up on.  With ``store_dir`` set the run heartbeats a
    live ``status.json`` into the store root every ``status_interval``
    seconds (see ``docs/observability.md`` and ``repro status``).
    """
    return run_grid_resumable(
        scale,
        tasks,
        max_workers=max_workers,
        store_dir=store_dir,
        shard=shard,
        fresh=fresh,
        collect_perf=collect_perf,
        abort_after=abort_after,
        cell_timeout=cell_timeout,
        retry=retry,
        faults=faults,
        watchdog=watchdog,
        status_interval=status_interval,
    )


def sweep_rows(outcomes: Sequence[CompetitiveOutcome]) -> List[Dict]:
    """Flatten outcomes into the sweep's canonical table rows.

    This is the merged table the byte-identity guarantees are stated
    over: resumed, sharded, and uninterrupted runs of the same grid all
    produce exactly these rows.
    """
    return [
        {
            "gpu": o.gpu_id,
            "pim": o.pim_id,
            "policy": o.policy,
            "vcs": o.num_vcs,
            "gpu_speedup": o.gpu_speedup,
            "pim_speedup": o.pim_speedup,
            "fairness": o.fairness,
            "throughput": o.throughput,
            "switches": o.mode_switches,
            "cycles": o.cycles,
        }
        for o in outcomes
    ]


def _run_point(
    runner: Runner,
    spec: PolicySpec,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int,
    max_workers: int,
    store_dir: Optional[str] = None,
) -> List[CompetitiveOutcome]:
    """Run one sweep point's competitive grid (gpu x pim) for ``spec``."""
    tasks: List[GridTask] = make_tasks(gpu_subset, pim_subset, [spec], (num_vcs,))
    if max_workers > 1 or store_dir is not None:
        return run_grid_parallel(
            runner.scale,
            tasks,
            max_workers=max_workers,
            cache_path=runner.cache_path,
            store_dir=store_dir,
        )
    return [
        runner.competitive(task.gpu_id, task.pim_id, task.policy, num_vcs=task.num_vcs)
        for task in tasks
    ]


def sweep_policy_parameter(
    runner: Runner,
    policy_name: str,
    parameter: str,
    values: Sequence,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 2,
    base_params: Optional[Dict] = None,
    max_workers: int = 1,
    store_dir: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Sweep one constructor parameter of a policy over a competitive grid.

    Returns one row per value with mean fairness and throughput.
    """
    rows: List[Dict[str, float]] = []
    for value in values:
        params = dict(base_params or {})
        params[parameter] = value
        spec = PolicySpec(policy_name, **params)
        runs = _run_point(
            runner, spec, gpu_subset, pim_subset, num_vcs, max_workers, store_dir
        )
        rows.append(
            {
                "value": value,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows


def sweep_f3fs_caps(
    runner: Runner,
    cap_pairs: Sequence[tuple],
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 1,
    max_workers: int = 1,
    store_dir: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Sweep (MEM CAP, PIM CAP) pairs for F3FS (Section VII-B tuning)."""
    rows: List[Dict[str, float]] = []
    for mem_cap, pim_cap in cap_pairs:
        spec = PolicySpec("F3FS", mem_cap=mem_cap, pim_cap=pim_cap)
        runs = _run_point(
            runner, spec, gpu_subset, pim_subset, num_vcs, max_workers, store_dir
        )
        rows.append(
            {
                "mem_cap": mem_cap,
                "pim_cap": pim_cap,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows
