"""Parameter sweeps (sensitivity studies).

The paper reports several sensitivity studies: the FR-FCFS-Cap CAP, the
BLISS blacklist threshold (Section VI-A), the F3FS CAP pair (Section
VII-B), and the interconnect queue size (Figure 14b).  These helpers run
small competitive grids across a parameter range and report the mean
fairness/throughput for each point.

Each sweep point is a competitive grid, expressed as
:class:`~repro.experiments.parallel.GridTask` items and executed through
:func:`~repro.experiments.parallel.run_grid_parallel`: with
``max_workers > 1`` the points fan out over worker processes that share
standalone baselines through the runner's disk cache (``cache_path`` /
``REPRO_CACHE``); with the default ``max_workers=1`` the tasks run
serially against the caller's runner, reusing its warm in-memory caches.
Either path computes identical outcomes — the tasks are deterministic
and independent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policies import PolicySpec
from repro.experiments.parallel import GridTask, make_tasks, run_grid_parallel
from repro.experiments.runner import CompetitiveOutcome, Runner
from repro.metrics.stats import arithmetic_mean


def _run_point(
    runner: Runner,
    spec: PolicySpec,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int,
    max_workers: int,
) -> List[CompetitiveOutcome]:
    """Run one sweep point's competitive grid (gpu x pim) for ``spec``."""
    tasks: List[GridTask] = make_tasks(gpu_subset, pim_subset, [spec], (num_vcs,))
    if max_workers > 1:
        return run_grid_parallel(
            runner.scale, tasks, max_workers=max_workers, cache_path=runner.cache_path
        )
    return [
        runner.competitive(task.gpu_id, task.pim_id, task.policy, num_vcs=task.num_vcs)
        for task in tasks
    ]


def sweep_policy_parameter(
    runner: Runner,
    policy_name: str,
    parameter: str,
    values: Sequence,
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 2,
    base_params: Optional[Dict] = None,
    max_workers: int = 1,
) -> List[Dict[str, float]]:
    """Sweep one constructor parameter of a policy over a competitive grid.

    Returns one row per value with mean fairness and throughput.
    """
    rows: List[Dict[str, float]] = []
    for value in values:
        params = dict(base_params or {})
        params[parameter] = value
        spec = PolicySpec(policy_name, **params)
        runs = _run_point(runner, spec, gpu_subset, pim_subset, num_vcs, max_workers)
        rows.append(
            {
                "value": value,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows


def sweep_f3fs_caps(
    runner: Runner,
    cap_pairs: Sequence[tuple],
    gpu_subset: Sequence[str],
    pim_subset: Sequence[str],
    num_vcs: int = 1,
    max_workers: int = 1,
) -> List[Dict[str, float]]:
    """Sweep (MEM CAP, PIM CAP) pairs for F3FS (Section VII-B tuning)."""
    rows: List[Dict[str, float]] = []
    for mem_cap, pim_cap in cap_pairs:
        spec = PolicySpec("F3FS", mem_cap=mem_cap, pim_cap=pim_cap)
        runs = _run_point(runner, spec, gpu_subset, pim_subset, num_vcs, max_workers)
        rows.append(
            {
                "mem_cap": mem_cap,
                "pim_cap": pim_cap,
                "fairness": arithmetic_mean([r.fairness for r in runs]),
                "throughput": arithmetic_mean([r.throughput for r in runs]),
            }
        )
    return rows
