"""Experiment drivers (Section III methodology).

:class:`Runner` executes the paper's three run types on a scaled system:

* **standalone** — one kernel alone (baselines for every speedup);
* **competitive** — a GPU kernel and a PIM kernel from different
  applications, each looping until both completed once (Section III-B);
* **collaborative** — the LLM scenario: QKV GEMM on the GPU SMs
  overlapped with MHA on PIM, run to completion once.

SM allocations mirror the paper proportionally: the full machine for GPU
standalone runs (80 SMs → ``gpu_sms_full``), a small allocation for the
PIM kernel and the GPU-8 characterization (8 SMs → ``pim_sms``), and the
remainder for the GPU kernel under co-execution (72 SMs → ``gpu_sms_corun``).

Standalone baselines are cached (optionally on disk) because every figure
reuses them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.gpu.kernel import KernelSpec
from repro.metrics.fairness import (
    collaborative_speedup,
    fairness_index,
    ideal_collaborative_speedup,
    system_throughput,
)
from repro.sim.results import SimResult
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel, llm_kernels

#: Policy used for standalone baselines (the paper's characterization runs
#: use FR-FCFS; baselines must not depend on the policy under test).
BASELINE_POLICY = PolicySpec("FR-FCFS")


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-system knobs (see DESIGN.md section 5)."""

    num_channels: int = 8
    gpu_sms_full: int = 10  # "80 SMs" analog
    gpu_sms_corun: int = 8  # "72 SMs" analog
    pim_sms: int = 2  # "8 SMs" analog (also the GPU-8 allocation)
    noc_queue_size: int = 64  # "512 entries" analog
    workload_scale: float = 0.25
    seed: int = 1
    max_cycles: int = 3_000_000
    #: Starvation cutoff: a contended kernel still unfinished after this
    #: many times its standalone duration is scored by elapsed time (its
    #: speedup is then <= 1/starvation_factor, i.e. effectively starved —
    #: the paper reports these as fairness index 0).
    starvation_factor: int = 30
    #: Model DRAM refresh (fidelity extension; off in the paper sweeps).
    refresh_enabled: bool = False

    def __post_init__(self) -> None:
        # Fail fast with the offending field named: a bad cell should be
        # quarantined by the sweep supervisor on first sight (ValueError
        # is non-retryable), not retried or half-simulated.
        for name in (
            "num_channels",
            "gpu_sms_full",
            "gpu_sms_corun",
            "pim_sms",
            "noc_queue_size",
            "max_cycles",
            "starvation_factor",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"ExperimentScale.{name} must be a positive integer (got {value!r})"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ValueError(
                f"ExperimentScale.seed must be a non-negative integer (got {self.seed!r})"
            )
        scale = self.workload_scale
        if isinstance(scale, bool) or not isinstance(scale, (int, float)) or not scale > 0:
            raise ValueError(
                f"ExperimentScale.workload_scale must be > 0 (got {scale!r})"
            )

    def config(self, num_vcs: int = 1, noc_queue_size: Optional[int] = None) -> SystemConfig:
        base = SystemConfig.scaled(
            num_channels=self.num_channels,
            num_sms=self.gpu_sms_full,
            noc_queue_size=noc_queue_size or self.noc_queue_size,
        )
        return base.replace(
            num_virtual_channels=num_vcs, refresh_enabled=self.refresh_enabled
        )


@dataclass
class CompetitiveOutcome:
    """Metrics of one GPU/PIM co-execution run."""

    gpu_id: str
    pim_id: str
    policy: str
    num_vcs: int
    gpu_speedup: float
    pim_speedup: float
    mode_switches: int
    conflicts_per_switch: float
    drain_latency_per_switch: float
    mem_arrival_rate: float  # MEM requests/cycle at the controllers
    cycles: int

    @property
    def fairness(self) -> float:
        return fairness_index(self.gpu_speedup, self.pim_speedup)

    @property
    def throughput(self) -> float:
        return system_throughput((self.gpu_speedup, self.pim_speedup))


@dataclass
class CollaborativeOutcome:
    """Metrics of one LLM collaborative run (Figure 11)."""

    policy: str
    num_vcs: int
    speedup: float
    ideal_speedup: float
    cycles: int
    gpu_standalone: int
    pim_standalone: int


class Runner:
    """Executes and caches the paper's experiment types."""

    def __init__(
        self,
        scale: ExperimentScale = ExperimentScale(),
        cache_path: Optional[str] = None,
        perf_counters: bool = False,
        store=None,
        watchdog_window: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        self.scale = scale
        #: Engine backend for every system this runner builds ("object" |
        #: "soa"); None defers to REPRO_ENGINE / the object default at
        #: build time.  Validated eagerly so a typo fails at construction
        #: with the offending value and the valid choices.
        from repro.engine_soa import resolve_backend

        self.backend = (
            resolve_backend(backend, source="Runner backend")
            if backend is not None
            else None
        )
        #: With a window set, every system this runner builds gets a
        #: no-progress watchdog: a livelocked cell raises a structured
        #: SimulationStalled (quarantined by the sweep supervisor) instead
        #: of burning its whole cycle budget.  Observe-only — results are
        #: bit-identical with or without it, so it stays out of the
        #: result-store fingerprint.
        self.watchdog_window = watchdog_window
        #: Shared EngineCounters across every system this runner builds
        #: (engine wall-clock per stage, aggregated over all runs).
        self.perf = None
        if perf_counters:
            from repro.perf.counters import EngineCounters

            self.perf = EngineCounters()
        #: Optional content-addressed result store (repro.store): every
        #: completed standalone SimResult and competitive outcome is
        #: written through it, and looked up before simulating.
        self.store = store
        if self.store is not None and self.store.counters is None:
            self.store.counters = self.perf
        #: How the last competitive() call was satisfied: "memo" (this
        #: runner's in-memory cache), "hit" (result store), "miss" (fresh
        #: simulation), or None when no store is attached.
        self.store_last: Optional[str] = None
        self._standalone_cache: Dict[str, SimResult] = {}
        self._competitive_cache: Dict[Tuple[str, str, str, int], CompetitiveOutcome] = {}
        self._duration_cache: Dict[str, int] = {}
        self.cache_path = cache_path or os.environ.get("REPRO_CACHE")
        if self.cache_path and os.path.exists(self.cache_path):
            with open(self.cache_path) as fh:
                self._duration_cache = {k: int(v) for k, v in json.load(fh).items()}

    # -- cache helpers ------------------------------------------------------

    def _save_cache(self) -> None:
        if self.cache_path:
            with open(self.cache_path, "w") as fh:
                json.dump(self._duration_cache, fh)

    def _build_system(self, config: SystemConfig, policy: PolicySpec) -> GPUSystem:
        from repro.engine_soa import create_system

        system = create_system(
            config,
            policy,
            backend=self.backend,
            seed=self.scale.seed,
            scale=self.scale.workload_scale,
        )
        if self.perf is not None:
            system.perf = self.perf
        if self.watchdog_window is not None:
            system.enable_watchdog(self.watchdog_window)
        return system

    def _standalone_key(self, label: str, sms: int, num_vcs: int) -> str:
        s = self.scale
        refresh = "|refresh" if s.refresh_enabled else ""
        return (
            f"{label}|sms={sms}|vc={num_vcs}|ch={s.num_channels}"
            f"|scale={s.workload_scale}|seed={s.seed}{refresh}"
        )

    # -- standalone runs ---------------------------------------------------

    def _standalone_store_key(self, label: str, spec: KernelSpec, sms: int, num_vcs: int) -> str:
        from repro.store import fingerprint, standalone_payload

        return fingerprint(
            standalone_payload(
                self.scale, self.scale.config(num_vcs), label, spec, sms, num_vcs
            )
        )

    def _run_standalone(self, label: str, spec: KernelSpec, sms: int, num_vcs: int) -> SimResult:
        key = self._standalone_key(label, sms, num_vcs)
        cached = self._standalone_cache.get(key)
        if cached is not None:
            return cached
        store_key = None
        if self.store is not None:
            from repro.sim.export import result_from_dict

            store_key = self._standalone_store_key(label, spec, sms, num_vcs)
            payload = self.store.get(store_key, kind="standalone")
            if payload is not None:
                result = result_from_dict(payload)
                self._standalone_cache[key] = result
                self._duration_cache[key] = result.kernels[0].first_duration
                return result
        system = self._build_system(self.scale.config(num_vcs), BASELINE_POLICY)
        system.add_kernel(spec, num_sms=sms)
        result = system.run(max_cycles=self.scale.max_cycles)
        if not result.all_completed:
            raise RuntimeError(f"standalone run {label} did not complete in budget")
        self._standalone_cache[key] = result
        self._duration_cache[key] = result.kernels[0].first_duration
        self._save_cache()
        if self.store is not None:
            from repro.sim.export import result_to_dict

            self.store.put(
                store_key,
                result_to_dict(result),
                meta={"kind": "standalone", "label": key},
            )
        return result

    def standalone_duration(self, label: str, spec: KernelSpec, sms: int, num_vcs: int) -> int:
        key = self._standalone_key(label, sms, num_vcs)
        if key in self._duration_cache:
            return self._duration_cache[key]
        return self._run_standalone(label, spec, sms, num_vcs).kernels[0].first_duration

    def gpu_standalone(self, gid: str, sms: Optional[int] = None, num_vcs: int = 1) -> SimResult:
        sms = sms if sms is not None else self.scale.gpu_sms_full
        return self._run_standalone(gid, get_gpu_kernel(gid), sms, num_vcs)

    def pim_standalone(self, pid: str, num_vcs: int = 1) -> SimResult:
        return self._run_standalone(pid, get_pim_kernel(pid), self.scale.pim_sms, num_vcs)

    # -- competitive co-execution ---------------------------------------------

    def competitive(
        self,
        gid: str,
        pid: str,
        policy: PolicySpec,
        num_vcs: int = 1,
    ) -> CompetitiveOutcome:
        """One GPU/PIM pair under a policy (Section III-B competitive)."""
        cache_key = (gid, pid, repr(policy), num_vcs)
        cached = self._competitive_cache.get(cache_key)
        if cached is not None:
            self.store_last = "memo" if self.store is not None else None
            return cached
        store_key = None
        if self.store is not None:
            store_key = self.competitive_store_key(gid, pid, policy, num_vcs)
            fields = self.store.get(store_key, kind="competitive")
            if fields is not None:
                outcome = CompetitiveOutcome(**fields)
                self._competitive_cache[cache_key] = outcome
                self.store_last = "hit"
                return outcome
        s = self.scale
        gpu_alone = self.standalone_duration(gid, get_gpu_kernel(gid), s.gpu_sms_full, num_vcs)
        pim_alone = self.standalone_duration(pid, get_pim_kernel(pid), s.pim_sms, num_vcs)

        system = self._build_system(s.config(num_vcs), policy)
        gpu_run = system.add_kernel(get_gpu_kernel(gid), num_sms=s.gpu_sms_corun, loop=True)
        pim_run = system.add_kernel(get_pim_kernel(pid), num_sms=s.pim_sms, loop=True)
        budget = min(s.max_cycles, s.starvation_factor * max(gpu_alone, pim_alone))
        result = system.run(max_cycles=budget)

        gpu_first = result.kernels[gpu_run.kernel_id].first_duration
        pim_first = result.kernels[pim_run.kernel_id].first_duration
        gpu_speedup = gpu_alone / (gpu_first if gpu_first else result.cycles)
        pim_speedup = pim_alone / (pim_first if pim_first else result.cycles)
        mem_arrivals = result.kernels[gpu_run.kernel_id].mc_arrivals
        outcome = CompetitiveOutcome(
            gpu_id=gid,
            pim_id=pid,
            policy=policy.label(),
            num_vcs=num_vcs,
            gpu_speedup=gpu_speedup,
            pim_speedup=pim_speedup,
            mode_switches=result.mode_switches,
            conflicts_per_switch=result.additional_conflicts_per_switch,
            drain_latency_per_switch=result.mem_drain_latency_per_switch,
            mem_arrival_rate=mem_arrivals / result.cycles if result.cycles else 0.0,
            cycles=result.cycles,
        )
        self._competitive_cache[cache_key] = outcome
        if self.store is not None:
            from dataclasses import asdict

            self.store.put(
                store_key,
                asdict(outcome),
                meta={
                    "kind": "competitive",
                    "label": f"{gid}|{pid}|{policy.label()}|vc{num_vcs}",
                },
            )
            self.store_last = "miss"
        return outcome

    def competitive_store_key(
        self, gid: str, pid: str, policy: PolicySpec, num_vcs: int
    ) -> str:
        """Content address of one competitive grid cell (see repro.store)."""
        from repro.store import competitive_payload, fingerprint

        return fingerprint(
            competitive_payload(
                self.scale,
                self.scale.config(num_vcs),
                gid,
                pid,
                policy.name,
                policy.params,
                num_vcs,
                gpu_spec=get_gpu_kernel(gid),
                pim_spec=get_pim_kernel(pid),
            )
        )

    def gpu_pair(self, gid_big: str, gid_small: str, policy: PolicySpec = BASELINE_POLICY) -> float:
        """Speedup of ``gid_big`` on the co-run SMs while ``gid_small`` runs
        on the small allocation (Figure 5's GPU-vs-GPU interference bars).

        Returns the big kernel's speedup relative to its full-machine
        standalone run.
        """
        s = self.scale
        big_alone = self.standalone_duration(gid_big, get_gpu_kernel(gid_big), s.gpu_sms_full, 1)
        system = self._build_system(s.config(1), policy)
        big_run = system.add_kernel(get_gpu_kernel(gid_big), num_sms=s.gpu_sms_corun, loop=True)
        system.add_kernel(get_gpu_kernel(gid_small), num_sms=s.pim_sms, loop=True)
        budget = min(s.max_cycles, s.starvation_factor * big_alone)
        result = system.run(max_cycles=budget)
        first = result.kernels[big_run.kernel_id].first_duration
        return big_alone / (first if first else result.cycles)

    # -- collaborative co-execution -------------------------------------------

    def collaborative(
        self,
        policy: PolicySpec,
        num_vcs: int = 1,
    ) -> CollaborativeOutcome:
        """The GPT-3-like QKV + MHA overlap (Section III-B collaborative)."""
        s = self.scale
        qkv, mha = llm_kernels()
        gpu_alone = self.standalone_duration("llm-qkv", qkv, s.gpu_sms_full, num_vcs)
        pim_alone = self.standalone_duration("llm-mha", mha, s.pim_sms, num_vcs)

        system = self._build_system(s.config(num_vcs), policy)
        system.add_kernel(qkv, num_sms=s.gpu_sms_corun)
        system.add_kernel(mha, num_sms=s.pim_sms)
        budget = min(s.max_cycles, s.starvation_factor * (gpu_alone + pim_alone))
        result = system.run(max_cycles=budget)
        concurrent = result.cycles if result.all_completed else budget
        return CollaborativeOutcome(
            policy=policy.label(),
            num_vcs=num_vcs,
            speedup=collaborative_speedup(gpu_alone, pim_alone, concurrent),
            ideal_speedup=ideal_collaborative_speedup(gpu_alone, pim_alone),
            cycles=result.cycles,
            gpu_standalone=gpu_alone,
            pim_standalone=pim_alone,
        )
