"""Memory request model shared by every stage of the simulated memory path.

A :class:`Request` is created by an SM (or directly by a workload when used
trace-style), travels through the interconnect and L2, and is finally
serviced either by the DRAM banks (MEM requests) or by the PIM functional
units (PIM requests).  The request object carries timestamps for each hop so
that the metrics layer can compute queueing delays and arrival rates without
any extra bookkeeping in the pipeline stages.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.pim.isa import PIMOp


class RequestType(enum.Enum):
    """Kind of memory request.

    MEM_LOAD / MEM_STORE are regular load/store requests that may be
    filtered by the L2 cache.  PIM requests are cache-streaming stores that
    bypass all caches and trigger in-memory computation (Section III-A of
    the paper).
    """

    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    PIM = "pim"

    @property
    def is_pim(self) -> bool:
        return self is RequestType.PIM

    @property
    def is_mem(self) -> bool:
        return not self.is_pim


class Mode(enum.Enum):
    """Memory-controller servicing mode (Figure 1 arbiter)."""

    MEM = "mem"
    PIM = "pim"

    @property
    def other(self) -> "Mode":
        return Mode.PIM if self is Mode.MEM else Mode.MEM

    @classmethod
    def for_request(cls, request: "Request") -> "Mode":
        return cls.PIM if request.type.is_pim else cls.MEM


_request_ids = itertools.count()


def reset_request_ids() -> None:
    """Restart the global request-id counter (used by tests for determinism)."""
    global _request_ids
    _request_ids = itertools.count()


@dataclass(eq=False, slots=True)  # identity semantics: a request is a unique entity
class Request:
    """A single memory request flowing through the simulated system.

    Parameters
    ----------
    type:
        Load, store, or PIM.
    address:
        Full byte address.  Decoded into channel/bank/row/column lazily by
        the DRAM address mapper (fields below).
    source:
        Id of the issuing SM (or synthetic injector).
    kernel_id:
        Id of the kernel the request belongs to; used by application-aware
        policies (BLISS) and by the metrics layer.
    pim_op:
        The PIM operation carried by a PIM request; ``None`` for MEM
        requests.
    """

    type: RequestType
    address: int
    source: int = 0
    warp: int = 0
    kernel_id: int = 0
    pim_op: Optional[PIMOp] = None
    size: int = 32

    # Monotonic id; doubles as the "age" used by oldest-first arbitration.
    id: int = field(default_factory=lambda: next(_request_ids))

    # Decoded address fields (filled once by dram.address.AddressMapper;
    # the controller's per-bank index keys on bank/row without re-decoding).
    channel: int = -1
    bank: int = -1
    row: int = -1
    column: int = -1

    # Timestamps (cycles); -1 means "not reached yet".  cycle_l2_arrival is
    # only stamped when telemetry is enabled (repro.obs).
    cycle_created: int = -1
    cycle_noc_entry: int = -1
    cycle_l2_arrival: int = -1
    cycle_mc_arrival: int = -1
    cycle_issued: int = -1
    cycle_completed: int = -1

    # Telemetry (repro.obs): the controller's cumulative other-mode cycle
    # count at MC arrival, and the resolved mode-blocked share of the MC
    # wait at issue.  Only stamped when telemetry is enabled.
    mc_blocked_base: int = -1
    mc_blocked_cycles: int = 0

    # Set by the memory controller when the request enters its queues; this
    # is the per-controller arrival order used for oldest-first decisions.
    mc_seq: int = -1

    # Row-buffer outcome of the access ("hit"/"miss"/"conflict"), set by the
    # DRAM channel at issue time; None for PIM requests.
    access_kind: Optional[str] = None

    # L2 bookkeeping: set when this request is the primary miss carrying an
    # L2 fill; the line address is cached to avoid re-deriving it.
    is_l2_fill: bool = False
    l2_line: int = -1

    # True for L2 dirty-eviction writebacks (system traffic: attributed to
    # the evicting kernel for arrival stats, but not to kernel completion).
    is_writeback: bool = False

    # Cached classification of ``type`` (the type of a request never
    # changes, and the enum-property lookups showed up in scheduler
    # profiles).  Filled in __post_init__.
    is_pim: bool = field(init=False, default=False)
    is_load: bool = field(init=False, default=False)
    mode: Mode = field(init=False, default=None)  # type: ignore[assignment]

    # Membership flag for the controller's per-bank MEM index: requests are
    # tombstoned on removal and lazily dropped from the index deques (see
    # repro.core.memq).
    in_mem_queue: bool = field(init=False, default=False)

    # Cached ``pim_op.kind.accesses_dram`` (two attribute hops on the PIM
    # issue path); False for MEM requests.  Filled in __post_init__.
    pim_dram: bool = field(init=False, default=False)

    # Recycling slot (SoA replay cache): ``[live_count, phase]`` shared by
    # every request of one replayed phase.  The SoA engine returns finished
    # requests to the slot; when the count hits zero the next launch reuses
    # the phase's request objects instead of rebuilding them.  ``None``
    # outside the replay path (object engine, writebacks, user traces).
    _slot: Optional[list] = field(init=False, default=None, repr=False)

    # Handle into the SoA engine's pooled RequestArrays (see
    # repro.engine_soa.handles); -1 when not bound.  Replay-recycled
    # requests keep their handle across launches (pinned), everything
    # else holds one only while inside the NoC hop rings.
    _handle: int = field(init=False, default=-1, repr=False)

    def __post_init__(self) -> None:
        pim = self.type is RequestType.PIM
        if pim and self.pim_op is None:
            raise ValueError("PIM requests must carry a pim_op")
        if not pim and self.pim_op is not None:
            raise ValueError("MEM requests must not carry a pim_op")
        self.is_pim = pim
        self.is_load = self.type is RequestType.MEM_LOAD
        self.mode = Mode.PIM if pim else Mode.MEM
        if pim:
            self.pim_dram = self.pim_op.kind.accesses_dram

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting in the memory controller before issue."""
        if self.cycle_issued < 0 or self.cycle_mc_arrival < 0:
            raise ValueError("request has not been issued yet")
        return self.cycle_issued - self.cycle_mc_arrival

    @property
    def total_latency(self) -> int:
        """Cycles from creation to completion."""
        if self.cycle_completed < 0 or self.cycle_created < 0:
            raise ValueError("request has not completed yet")
        return self.cycle_completed - self.cycle_created

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.type.value
        loc = f"ch{self.channel}/b{self.bank}/r{self.row}" if self.channel >= 0 else hex(self.address)
        return f"<Request #{self.id} {kind} {loc} k{self.kernel_id}>"
