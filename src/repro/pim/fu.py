"""PIM functional unit: SIMD ALU plus local register file (Figure 2).

Each FU serves a pair of banks; the register file (16 entries in the
modelled architecture) is split evenly between the two banks (8 entries
each).  Register-file state persists across MEM/PIM mode switches, which is
what makes draining and resuming PIM kernels correct (Section II-A).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.pim.isa import PIMOp, PIMOpKind


class RegisterFile:
    """Per-bank slice of a PIM FU's register file."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("register file needs at least one entry")
        self.size = size
        self._regs: List[float] = [0.0] * size

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"register {index} out of range (size {self.size})")

    def read(self, index: int) -> float:
        self._check(index)
        return self._regs[index]

    def write(self, index: int, value: float) -> None:
        self._check(index)
        self._regs[index] = float(value)

    def reset(self) -> None:
        self._regs = [0.0] * self.size


class FunctionalUnit:
    """One bank-pair FU; executes PIM ops functionally on a bank's slice."""

    def __init__(self, index: int, banks: List[int], rf_entries_per_bank: int) -> None:
        if len(banks) < 1:
            raise ValueError("an FU must serve at least one bank")
        self.index = index
        self.banks = list(banks)
        self.rf = {bank: RegisterFile(rf_entries_per_bank) for bank in banks}

    def execute(
        self,
        bank: int,
        op: PIMOp,
        dram_value: Optional[float],
    ) -> Optional[float]:
        """Execute one op on one bank's RF slice.

        ``dram_value`` is the DRAM word read for DRAM-accessing ops (``None``
        for RF-only ops).  Returns the value to write back to DRAM for
        STORE, otherwise ``None``.
        """
        rf = self.rf[bank]
        kind = op.kind
        if kind is PIMOpKind.NOP:
            return None
        if kind is PIMOpKind.EXP:
            rf.write(op.dst, math.exp(min(rf.read(op.src), 700.0)))
            return None
        if dram_value is None and kind.accesses_dram:
            raise ValueError(f"{kind} needs a DRAM value")
        if kind is PIMOpKind.LOAD:
            rf.write(op.dst, dram_value)
        elif kind is PIMOpKind.STORE:
            return rf.read(op.src)
        elif kind is PIMOpKind.ADD:
            rf.write(op.dst, rf.read(op.src) + dram_value)
        elif kind is PIMOpKind.SUB:
            rf.write(op.dst, rf.read(op.src) - dram_value)
        elif kind is PIMOpKind.MUL:
            rf.write(op.dst, rf.read(op.src) * dram_value)
        elif kind is PIMOpKind.MAC:
            rf.write(op.dst, rf.read(op.dst) + rf.read(op.src) * dram_value)
        elif kind is PIMOpKind.MAX:
            rf.write(op.dst, max(rf.read(op.src), dram_value))
        else:  # pragma: no cover - exhaustiveness guard
            raise NotImplementedError(kind)
        return None

    def reset(self) -> None:
        for rf in self.rf.values():
            rf.reset()
