"""All-bank lock-step PIM execution within one channel.

In PIM mode a single PIM request executes on *all* banks simultaneously
(Section II-A): the same row index is activated in every bank and the op is
applied at the request's column in each bank.  Requests execute strictly in
FCFS order (correctness of the block structure); a row change between
consecutive ops costs a precharge + activate on every bank.

The executor shares the channel's :class:`~repro.dram.bank.Bank` objects so
that a PIM phase leaves the banks' row buffers pointing at PIM rows —
that is exactly the locality loss MEM requests observe after a mode switch
(Figure 9).  For speed, per-bank state is only touched on row switches;
per-op bookkeeping is O(1) at the executor level (PIM occupies all banks,
so one busy interval covers the whole channel).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.pim.fu import FunctionalUnit

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.dram.channel import Channel
    from repro.dram.storage import DataStore
    from repro.request import Request


@dataclass
class PIMStats:
    ops_executed: int = 0
    rf_only_ops: int = 0  # register-file-only ops (no DRAM column access)
    row_switches: int = 0
    busy_cycles: int = 0

    @property
    def dram_ops(self) -> int:
        return self.ops_executed - self.rf_only_ops

    @property
    def row_hit_rate(self) -> float:
        """Fraction of DRAM-touching ops that reused the open row."""
        if not self.ops_executed:
            return 0.0
        return 1.0 - self.row_switches / self.ops_executed


class PIMExecutor:
    """Lock-step PIM engine for one channel."""

    def __init__(
        self,
        channel: "Channel",
        fus_per_channel: int,
        rf_entries_per_bank: int,
        store: Optional["DataStore"] = None,
        functional: bool = False,
    ) -> None:
        num_banks = channel.num_banks
        if num_banks % fus_per_channel:
            raise ValueError("banks must divide evenly among FUs")
        self.channel = channel
        self.store = store
        self.functional = functional and store is not None
        banks_per_fu = num_banks // fus_per_channel
        self.fus: List[FunctionalUnit] = []
        for i in range(fus_per_channel):
            banks = list(range(i * banks_per_fu, (i + 1) * banks_per_fu))
            self.fus.append(FunctionalUnit(i, banks, rf_entries_per_bank))
        self._fu_of_bank = {}
        for fu in self.fus:
            for bank in fu.banks:
                self._fu_of_bank[bank] = fu

        self.open_row: Optional[int] = None  # row open for PIM on all banks
        # True only when every bank's row buffer is known to point at
        # ``open_row`` (set after a lock-step row switch, cleared when a MEM
        # issue moves a bank elsewhere).  Lets ``would_switch_row`` skip the
        # per-bank scan on the hot PIM-mode decision path; False merely
        # means "scan to find out", so the flag is always safe.
        self._rows_uniform = True
        self.busy_until = 0
        self.next_col = 0
        self.stats = PIMStats()
        # Ops execute lock-step FCFS, so completion cycles are appended in
        # non-decreasing order: completion pops are always a prefix.
        self._in_flight: Deque[Tuple[int, "Request"]] = deque()
        # Deferred issue-time effects for batch-issued ops (the SoA engine's
        # ``_fused_pim`` drains a whole queue snapshot at once, but each
        # op's stats and functional execution belong to its logical issue
        # tick): one ``(tick, start, end, rf_only, switched, request)``
        # entry per batch op, applied as the op completes (or, for ops cut
        # by the simulation horizon, by ``flush_issue_stats``).  Empty for
        # the object engine, whose ``issue`` commits immediately.
        self._pending: Deque[Tuple[int, int, int, bool, bool, "Request"]] = deque()
        # Merged channel-wide busy intervals (each counts all banks busy).
        self.busy_intervals: List[Tuple[int, int]] = []

    # -- queries -----------------------------------------------------------

    def can_issue(self, cycle: int) -> bool:
        """PIM issues one op at a time, lock-step across banks."""
        return cycle >= self.busy_until

    def would_switch_row(self, request: "Request") -> bool:
        """Whether this request needs a row change (block boundary)."""
        if self.open_row != request.row:
            return True
        if self._rows_uniform:
            return False
        # A MEM phase may have moved some bank off the PIM row.
        row = request.row
        for bank in self.channel.banks:
            if bank.state.open_row != row:
                return True
        self._rows_uniform = True  # scan proved the banks are aligned again
        return False

    def note_mem_issue(self, request: "Request") -> None:
        """Record that a MEM issue may have moved a bank off the PIM row.

        Called by the controller on every MEM issue; a MEM access leaves
        its bank's row buffer on its own row, so uniformity only survives
        accesses to the PIM row itself.
        """
        if self._rows_uniform and request.row != self.open_row:
            self._rows_uniform = False

    def invalidate_row_cache(self) -> None:
        """Force the next ``would_switch_row`` to re-scan the banks.

        For callers that mutate ``bank.state.open_row`` directly (tests,
        hand-built scenarios) instead of going through the channel/executor.
        """
        self._rows_uniform = False

    def in_flight(self) -> int:
        return len(self._in_flight)

    def next_completion_cycle(self) -> Optional[int]:
        """Completion cycle of the earliest in-flight PIM op.

        Ops execute lock-step FCFS, so ``_in_flight`` is ordered by
        completion and the head is the next event.
        """
        return self._in_flight[0][0] if self._in_flight else None

    def drain_complete_cycle(self) -> int:
        return self.busy_until

    # -- execution -----------------------------------------------------------

    def issue(self, request: "Request", cycle: int) -> int:
        """Execute one PIM request on all banks; returns completion cycle."""
        if cycle < self.busy_until:
            raise RuntimeError(f"PIM executor busy until {self.busy_until}")
        op = request.pim_op
        timings = self.channel.timings

        if op.kind.accesses_dram:
            if self.would_switch_row(request):
                start = self._switch_row(request.row, cycle, timings)
            else:
                start = cycle if cycle > self.next_col else self.next_col
            duration = timings.tCCDl
        else:
            start = cycle if cycle > self.next_col else self.next_col
            duration = 1
            self.stats.rf_only_ops += 1

        end = start + duration
        self.next_col = end
        self.busy_until = end
        self.stats.ops_executed += 1
        self.stats.busy_cycles += end - cycle
        self._note_busy(start, end)

        if self.functional:
            self._execute_functional(request)

        request.cycle_issued = cycle
        self._in_flight.append((end, request))
        return end

    def _switch_row(self, row: int, cycle: int, timings) -> int:
        """Precharge + activate all banks onto the new PIM row."""
        self.stats.row_switches += 1
        return self._switch_row_rails(row, cycle, timings)

    def _switch_row_rails(self, row: int, cycle: int, timings) -> int:
        """The rail math of ``_switch_row`` without the stat (the SoA batch
        defers stats to the op's logical issue tick; see ``_pending``)."""
        banks = self.channel.banks
        open_banks = [bank for bank in banks if bank.state.open_row is not None]
        if open_banks:
            pre = max(cycle, max(bank.state.pre_ready for bank in open_banks))
            act = pre + timings.tRP
        else:
            act = max(cycle, max(bank.state.act_ready for bank in banks))
        start = act + timings.tRCD
        self.open_row = row
        self._rows_uniform = True
        for bank in banks:
            state = bank.state
            state.open_row = row
            pre_ready = act + timings.tRAS
            if pre_ready > state.pre_ready:
                state.pre_ready = pre_ready
            act_ready = state.pre_ready + timings.tRP
            if act_ready > state.act_ready:
                state.act_ready = act_ready
        return start

    def _note_busy(self, start: int, end: int) -> None:
        intervals = self.busy_intervals
        if intervals and start <= intervals[-1][1]:
            if end > intervals[-1][1]:
                intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))

    def sync_banks(self) -> None:
        """Propagate PIM occupancy into the banks' rails.

        Called when the controller switches back to MEM mode: the first
        MEM commands must not be scheduled before the PIM phase's last op
        finished.  (During PIM mode no MEM issues happen, so per-op bank
        updates would be wasted work.)
        """
        end = self.busy_until
        for bank in self.channel.banks:
            state = bank.state
            if end > state.busy_until:
                state.busy_until = end
            if end > state.accept_at:
                state.accept_at = end
            if end > state.next_col:
                state.next_col = end

    def _execute_functional(self, request: "Request") -> None:
        """Apply the op's semantics on every bank at the request's column."""
        op = request.pim_op
        channel_index = self.channel.index
        for bank_index in range(self.channel.num_banks):
            fu = self._fu_of_bank[bank_index]
            dram_value = None
            if op.kind.accesses_dram:
                dram_value = self.store.read(channel_index, bank_index, request.row, request.column)
            result = fu.execute(bank_index, op, dram_value)
            if result is not None:
                self.store.write(channel_index, bank_index, request.row, request.column, result)

    def _apply_issue(self, entry) -> None:
        """Commit one deferred batch op's issue-time effects (``_pending``)."""
        tick, start, end, rf_only, switched, request = entry
        stats = self.stats
        stats.ops_executed += 1
        if rf_only:
            stats.rf_only_ops += 1
        if switched:
            stats.row_switches += 1
        stats.busy_cycles += end - tick
        self._note_busy(start, end)
        if self.functional:
            self._execute_functional(request)

    def flush_issue_stats(self, final_cycle: int) -> None:
        """Commit deferred effects for ops whose issue tick has been reached.

        Called at result collection: in-flight batch ops issued at or
        before ``final_cycle`` are observable (the object engine issued
        them inside the simulated window); later ones are not.
        """
        pending = self._pending
        while pending and pending[0][0] <= final_cycle:
            self._apply_issue(pending.popleft())

    def pop_completed(self, cycle: int) -> List["Request"]:
        flight = self._in_flight
        if not flight or flight[0][0] > cycle:
            return []
        done: List["Request"] = []
        pending = self._pending
        while flight and flight[0][0] <= cycle:
            end, req = flight.popleft()
            req.cycle_completed = end
            # Batch ops pair 1:1 with pending entries (both FCFS); after a
            # horizon flush the surplus flight entries carry none.
            if len(pending) > len(flight):
                self._apply_issue(pending.popleft())
            done.append(req)
        return done

    def reset(self) -> None:
        for fu in self.fus:
            fu.reset()
        self.open_row = None
        self._rows_uniform = True
        self.busy_until = 0
        self.next_col = 0
        self.stats = PIMStats()
        self._in_flight.clear()
        self._pending.clear()
        self.busy_intervals.clear()
