"""Imperative PIM program builder.

The workload generators emit request streams; this module is the
*programming* surface a PIM library would actually expose (in the spirit
of the PyPIM framework the paper's related work cites): users write
kernels imperatively against named vectors, the builder lays the vectors
out in DRAM, allocates FU registers, enforces the block structure of
Figure 3, and compiles to a :class:`~repro.gpu.kernel.KernelSpec` that
runs on the simulator — functionally, when the system is built with
``functional=True``.

Example (vector add, the paper's Figure 3)::

    program = PIMProgram("vadd")
    a = program.vector("a")
    b = program.vector("b")
    c = program.vector("c")
    r = program.load(a)          # RF <- a[i]
    r = program.add(r, b)        # RF <- RF + b[i]
    program.store(r, c)          # c[i] <- RF
    spec = program.build(elements=512)

The element loop is implicit: the recorded op sequence executes for every
element, in RF-sized blocks per op (exactly the block structure the
scheduler exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.gpu.kernel import KernelSpec, LaunchContext, Phase
from repro.pim.isa import PIMOp, PIMOpKind
from repro.workloads.synthetic import make_pim_request


@dataclass(frozen=True)
class VectorHandle:
    """A named operand vector living in PIM-reachable DRAM."""

    name: str
    role: int  # operand index -> row/column placement


@dataclass(frozen=True)
class RegisterHandle:
    """A value resident in the FU register file."""

    index: int


@dataclass(frozen=True)
class _Step:
    kind: PIMOpKind
    dst: int  # register index
    src: int  # register index
    vector_role: Optional[int]  # DRAM operand, None for RF-only ops


class PIMProgramError(ValueError):
    """Raised for ill-formed PIM programs."""


class PIMProgram:
    """Builder for block-structured PIM kernels."""

    def __init__(self, name: str = "pim-program") -> None:
        self.name = name
        self._vectors: Dict[str, VectorHandle] = {}
        self._steps: List[_Step] = []
        self._next_register = 0
        self._built = False

    # -- operand declaration ----------------------------------------------

    def vector(self, name: str) -> VectorHandle:
        """Declare (or fetch) a named operand vector."""
        if name in self._vectors:
            return self._vectors[name]
        handle = VectorHandle(name=name, role=len(self._vectors))
        self._vectors[name] = handle
        return handle

    def _fresh_register(self) -> RegisterHandle:
        handle = RegisterHandle(self._next_register)
        self._next_register += 1
        return handle

    def _check_register(self, register: RegisterHandle) -> None:
        if not 0 <= register.index < self._next_register:
            raise PIMProgramError(f"unknown register {register!r}")

    def _check_vector(self, vector: VectorHandle) -> None:
        if self._vectors.get(vector.name) is not vector:
            raise PIMProgramError(f"vector {vector.name!r} not declared here")

    # -- operations -----------------------------------------------------------

    def load(self, vector: VectorHandle) -> RegisterHandle:
        """RF <- vector[i]"""
        self._check_vector(vector)
        dst = self._fresh_register()
        self._steps.append(_Step(PIMOpKind.LOAD, dst.index, dst.index, vector.role))
        return dst

    def store(self, register: RegisterHandle, vector: VectorHandle) -> None:
        """vector[i] <- RF"""
        self._check_register(register)
        self._check_vector(vector)
        self._steps.append(_Step(PIMOpKind.STORE, register.index, register.index, vector.role))

    def _binary(self, kind: PIMOpKind, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        self._check_register(register)
        self._check_vector(vector)
        self._steps.append(_Step(kind, register.index, register.index, vector.role))
        return register

    def add(self, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        """RF <- RF + vector[i]"""
        return self._binary(PIMOpKind.ADD, register, vector)

    def sub(self, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        return self._binary(PIMOpKind.SUB, register, vector)

    def mul(self, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        return self._binary(PIMOpKind.MUL, register, vector)

    def mac(self, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        """RF <- RF + RF * vector[i] (multiply-accumulate)"""
        return self._binary(PIMOpKind.MAC, register, vector)

    def maximum(self, register: RegisterHandle, vector: VectorHandle) -> RegisterHandle:
        return self._binary(PIMOpKind.MAX, register, vector)

    def exp(self, register: RegisterHandle) -> RegisterHandle:
        """RF <- exp(RF) — register-only (softmax building block)."""
        self._check_register(register)
        self._steps.append(_Step(PIMOpKind.EXP, register.index, register.index, None))
        return register

    # -- compilation -----------------------------------------------------------

    def validate(self, rf_entries_per_bank: int = 8) -> None:
        """Check the program is well-formed for the target RF size."""
        if not self._steps:
            raise PIMProgramError("program has no operations")
        if self._next_register > rf_entries_per_bank:
            raise PIMProgramError(
                f"program uses {self._next_register} registers; the FU has "
                f"{rf_entries_per_bank} per bank"
            )
        stores = [s for s in self._steps if s.kind is PIMOpKind.STORE]
        if not stores:
            raise PIMProgramError("program never stores a result")
        # Per Figure 3, every DRAM-touching op addresses a declared vector.
        for step in self._steps:
            if step.kind.accesses_dram and step.vector_role is None:
                raise PIMProgramError(f"{step.kind} without a vector operand")

    def build(self, elements: int, name: Optional[str] = None) -> "CompiledPIMKernel":
        """Compile to a kernel spec executing the program per element."""
        if elements < 1:
            raise PIMProgramError("elements must be positive")
        self.validate()
        return CompiledPIMKernel(
            name=name or self.name,
            steps=tuple(self._steps),
            num_operands=len(self._vectors),
            elements_per_warp=elements,
            registers_used=self._next_register,
            vectors={v.name: v for v in self._vectors.values()},
        )


class CompiledPIMKernel(KernelSpec):
    """A built PIM program, runnable as a kernel spec."""

    kind = "pim"

    def __init__(
        self,
        name: str,
        steps: Tuple[_Step, ...],
        num_operands: int,
        elements_per_warp: int,
        registers_used: int,
        vectors: Dict[str, VectorHandle],
    ) -> None:
        self.name = name
        self.steps = steps
        self.num_operands = max(1, num_operands)
        self.elements_per_warp = elements_per_warp
        self.registers_used = registers_used
        self.vectors = vectors

    def warps_per_sm(self, ctx: LaunchContext) -> int:
        return max(1, min(ctx.warps_per_sm, ctx.num_channels // max(1, ctx.num_sms)))

    def issue_width(self, ctx: LaunchContext) -> int:
        return 2

    def operand_location(self, ctx: LaunchContext, role: int, element: int) -> Tuple[int, int]:
        """Same-row layout (see PIMStreamKernel): operands share each row."""
        columns = ctx.mapper.num_columns
        cols_per_operand = max(1, columns // self.num_operands)
        row = element // cols_per_operand
        column = role * cols_per_operand + element % cols_per_operand
        return row, min(column, columns - 1)

    def vector_location(self, ctx: LaunchContext, vector: VectorHandle, element: int) -> Tuple[int, int]:
        return self.operand_location(ctx, vector.role, element)

    def warp_program(self, ctx: LaunchContext, sm_slot: int, warp: int) -> Iterator[Phase]:
        if self.registers_used > ctx.rf_entries_per_bank:
            raise PIMProgramError(
                f"{self.name} needs {self.registers_used} registers; the FU "
                f"has {ctx.rf_entries_per_bank}"
            )
        channel = (sm_slot * self.warps_per_sm(ctx) + warp) % ctx.num_channels
        # Each element in a block needs its own copy of the program's
        # registers (Figure 3: n loads fill n RF entries), so the block
        # size is the RF capacity divided by the program's register count.
        block = max(1, ctx.rf_entries_per_bank // self.registers_used)
        total = ctx.scaled(self.elements_per_warp)

        element = 0
        while element < total:
            group = min(block, total - element)
            for step in self.steps:
                requests = []
                for i in range(group):
                    if step.vector_role is not None:
                        row, column = self.operand_location(
                            ctx, step.vector_role, element + i
                        )
                    else:
                        row, column = self.operand_location(ctx, 0, element + i)
                    base = i * self.registers_used
                    op = PIMOp(step.kind, dst=base + step.dst, src=base + step.src)
                    requests.append(make_pim_request(ctx, channel, row, column, op))
                yield Phase(compute_cycles=0, requests=requests, wait_for_replies=False)
            element += group


def vector_add_program(name: str = "vadd") -> PIMProgram:
    """The paper's Figure 3 kernel, prebuilt."""
    program = PIMProgram(name)
    a, b, c = program.vector("a"), program.vector("b"), program.vector("c")
    register = program.load(a)
    register = program.add(register, b)
    program.store(register, c)
    return program
