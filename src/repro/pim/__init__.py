"""PIM substrate: ISA, functional units, lock-step executor."""

from repro.pim.executor import PIMExecutor, PIMStats
from repro.pim.fu import FunctionalUnit, RegisterFile
from repro.pim.isa import PIM_ADD, PIM_LOAD, PIM_MAC, PIM_MUL, PIM_STORE, PIMOp, PIMOpKind
from repro.pim.program import (
    CompiledPIMKernel,
    PIMProgram,
    PIMProgramError,
    RegisterHandle,
    VectorHandle,
    vector_add_program,
)

__all__ = [
    "CompiledPIMKernel",
    "FunctionalUnit",
    "PIMExecutor",
    "PIMOp",
    "PIMOpKind",
    "PIMProgram",
    "PIMProgramError",
    "PIMStats",
    "PIM_ADD",
    "PIM_LOAD",
    "PIM_MAC",
    "PIM_MUL",
    "PIM_STORE",
    "RegisterFile",
    "RegisterHandle",
    "VectorHandle",
    "vector_add_program",
]
