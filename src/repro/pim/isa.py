"""PIM instruction set.

The paper models a bank-level PIM architecture following commercial designs
(HBM-PIM [42]): each functional unit (FU) owns a small register file and a
DRAM-word-wide SIMD ALU.  PIM kernels are sequences of *blocks*; a block is
a run of consecutive PIM operations to the same DRAM row, sized as a
multiple of the register-file capacity (Figure 3).

We model the fine-grained offloading paradigm (Section II-B): every PIM
operation is carried by a cache-streaming store request, and the memory
controller executes PIM requests in FCFS order on all banks in lock-step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PIMOpKind(enum.Enum):
    """Operations supported by the PIM functional unit's SIMD ALU.

    LOAD/STORE move a DRAM word between the row buffer and the register
    file.  The arithmetic ops read a DRAM word, combine it with a register,
    and write the result to a register (or, for *_ST variants implied by
    STORE, back to DRAM).  NOP is used for barriers/padding in tests.
    """

    LOAD = "load"  # RF[dst] <- DRAM[row, col]
    STORE = "store"  # DRAM[row, col] <- RF[src]
    ADD = "add"  # RF[dst] <- RF[src] + DRAM[row, col]
    SUB = "sub"
    MUL = "mul"
    MAC = "mac"  # RF[dst] <- RF[dst] + RF[src] * DRAM[row, col]
    MAX = "max"  # reduction helper (softmax)
    EXP = "exp"  # register-only transcendental (softmax)
    NOP = "nop"

    @property
    def accesses_dram(self) -> bool:
        """Whether the op opens/touches a DRAM column (EXP/NOP are RF-only)."""
        return self not in (PIMOpKind.EXP, PIMOpKind.NOP)

    @property
    def writes_dram(self) -> bool:
        return self is PIMOpKind.STORE


@dataclass(frozen=True)
class PIMOp:
    """One PIM operation as encoded in a PIM request.

    ``dst`` and ``src`` are register-file indices (per-bank register file;
    8 entries per bank in the modelled architecture).  The target row and
    column come from the carrying request's address, so they are not
    duplicated here.
    """

    kind: PIMOpKind
    dst: int = 0
    src: int = 0

    def __post_init__(self) -> None:
        if self.dst < 0 or self.src < 0:
            raise ValueError("register indices must be non-negative")


# Convenience singletons for the common ops used by workload generators.
PIM_LOAD = PIMOp(PIMOpKind.LOAD)
PIM_STORE = PIMOp(PIMOpKind.STORE)
PIM_ADD = PIMOp(PIMOpKind.ADD)
PIM_MUL = PIMOp(PIMOpKind.MUL)
PIM_MAC = PIMOp(PIMOpKind.MAC)
