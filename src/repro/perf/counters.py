"""Per-stage wall-clock counters for the cycle engine.

Attached to a system via :meth:`GPUSystem.enable_perf_counters`; every
subsequent :meth:`GPUSystem.step` then times each pipeline stage
individually.  The instrumented step path is slower than the plain one
(two clock reads per stage), so counters are off by default and the
headline cycles/sec numbers in ``repro bench`` come from uninstrumented
runs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict


class EngineCounters:
    """Accumulated wall-clock seconds and invocation counts per stage."""

    __slots__ = ("clock", "seconds", "calls")

    def __init__(self, clock: Callable[[], float] = perf_counter) -> None:
        self.clock = clock
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, stage: str, elapsed: float) -> None:
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1

    def count(self, stage: str, n: int = 1) -> None:
        """Record occurrences without wall-clock time (e.g. ``store.hit``).

        Count-only stages ride the same snapshot/merge machinery as timed
        stages, so cache hit/miss totals aggregate across workers exactly
        like engine timings do.
        """
        self.calls[stage] = self.calls.get(stage, 0) + n

    def reset(self) -> None:
        """Zero all accumulators (e.g. between tasks on a shared counter)."""
        self.seconds.clear()
        self.calls.clear()

    def merge(self, other: "EngineCounters") -> None:
        """Fold another counter set in (cross-worker/cross-run aggregation)."""
        self.merge_snapshot({"seconds": other.seconds, "calls": other.calls})

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold in a :meth:`snapshot` dict (the picklable cross-process form)."""
        for stage, value in snapshot.get("seconds", {}).items():
            self.seconds[stage] = self.seconds.get(stage, 0.0) + value
        for stage, value in snapshot.get("calls", {}).items():
            self.calls[stage] = self.calls.get(stage, 0) + value

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict copy of the accumulators, safe to pickle and merge."""
        return {"seconds": dict(self.seconds), "calls": dict(self.calls)}

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly per-stage summary, sorted by time spent."""
        total = self.total_seconds
        return {
            stage: {
                "seconds": round(seconds, 6),
                "calls": self.calls[stage],
                "share": round(seconds / total, 4) if total else 0.0,
            }
            for stage, seconds in sorted(
                self.seconds.items(), key=lambda kv: kv[1], reverse=True
            )
        }
