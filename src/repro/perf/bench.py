"""Engine throughput benchmark (``repro bench``).

Runs fixed co-run scenarios through :class:`~repro.sim.system.GPUSystem`
and reports simulated cycles per wall-clock second, the amount of
fast-forwarding, and (optionally) a per-stage wall-clock breakdown and a
comparison against the naive non-fast-forwarding loop.  The output is the
payload written to ``BENCH_engine.json`` by the CLI and the perf smoke
benchmark.

Scenarios
---------
``corun_horizon``
    A finite G10 (compute-heavy) x P1 (streaming PIM) co-run simulated
    for a fixed 100k-cycle horizon — the fixed-window methodology used by
    the paper's timeline figures.  Once both kernels complete, the tail
    of the window is quiescent, which is exactly where event-driven
    fast-forwarding pays off.
``corun_saturated``
    A memory-intensive G17 x looping P1 co-run that keeps every queue
    busy; there is nothing to skip, so this tracks the engine's busy-path
    (active-set) throughput.
``saturated_corun``
    The same pairing with *both* kernels looping and a GPU-heavy 8/2 SM
    split, so the MEM queues stay deep for the whole window.  This is the
    regime where scheduling cost dominates; it tracks the indexed
    per-bank scheduler and the SM due-event batching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.engine_soa import DEFAULT_BACKEND, create_system, resolve_backend
from repro.request import reset_request_ids
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel


@dataclass(frozen=True)
class BenchScenario:
    """One reproducible engine benchmark configuration."""

    name: str
    gpu_kernel: str
    pim_kernel: str
    loop_pim: bool
    max_cycles: int
    policy: str = "FR-FCFS"
    loop_gpu: bool = False
    gpu_sms: Optional[int] = None  # SMs for the GPU kernel (default: half)
    num_vcs: int = 1
    description: str = ""


SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="corun_horizon",
            gpu_kernel="G10",
            pim_kernel="P1",
            loop_pim=False,
            max_cycles=100_000,
            description="finite co-run over a fixed 100k-cycle window "
            "(compute phases + quiescent tail: exercises fast-forwarding)",
        ),
        BenchScenario(
            name="corun_saturated",
            gpu_kernel="G17",
            pim_kernel="P1",
            loop_pim=True,
            max_cycles=50_000,
            description="memory-intensive co-run with a looping PIM kernel "
            "(always busy: exercises the active-set busy path)",
        ),
        BenchScenario(
            name="saturated_corun",
            gpu_kernel="G17",
            pim_kernel="P1",
            loop_pim=True,
            loop_gpu=True,
            gpu_sms=8,
            max_cycles=50_000,
            description="both kernels loop with a GPU-heavy 8/2 SM split: "
            "deep MEM queues every cycle (exercises the indexed per-bank "
            "scheduler and SM due-event batching)",
        ),
    )
}


def resolve_scenario(name: str, source: str = "scenario") -> str:
    """Validate a benchmark scenario name.

    Raises ``ValueError`` naming the offending value and the valid
    choices (the same convention as ``resolve_backend``), with
    ``source`` identifying where the bad value came from.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown {source} {name!r}: valid choices are "
            + ", ".join(sorted(SCENARIOS))
        )
    return name


#: Scenarios accepted by ``repro trace``: every benchmark scenario plus a
#: trace-friendly variant of the examples/mode_timeline.py co-run (F3FS
#: under VC2, both kernels looping — frequent mode phases to look at).
TRACE_SCENARIOS: Dict[str, BenchScenario] = {
    **SCENARIOS,
    "mode_timeline": BenchScenario(
        name="mode_timeline",
        gpu_kernel="G19",
        pim_kernel="P1",
        loop_pim=True,
        loop_gpu=True,
        gpu_sms=8,
        max_cycles=30_000,
        policy="F3FS",
        num_vcs=2,
        description="the examples/mode_timeline.py co-run (G19 x P1 under "
        "VC2): alternating MEM/PIM phases, made for looking at traces",
    ),
}


def build_scenario_system(
    scenario: BenchScenario,
    channels: int = 8,
    sms: int = 10,
    scale: float = 0.12,
    seed: int = 1,
    fast_forward: bool = True,
    policy: Optional[PolicySpec] = None,
    backend: Optional[str] = None,
) -> GPUSystem:
    """Build the system for a scenario (``policy`` overrides the default).

    Shared by the benchmark harness and ``repro trace``; resets the global
    request-id counter so repeated builds are bit-reproducible.
    ``backend`` selects the engine (object reference or SoA vectorized);
    ``None`` defers to ``REPRO_ENGINE`` / the object default.
    """
    reset_request_ids()
    config = SystemConfig.scaled(num_channels=channels, num_sms=sms)
    if scenario.num_vcs != config.num_virtual_channels:
        config = config.replace(num_virtual_channels=scenario.num_vcs)
    system = create_system(
        config,
        policy if policy is not None else PolicySpec(scenario.policy),
        backend=backend,
        seed=seed,
        scale=scale,
        fast_forward=fast_forward,
    )
    gpu_sms = scenario.gpu_sms if scenario.gpu_sms is not None else sms // 2
    system.add_kernel(
        get_gpu_kernel(scenario.gpu_kernel), num_sms=gpu_sms, loop=scenario.loop_gpu
    )
    system.add_kernel(
        get_pim_kernel(scenario.pim_kernel),
        num_sms=sms - gpu_sms,
        loop=scenario.loop_pim,
    )
    return system


def _build_system(
    scenario: BenchScenario,
    channels: int,
    sms: int,
    scale: float,
    seed: int,
    fast_forward: bool,
    backend: Optional[str] = None,
) -> GPUSystem:
    return build_scenario_system(
        scenario, channels, sms, scale, seed, fast_forward=fast_forward, backend=backend
    )


def _timed_run(system: GPUSystem, max_cycles: int):
    """Time a run; returns ``(timing, engine_meta)``.

    ``timing`` holds the comparable numbers (simulated cycles, wall
    seconds, throughput).  ``engine_meta`` holds ``steps_executed`` /
    ``cycles_skipped``, which are *engine* bookkeeping, not simulation
    output — backends legitimately disagree on them (the SoA engine's
    parked controllers no longer block quiescence, so it fast-forwards
    cycles the object engine steps), so they are reported separately,
    keyed per backend.
    """
    start = time.perf_counter()
    result = system.run(max_cycles=max_cycles, until_all_complete_once=False)
    wall = time.perf_counter() - start
    timing = {
        "cycles": result.cycles,
        "wall_seconds": round(wall, 4),
        "cycles_per_sec": round(result.cycles / wall, 1) if wall else 0.0,
    }
    meta = {
        "steps_executed": system.steps_executed,
        "cycles_skipped": system.cycles_skipped,
    }
    return timing, meta


def run_engine_bench(
    scenario_names: Optional[list] = None,
    channels: int = 8,
    sms: int = 10,
    scale: float = 0.12,
    seed: int = 1,
    compare_naive: bool = False,
    stage_breakdown: bool = True,
    backend: str = DEFAULT_BACKEND,
    compare_soa: bool = False,
    stage_profile: bool = False,
) -> Dict:
    """Run the engine benchmark and return the BENCH_engine.json payload.

    ``compare_naive`` re-runs each scenario with fast-forwarding disabled
    (``fast_forward=False``) and reports the wall-clock speedup of the
    event-driven engine over the cycle-by-cycle loop.  The two runs are
    asserted to produce the same simulated cycle count — a cheap guard on
    top of the bit-exact equivalence suite in ``tests/test_fast_forward.py``.

    ``backend`` selects the engine for the timed runs; ``compare_soa``
    (object backend only) additionally times the SoA engine per scenario
    and records it under the ``"soa"`` key with its speedup over the
    object run — this is the baseline ``check_perf_regression --check
    soa`` guards.  Both engines must simulate the same cycle count.

    ``steps_executed`` / ``cycles_skipped`` are engine bookkeeping (they
    legitimately differ between backends) and are reported under
    ``entry["engine_meta"][<backend>]`` rather than inside the timing
    dicts, so the ``fast`` / ``soa`` sections only carry numbers that
    are actually comparable.

    ``stage_profile`` (``repro bench --stage-profile``) runs each
    scenario once more under a :class:`~repro.perf.profiler.StageProfiler`
    and records the ranked per-body attribution table (L2 tag/MSHR, DRAM
    timing, completion/reply delivery, ...) under
    ``entry["engine_meta"][<backend>]["stage_profile"]`` — the data that
    decides which Python body migrates to ``_kernels.c`` next.
    """
    backend = resolve_backend(backend)
    names = [resolve_scenario(n) for n in (scenario_names or list(SCENARIOS))]
    payload: Dict = {
        "benchmark": "engine_throughput",
        "backend": backend,
        "config": {"channels": channels, "sms": sms, "scale": scale, "seed": seed},
        "scenarios": {},
    }
    for name in names:
        scenario = SCENARIOS[name]
        system = _build_system(
            scenario, channels, sms, scale, seed, fast_forward=True, backend=backend
        )
        fast, fast_meta = _timed_run(system, scenario.max_cycles)
        entry: Dict = {
            "description": scenario.description,
            "fast": fast,
            "engine_meta": {backend: fast_meta},
        }

        if compare_soa and backend == "object":
            soa_system = _build_system(
                scenario, channels, sms, scale, seed, fast_forward=True, backend="soa"
            )
            soa, soa_meta = _timed_run(soa_system, scenario.max_cycles)
            if soa["cycles"] != fast["cycles"]:  # pragma: no cover - guard
                raise AssertionError(
                    f"{name}: object run simulated {fast['cycles']} cycles, "
                    f"SoA run {soa['cycles']}"
                )
            entry["soa"] = soa
            entry["engine_meta"]["soa"] = soa_meta
            entry["soa"]["speedup_vs_object"] = (
                round(fast["wall_seconds"] / soa["wall_seconds"], 2)
                if soa["wall_seconds"]
                else 0.0
            )

        if compare_naive:
            naive_system = _build_system(
                scenario, channels, sms, scale, seed, fast_forward=False
            )
            naive, _ = _timed_run(naive_system, scenario.max_cycles)
            if naive["cycles"] != fast["cycles"]:  # pragma: no cover - guard
                raise AssertionError(
                    f"{name}: fast run simulated {fast['cycles']} cycles, "
                    f"naive run {naive['cycles']}"
                )
            entry["naive"] = naive
            entry["speedup_vs_naive"] = (
                round(naive["wall_seconds"] / fast["wall_seconds"], 2)
                if fast["wall_seconds"]
                else 0.0
            )

        if stage_breakdown:
            instrumented = _build_system(
                scenario, channels, sms, scale, seed, fast_forward=True, backend=backend
            )
            counters = instrumented.enable_perf_counters()
            instrumented.run(
                max_cycles=scenario.max_cycles, until_all_complete_once=False
            )
            entry["stages"] = counters.breakdown()

        if stage_profile:
            from repro.perf.profiler import StageProfiler

            profiled = _build_system(
                scenario, channels, sms, scale, seed, fast_forward=True, backend=backend
            )
            profiler = StageProfiler(profiled)
            start = time.perf_counter()
            profiled_result = profiled.run(
                max_cycles=scenario.max_cycles, until_all_complete_once=False
            )
            profiled_wall = time.perf_counter() - start
            if profiled_result.cycles != fast["cycles"]:  # pragma: no cover - guard
                raise AssertionError(
                    f"{name}: profiled run simulated {profiled_result.cycles} "
                    f"cycles, unprofiled run {fast['cycles']}"
                )
            meta = entry["engine_meta"][backend]
            meta["stage_profile"] = profiler.table()
            meta["stage_profile_wall_seconds"] = round(profiled_wall, 4)

        payload["scenarios"][name] = entry
    return payload
