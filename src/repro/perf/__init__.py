"""Engine observability: per-stage counters and the ``repro bench`` harness.

This package measures the *simulator itself* (wall-clock per engine stage,
simulated cycles per second), not the simulated machine.  See
``docs/performance.md`` for how these numbers relate to the engine's
active-set scheduling and event-driven fast-forwarding.
"""

from repro.perf.counters import EngineCounters
from repro.perf.profiler import STAGE_BODIES, StageProfiler
from repro.perf.bench import (
    BenchScenario,
    SCENARIOS,
    TRACE_SCENARIOS,
    build_scenario_system,
    resolve_scenario,
    run_engine_bench,
)

__all__ = [
    "EngineCounters",
    "STAGE_BODIES",
    "StageProfiler",
    "BenchScenario",
    "SCENARIOS",
    "TRACE_SCENARIOS",
    "build_scenario_system",
    "resolve_scenario",
    "run_engine_bench",
]
