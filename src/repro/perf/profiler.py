"""Engine stage profiler: wall-time attribution for per-event bodies.

``enable_perf_counters`` times the engine's *top-level* stages (the nine
entries of ``GPUSystem._stages``), which is the right granularity for
regression gates but too coarse to guide the ``_kernels.c`` migration:
the SoA backend's ring stages are mostly typed-buffer plumbing, and the
open question is which of the *Python bodies still inside them* — L2
tag/MSHR lookup, DRAM timing updates, completion/reply delivery — costs
the most (see ROADMAP.md).  :class:`StageProfiler` answers that by
wrapping exactly those bodies with ``perf_counter`` timers.

Zero-cost-when-off is structural: nothing in the engine references the
profiler — it *installs itself* onto an already-built system by shadowing
bound methods with instance attributes (every call site reached through
normal attribute lookup picks the wrapper up; an unprofiled system has no
wrappers to hit).  The wrappers are transparent pass-throughs, so a
profiled run stays bit-identical to an unprofiled one — only wall time
changes (each timed call pays ~2 ``perf_counter`` reads, so treat the
absolute seconds as attribution, not as the unprofiled run's cost).

Bodies are wrapped only when the backend exposes them: the SoA fused
bodies (``_fused_issue_mem``, ``_fused_pim``, ...) do not exist on the
object backend, where the profile degrades to the bodies both engines
share (L2 lookup, controller tick, completion/reply delivery).
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.perf.counters import EngineCounters

#: Profiled bodies: ``(stage, holder, attribute)``.  ``holder`` names
#: where the method lives — the system itself, every L2 slice, every SM,
#: or every memory controller.  Order is documentation only; the output
#: table is ranked by measured seconds.
STAGE_BODIES = (
    # Python bodies still inside the SoA ring stages (the `_kernels.c`
    # migration candidates named in ROADMAP.md):
    ("l2_tag_mshr", "l2_slice", "lookup"),
    ("dram_timing", "system", "_fused_issue_mem"),
    ("pim_drain", "system", "_fused_pim"),
    ("mode_switch", "system", "_fused_switch"),
    ("warp_advance", "system", "_fused_advance_due"),
    # Delivery bodies shared by both backends:
    ("completion_delivery", "system", "_handle_completion"),
    ("reply_delivery", "sm", "receive_reply"),
    # The object-path controller state machine (on the SoA backend this
    # only fires for channels the fused tick cannot take):
    ("controller_tick", "controller", "tick"),
)


class StageProfiler:
    """Attach per-body wall-clock timers to a built system.

    Usage::

        system = build_scenario_system(...)
        profiler = StageProfiler(system)
        system.run(...)
        table = profiler.table()      # ranked [{stage, seconds, calls, share}]

    ``counters`` (an :class:`~repro.perf.counters.EngineCounters`) holds
    the raw seconds/calls per stage; :meth:`table` ranks them.  Call
    :meth:`uninstall` to restore the original bound methods.
    """

    def __init__(self, system, clock=time.perf_counter) -> None:
        self.system = system
        self.counters = EngineCounters(clock=clock)
        self._clock = clock
        self._installed: List[tuple] = []  # (holder, attribute) pairs
        for stage, holder_kind, attribute in STAGE_BODIES:
            for holder in self._holders(holder_kind):
                self._wrap(holder, attribute, stage)

    def _holders(self, kind: str) -> List:
        if kind == "system":
            return [self.system]
        if kind == "l2_slice":
            return list(getattr(self.system, "l2_slices", ()))
        if kind == "sm":
            return list(getattr(self.system, "sms", ()))
        if kind == "controller":
            return list(getattr(self.system, "controllers", ()))
        raise ValueError(f"unknown holder kind {kind!r}")  # pragma: no cover

    def _wrap(self, holder, attribute: str, stage: str) -> None:
        original = getattr(holder, attribute, None)
        if not callable(original):
            return  # this backend does not expose the body
        clock = self._clock
        add = self.counters.add  # add() also counts the call

        def wrapper(*args, __original=original, **kwargs):
            start = clock()
            try:
                return __original(*args, **kwargs)
            finally:
                add(stage, clock() - start)

        # Shadow the class-bound method with an instance attribute; every
        # call site that reaches the body through attribute lookup (they
        # all do) picks the wrapper up.
        setattr(holder, attribute, wrapper)
        self._installed.append((holder, attribute))

    def uninstall(self) -> None:
        """Remove every wrapper, restoring the class-bound originals."""
        for holder, attribute in self._installed:
            try:
                delattr(holder, attribute)
            except AttributeError:  # pragma: no cover - already gone
                pass
        self._installed.clear()

    def table(self) -> List[Dict]:
        """Ranked attribution rows: ``{stage, seconds, calls, share}``.

        ``share`` is each body's fraction of the summed *measured* time
        (the bodies are mutually exclusive except ``dram_timing`` inside
        ``controller_tick`` on fallback channels, which in practice do
        not overlap: fused channels never call ``tick``).
        """
        total = sum(self.counters.seconds.values()) or 1.0
        rows = [
            {
                "stage": stage,
                "seconds": round(seconds, 4),
                "calls": self.counters.calls.get(stage, 0),
                "share": round(seconds / total, 4),
            }
            for stage, seconds in self.counters.seconds.items()
        ]
        rows.sort(key=lambda row: (-row["seconds"], row["stage"]))
        return rows
