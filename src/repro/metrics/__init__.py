"""Metrics: fairness/throughput (Section III-C) and summary statistics."""

from repro.metrics.fairness import (
    CoexecutionMetrics,
    collaborative_speedup,
    fairness_index,
    harmonic_mean_speedup,
    ideal_collaborative_speedup,
    speedup,
    system_throughput,
    weighted_speedup,
)
from repro.metrics.stats import (
    BoxSummary,
    arithmetic_mean,
    box_summary,
    geometric_mean,
    normalize,
)
from repro.metrics.timeline import TimelineSample, TimelineSampler

__all__ = [
    "BoxSummary",
    "CoexecutionMetrics",
    "arithmetic_mean",
    "box_summary",
    "collaborative_speedup",
    "fairness_index",
    "geometric_mean",
    "harmonic_mean_speedup",
    "ideal_collaborative_speedup",
    "normalize",
    "speedup",
    "system_throughput",
    "TimelineSample",
    "TimelineSampler",
    "weighted_speedup",
]
