"""Time-series sampling of system state.

A :class:`TimelineSampler` attached to a :class:`~repro.sim.system.GPUSystem`
records, every ``interval`` cycles, each channel's servicing mode and the
occupancies along the memory path.  This is how the phase behaviour the
paper narrates (PIM bursts, MEM drains, mode ping-pong) can actually be
*seen* for a given policy — see ``examples/mode_timeline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List



@dataclass
class TimelineSample:
    cycle: int
    #: per-channel servicing mode ("mem", "pim", or "switching")
    modes: List[str]
    mem_queue_occupancy: List[int]
    pim_queue_occupancy: List[int]
    noc_occupancy: List[int]


@dataclass
class TimelineSampler:
    """Samples system state on a fixed cadence."""

    interval: int = 100
    samples: List[TimelineSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("interval must be positive")

    def due(self, cycle: int) -> bool:
        return cycle % self.interval == 0

    def sample(self, system, cycle: int) -> None:
        modes = []
        for controller in system.controllers:
            if controller.is_switching:
                modes.append("switching")
            else:
                modes.append(controller.mode.value)
        self.samples.append(
            TimelineSample(
                cycle=cycle,
                modes=modes,
                mem_queue_occupancy=[len(c.mem_queue) for c in system.controllers],
                pim_queue_occupancy=[len(c.pim_queue) for c in system.controllers],
                noc_occupancy=[len(b) for b in system.input_buffers],
            )
        )

    # -- analysis helpers ----------------------------------------------------

    def mode_share(self) -> Dict[str, float]:
        """Fraction of (channel, sample) points spent in each state.

        Unrecognized mode strings (e.g. from a custom controller subclass)
        are bucketed under ``"other"`` rather than raising.
        """
        counts: Dict[str, int] = {"mem": 0, "pim": 0, "switching": 0}
        total = 0
        for sample in self.samples:
            for mode in sample.modes:
                key = mode if mode in counts else "other"
                counts[key] = counts.get(key, 0) + 1
                total += 1
        if not total:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    def occupancy_series(self, what: str = "mem") -> List[float]:
        """Average per-channel queue occupancy over time.

        ``what``: "mem", "pim", or "noc".
        """
        attr = {
            "mem": "mem_queue_occupancy",
            "pim": "pim_queue_occupancy",
            "noc": "noc_occupancy",
        }.get(what)
        if attr is None:
            raise ValueError("what must be 'mem', 'pim', or 'noc'")
        series = []
        for sample in self.samples:
            values = getattr(sample, attr)
            series.append(sum(values) / len(values) if values else 0.0)
        return series

    def switch_points(self, channel: int = 0) -> List[int]:
        """Cycles at which the sampled channel changed state."""
        points = []
        previous = None
        for sample in self.samples:
            state = sample.modes[channel]
            if previous is not None and state != previous:
                points.append(sample.cycle)
            previous = state
        return points

    def render_strip(self, channel: int = 0, width: int = 80) -> str:
        """ASCII strip chart of one channel's mode over time.

        ``M`` = MEM mode, ``P`` = PIM mode, ``|`` = switching, ``?`` = any
        unrecognized mode string.
        """
        if not self.samples:
            return ""
        glyphs = {"mem": "M", "pim": "P", "switching": "|"}
        states = [glyphs.get(s.modes[channel], "?") for s in self.samples]
        if len(states) <= width:
            return "".join(states)
        stride = len(states) / width
        return "".join(states[int(i * stride)] for i in range(width))

    def to_rows(self) -> List[Dict]:
        """JSON-friendly export, one flat dict per sample.

        This is the form the trace writer (:mod:`repro.obs.trace`) consumes
        for its queue-occupancy counter tracks.
        """
        return [
            {
                "cycle": sample.cycle,
                "modes": list(sample.modes),
                "mem_queue": list(sample.mem_queue_occupancy),
                "pim_queue": list(sample.pim_queue_occupancy),
                "noc": list(sample.noc_occupancy),
            }
            for sample in self.samples
        ]
