"""Descriptive statistics helpers for the characterization figures.

Figure 4 reports distributions (interquartile boxes with median and
extremes); Figure 10a uses geometric means.  These helpers avoid pulling
heavier dependencies into the experiment layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class BoxSummary:
    """Five-number summary backing one box in a box plot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data."""
    if not ordered:
        raise ValueError("empty data")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    fraction = position - low
    low_value = ordered[low]
    high_value = ordered[high]
    value = low_value * (1 - fraction) + high_value * fraction
    # Clamp to the bracketing order statistics: the weighted sum can
    # round outside [low, high] for subnormal inputs (5e-324 * 0.5
    # underflows to 0.0), which would break quantile ordering.
    if value < low_value:
        return low_value
    if value > high_value:
        return high_value
    return value


def box_summary(values: Sequence[float]) -> BoxSummary:
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("empty data")
    return BoxSummary(
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; values must be positive (Figure 10a normalization)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("empty data")
    if any(v <= 0 for v in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def arithmetic_mean(values: Sequence[float]) -> float:
    data = [float(v) for v in values]
    if not data:
        raise ValueError("empty data")
    return sum(data) / len(data)


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Divide every value by a baseline (e.g. standalone arrival rate)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return [float(v) / baseline for v in values]
