"""System-level performance metrics (Section III-C, Eyerman & Eeckhout [15]).

Speedups are computed against standalone executions of the same kernel on
the same SM allocation; the Fairness Index quantifies the disparity between
co-executing kernels' speedups, and System Throughput their sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def speedup(standalone_cycles: int, contended_cycles: int) -> float:
    """Execution-time ratio; 1.0 means no slowdown under contention."""
    if standalone_cycles <= 0:
        raise ValueError("standalone time must be positive")
    if contended_cycles <= 0:
        raise ValueError("contended time must be positive")
    return standalone_cycles / contended_cycles


def fairness_index(speedup_a: float, speedup_b: float) -> float:
    """Equation (1): min of the two speedup ratios; 1.0 is perfectly fair.

    0.0 denotes starvation of one side (the paper assigns 0 when a kernel
    makes no progress).
    """
    if speedup_a < 0 or speedup_b < 0:
        raise ValueError("speedups must be non-negative")
    if speedup_a == 0 or speedup_b == 0:
        return 0.0
    return min(speedup_a / speedup_b, speedup_b / speedup_a)


def system_throughput(speedups: Iterable[float]) -> float:
    """Sum of co-executing kernels' speedups (kernel execution rate)."""
    total = 0.0
    for value in speedups:
        if value < 0:
            raise ValueError("speedups must be non-negative")
        total += value
    return total


def weighted_speedup(speedups: Sequence[float]) -> float:
    """Alias of system throughput for two-kernel workloads (literature name)."""
    return system_throughput(speedups)


def harmonic_mean_speedup(speedups: Sequence[float]) -> float:
    """Balanced fairness+throughput metric (used in ablation discussion)."""
    values = list(speedups)
    if not values:
        raise ValueError("need at least one speedup")
    if any(v <= 0 for v in values):
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


@dataclass(frozen=True)
class CoexecutionMetrics:
    """Fairness/throughput summary of one competitive co-execution."""

    gpu_speedup: float
    pim_speedup: float

    @property
    def fairness(self) -> float:
        return fairness_index(self.gpu_speedup, self.pim_speedup)

    @property
    def throughput(self) -> float:
        return system_throughput((self.gpu_speedup, self.pim_speedup))


def collaborative_speedup(
    standalone_gpu: int, standalone_pim: int, concurrent_cycles: int
) -> float:
    """Speedup of concurrent execution vs sequential (Figure 11)."""
    if concurrent_cycles <= 0:
        raise ValueError("concurrent time must be positive")
    return (standalone_gpu + standalone_pim) / concurrent_cycles


def ideal_collaborative_speedup(standalone_gpu: int, standalone_pim: int) -> float:
    """Perfect overlap: total time equals the longer kernel (Figure 11 Ideal)."""
    longer = max(standalone_gpu, standalone_pim)
    if longer <= 0:
        raise ValueError("standalone times must be positive")
    return (standalone_gpu + standalone_pim) / longer
