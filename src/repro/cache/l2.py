"""Set-associative L2 cache slice.

One slice per channel (the paper's 6 MB L2 is banked across the 32 memory
partitions).  MEM loads are filtered here; PIM requests bypass the cache
entirely (they are cache-streaming stores, Section III-A).

Policy summary:

* loads: hit → reply after ``l2_latency``; primary miss → allocate MSHR
  and forward the request to DRAM as a fill; secondary miss → merge.
* stores: write-through-on-miss / write-back-on-hit — a store hit marks
  the line dirty and is absorbed; a store miss is forwarded to DRAM
  without allocation.  Dirty victims generate writeback requests.

Simplification vs hardware: a fill moves one DRAM access (the triggering
request), not a full 128-byte line's worth of bursts; the line-granularity
effects that matter here (filtering, MSHR merging, writeback traffic) are
preserved.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.mshr import MSHRFile
from repro.request import Request, RequestType


@dataclass
class L2Stats:
    load_hits: int = 0
    load_misses: int = 0  # primary misses (DRAM fills)
    load_merges: int = 0  # secondary misses merged into an MSHR
    store_hits: int = 0
    store_misses: int = 0
    writebacks: int = 0
    stalls: int = 0  # cycles the slice could not sink its input
    kernel_hits: Dict[int, int] = field(default_factory=dict)
    kernel_accesses: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.load_hits + self.load_misses + self.load_merges + self.store_hits + self.store_misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        hits = self.load_hits + self.store_hits + self.load_merges
        return hits / total if total else 0.0


class LookupResult:
    """Outcome of presenting one request to the slice."""

    __slots__ = ()

    HIT = "hit"
    MISS_PRIMARY = "miss_primary"
    MISS_SECONDARY = "miss_secondary"
    STORE_FORWARD = "store_forward"
    BLOCKED = "blocked"


class L2Slice:
    """One channel's slice of the L2 cache."""

    def __init__(
        self,
        slice_bytes: int,
        assoc: int,
        line_bytes: int,
        mshr_capacity: int,
        channel_index: int = 0,
        mapper=None,
    ) -> None:
        if slice_bytes < assoc * line_bytes:
            raise ValueError("slice too small for one set")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = max(1, slice_bytes // (assoc * line_bytes))
        self.channel_index = channel_index
        self.mapper = mapper
        # sets[i]: OrderedDict mapping line address -> dirty flag (LRU order,
        # least recently used first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.mshrs = MSHRFile(mshr_capacity)
        self.stats = L2Stats()

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        return address // self.line_bytes

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.num_sets]

    # -- main lookup -------------------------------------------------------

    def lookup(self, request: Request) -> str:
        """Classify a request; updates tags/MSHRs but defers fills.

        Returns a :class:`LookupResult` constant.  ``MISS_PRIMARY`` means
        the caller must forward the request to DRAM as a fill (only
        returned when an MSHR was successfully allocated); ``BLOCKED``
        means the MSHR file is full and the request must be retried.
        """
        if request.is_pim:
            raise ValueError("PIM requests bypass the L2")
        line = request.address // self.line_bytes
        request.l2_line = line
        tag_set = self._sets[line % self.num_sets]
        stats = self.stats
        kid = request.kernel_id
        accesses = stats.kernel_accesses
        accesses[kid] = accesses.get(kid, 0) + 1

        if not request.is_load:  # store (PIM rejected above)
            if line in tag_set:
                tag_set.move_to_end(line)
                tag_set[line] = True  # now dirty
                stats.store_hits += 1
                hits = stats.kernel_hits
                hits[kid] = hits.get(kid, 0) + 1
                return LookupResult.HIT
            stats.store_misses += 1
            return LookupResult.STORE_FORWARD

        # Loads.
        if line in tag_set:
            tag_set.move_to_end(line)
            stats.load_hits += 1
            hits = stats.kernel_hits
            hits[kid] = hits.get(kid, 0) + 1
            return LookupResult.HIT
        if self.mshrs.has(line):
            self.mshrs.merge(line, request)
            stats.load_merges += 1
            # Filtered from DRAM's perspective: counts as a hit.
            hits = stats.kernel_hits
            hits[kid] = hits.get(kid, 0) + 1
            return LookupResult.MISS_SECONDARY
        if not self.mshrs.allocate(line, request):
            stats.stalls += 1
            return LookupResult.BLOCKED
        request.is_l2_fill = True
        stats.load_misses += 1
        return LookupResult.MISS_PRIMARY

    def install(self, fill: Request) -> Tuple[List[Request], Optional[Request]]:
        """Install the line for a returned fill.

        Returns ``(waiting_requests, writeback)`` where ``waiting_requests``
        includes the fill's own request plus merged secondaries, and
        ``writeback`` is a store request for a dirty victim (or ``None``).
        """
        line = fill.l2_line
        waiting = self.mshrs.release(line)
        tag_set = self._set_of(line)
        writeback: Optional[Request] = None
        if line not in tag_set:
            if len(tag_set) >= self.assoc:
                victim_line, dirty = tag_set.popitem(last=False)
                if dirty:
                    writeback = self._make_writeback(victim_line, fill)
                    self.stats.writebacks += 1
            tag_set[line] = False
        return waiting, writeback

    def _make_writeback(self, line: int, cause: Request) -> Request:
        request = Request(
            type=RequestType.MEM_STORE,
            address=line * self.line_bytes,
            source=cause.source,
            kernel_id=cause.kernel_id,
            is_writeback=True,
        )
        if self.mapper is not None:
            self.mapper.assign(request)
        else:
            request.channel = cause.channel
            request.bank = cause.bank
            request.row = cause.row
            request.column = cause.column
        return request

    # -- per-kernel stats ----------------------------------------------------

    def _note_access(self, request: Request) -> None:
        k = self.stats.kernel_accesses
        k[request.kernel_id] = k.get(request.kernel_id, 0) + 1

    def _note_hit(self, request: Request) -> None:
        k = self.stats.kernel_hits
        k[request.kernel_id] = k.get(request.kernel_id, 0) + 1

    def contains(self, address: int) -> bool:
        line = self.line_of(address)
        return line in self._set_of(line)

    def reset(self) -> None:
        for tag_set in self._sets:
            tag_set.clear()
        self.mshrs = MSHRFile(self.mshrs.capacity)
        self.stats = L2Stats()
