"""Cache substrate: per-SM L1, per-channel L2 slices, MSHRs."""

from repro.cache.l1 import L1Cache, L1Stats
from repro.cache.l2 import L2Slice, L2Stats, LookupResult
from repro.cache.mshr import MSHRFile

__all__ = ["L1Cache", "L1Stats", "L2Slice", "L2Stats", "LookupResult", "MSHRFile"]
