"""Per-SM L1 data cache.

Table I's GPU has a 32 KB L1D per SM.  The model is word-granular like the
L2 slice (one 32-byte DRAM word per entry), set-associative with LRU:

* loads: hit → satisfied locally after ``hit_latency`` (no NoC traffic);
  miss → forwarded, line installed when the reply returns.
* stores: write-through, no-allocate — forwarded unchanged (GPU L1s are
  typically write-through to keep coherence simple), updating the line's
  LRU position on a hit.
* PIM (cache-streaming) requests always bypass (Section III-A).

The L1 is disabled by default in :class:`repro.config.SystemConfig`: the
paper's contention effects live between the SMs and DRAM, and the workload
profiles' ``l2_reuse`` parameter is calibrated against the L2 alone.
Enable it (``l1_enabled=True``) for the L1 filtering study
(`examples/l1_filtering.py`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List


@dataclass
class L1Stats:
    load_hits: int = 0
    load_misses: int = 0
    stores: int = 0
    installs: int = 0

    @property
    def accesses(self) -> int:
        return self.load_hits + self.load_misses

    @property
    def hit_rate(self) -> float:
        return self.load_hits / self.accesses if self.accesses else 0.0


class L1Cache:
    """One SM's L1D, word-granular, LRU."""

    def __init__(self, capacity_words: int, assoc: int = 4) -> None:
        if capacity_words < assoc:
            raise ValueError("capacity must hold at least one set")
        if assoc < 1:
            raise ValueError("associativity must be positive")
        self.assoc = assoc
        self.num_sets = max(1, capacity_words // assoc)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = L1Stats()

    def _set_of(self, address: int) -> OrderedDict:
        return self._sets[address % self.num_sets]

    def lookup_load(self, address: int) -> bool:
        """True on hit (the load is satisfied locally)."""
        tag_set = self._set_of(address)
        if address in tag_set:
            tag_set.move_to_end(address)
            self.stats.load_hits += 1
            return True
        self.stats.load_misses += 1
        return False

    def note_store(self, address: int) -> None:
        """Write-through: refresh LRU if present, never allocate."""
        self.stats.stores += 1
        tag_set = self._set_of(address)
        if address in tag_set:
            tag_set.move_to_end(address)

    def install(self, address: int) -> None:
        """Fill on load-reply return."""
        tag_set = self._set_of(address)
        if address in tag_set:
            tag_set.move_to_end(address)
            return
        if len(tag_set) >= self.assoc:
            tag_set.popitem(last=False)
        tag_set[address] = True
        self.stats.installs += 1

    def contains(self, address: int) -> bool:
        return address in self._set_of(address)

    def reset(self) -> None:
        for tag_set in self._sets:
            tag_set.clear()
        self.stats = L1Stats()
