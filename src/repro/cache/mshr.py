"""Miss-status holding registers for the L2 slices.

A primary miss allocates an entry and forwards one fill request to DRAM;
secondary misses to the same line merge into the entry and are satisfied
when the fill returns.  A full MSHR file back-pressures the L2 input
(the slice stops popping requests), which is one of the congestion paths
the paper's Figure 7a illustrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.request import Request


class MSHRFile:
    """Fixed-capacity MSHR file keyed by cache-line address."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, List[Request]] = {}
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def has(self, line: int) -> bool:
        return line in self._entries

    def allocate(self, line: int, request: Request) -> bool:
        """Open an entry for a primary miss; False if the file is full."""
        if line in self._entries:
            raise ValueError(f"line {line:#x} already has an MSHR entry")
        if self.full:
            return False
        self._entries[line] = [request]
        if len(self._entries) > self.peak_occupancy:
            self.peak_occupancy = len(self._entries)
        return True

    def merge(self, line: int, request: Request) -> None:
        """Attach a secondary miss to an existing entry."""
        self._entries[line].append(request)

    def release(self, line: int) -> List[Request]:
        """Close the entry when its fill returns; yields all merged requests."""
        if line not in self._entries:
            raise KeyError(f"no MSHR entry for line {line:#x}")
        return self._entries.pop(line)

    def waiting(self, line: int) -> Optional[List[Request]]:
        return self._entries.get(line)
