"""Wire protocol shared by the fabric coordinator and its workers.

The fabric speaks plain HTTP/1.1 with JSON bodies — no third-party
dependencies on either side.  The coordinator owns all campaign state;
workers are stateless loops that lease cells, execute them, and stream
the resulting store documents back.  Endpoints (see ``docs/fabric.md``
for the full state machine):

* ``GET /grid`` — handshake: protocol schema, coordinator code version,
  the current **fencing epoch**, the
  :class:`~repro.experiments.runner.ExperimentScale` fields, the
  lease TTL, and the cell totals.  Workers refuse to join a coordinator
  whose ``code`` differs from their own — a mixed-code fleet would
  compute fingerprints that never match the shared store.
* ``POST /lease`` — ``{"worker": id}`` → one leased cell (task fields +
  ``lease_id`` + TTL + the grant's fencing ``epoch``), ``{"empty":
  true}`` when everything runnable is leased or backing off,
  ``{"draining": true}`` once the coordinator stops granting, or
  ``{"done": true}`` once the campaign ends.
* ``POST /heartbeat`` — ``{"worker", "epoch", "lease_ids"}`` renews
  lease deadlines; the reply lists leases still ``renewed`` and those
  ``lost`` (expired, re-leased elsewhere, or fenced behind a coordinator
  restart) plus the coordinator's current ``epoch``.
* ``POST /complete`` — ``{"worker", "lease_id", "key", "epoch",
  "documents"}``: the cell's store documents (each checksum-carrying,
  see :func:`validate_documents`).  Accepted exactly once per live
  lease *at the current epoch*; stale, pre-restart-epoch, duplicate, or
  corrupt completions are rejected with a reason and journaled.
* ``POST /fail`` — ``{"worker", "lease_id", "key", "epoch", "kind",
  "message", "attempts"}``: the worker gave up on the cell after its
  local retries; the coordinator quarantines it
  (``docs/resilience.md`` semantics).
* ``POST /resume`` — ``{"worker", "held": [{"lease_id", "key"}]}``:
  session resume after a reconnect.  The worker re-presents the leases
  it still holds; the coordinator re-adopts each live, matching lease
  at the *current* epoch (fresh TTL) and instructs abandonment of the
  rest.  This is the only way a pre-restart lease becomes completable
  again — without it, its replies stay fenced as ``stale-epoch``.
* ``POST /drain`` — begin graceful shutdown: stop granting leases,
  keep accepting heartbeats/completions for in-flight work, finalize
  and flush the ledger once nothing is leased (``SIGTERM`` does the
  same server-side).
* ``GET /status`` / ``GET /metrics`` / ``GET /journal?n=N`` — the PR 8
  observability surface, aggregated across every worker (same schema as
  a single-process sweep's ``status.json`` / Prometheus exposition).

Every state-changing decision is additionally written ahead to the
coordinator's write-ahead ledger (:mod:`repro.fabric.ledger`) before it
takes effect, which is what lets a restarted coordinator resume the
campaign with exact in-flight state.  When a shared secret is configured
(``REPRO_FABRIC_TOKEN`` / ``--token``), every endpoint requires the
:data:`TOKEN_HEADER` header and replies ``401`` with reason
``unauthorized`` on a mismatch.

Journal event names below are what the exactly-once accounting in
``tests/test_fabric.py`` (and operators grepping ``journal.jsonl``) key
on: every execution is bracketed by one ``fabric_lease`` and at most one
``fabric_complete`` for that ``lease_id``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.store.fingerprint import checksum

#: Protocol schema version; bumped on any wire-incompatible change.
#: 2: fencing epochs on grants/completions, /resume, /drain, token auth.
FABRIC_SCHEMA = 2

#: Default lease time-to-live (seconds).  A worker heartbeats at TTL/3,
#: so one missed heartbeat never kills a healthy lease.
DEFAULT_TTL = 30.0

#: Shared-secret header checked on every endpoint when the coordinator
#: was started with a token (``REPRO_FABRIC_TOKEN`` / ``--token``).
TOKEN_HEADER = "X-Fabric-Token"

#: Environment variable both sides read their shared secret from.
TOKEN_ENV = "REPRO_FABRIC_TOKEN"

# -- journal event names (store journal.jsonl) ---------------------------

EV_LEASE = "fabric_lease"  # lease granted: {key, label, worker, lease_id, attempt, epoch}
EV_COMPLETE = "fabric_complete"  # completion accepted: {key, label, worker, lease_id}
EV_REJECT = "fabric_reject"  # completion/fail refused: {key, lease_id, reason}
EV_EXPIRE = "fabric_expire"  # lease TTL ran out: {key, label, worker, lease_id}
EV_FAIL = "fabric_fail"  # worker-reported failure: {key, lease_id, kind, message}
EV_RECOVER = "fabric_recover"  # coordinator replayed its ledger: {epoch, ...counts}
EV_READOPT = "fabric_readopt"  # pre-restart lease re-adopted: {key, lease_id, worker, epoch}
EV_DRAIN = "fabric_drain"  # graceful shutdown began: {epoch, source, leased}

#: Reasons a /complete or /fail can be refused.  ``stale-lease``,
#: ``stale-epoch``, and ``already-complete`` are benign races (the work
#: is simply discarded — cells are idempotent); ``corrupt-payload`` and
#: ``missing-cell-document`` blame the lease like a failure attempt;
#: ``unauthorized`` is a shared-secret mismatch (HTTP 401).
REJECT_STALE = "stale-lease"
REJECT_DONE = "already-complete"
REJECT_CORRUPT = "corrupt-payload"
REJECT_MISSING = "missing-cell-document"
REJECT_UNKNOWN_CELL = "unknown-cell"
REJECT_STALE_EPOCH = "stale-epoch"
REJECT_UNAUTHORIZED = "unauthorized"


class FabricError(RuntimeError):
    """Base class for fabric client/worker errors."""


class FabricConnectionError(FabricError):
    """The coordinator could not be reached (socket-level failure)."""


class FabricProtocolError(FabricError):
    """The coordinator replied with something the client cannot accept
    (schema/code mismatch, malformed document, HTTP error status)."""


def validate_documents(documents) -> List[str]:
    """Structural + checksum validation of a /complete document list.

    Each document is the exact on-disk shape of one
    :class:`~repro.store.ResultStore` object — ``{"key", "value",
    "meta", "checksum"}`` — and the checksum must re-derive from the
    value, so a payload corrupted in flight (or fabricated by a buggy
    worker) is rejected before it can poison the shared store.
    """
    errors: List[str] = []
    if not isinstance(documents, list) or not documents:
        return ["documents must be a non-empty list"]
    for i, doc in enumerate(documents):
        if not isinstance(doc, dict):
            errors.append(f"documents[{i}] must be an object")
            continue
        key = doc.get("key")
        if not isinstance(key, str) or not key:
            errors.append(f"documents[{i}].key must be a non-empty string")
            continue
        meta = doc.get("meta")
        if not isinstance(meta, dict):
            errors.append(f"documents[{i}].meta must be an object")
        if "value" not in doc:
            errors.append(f"documents[{i}] has no value")
            continue
        try:
            derived = checksum(doc["value"])
        except TypeError as exc:
            errors.append(f"documents[{i}].value is not fingerprintable: {exc}")
            continue
        if doc.get("checksum") != derived:
            errors.append(f"documents[{i}] checksum mismatch for key {key[:16]}")
    return errors


def lease_task_fields(task) -> Dict:
    """The GridTask fields a lease carries over the wire (JSON-safe)."""
    return {
        "gpu_id": task.gpu_id,
        "pim_id": task.pim_id,
        "policy_name": task.policy_name,
        "policy_params": [list(pair) for pair in task.policy_params],
        "num_vcs": task.num_vcs,
    }


def task_from_fields(fields: Dict):
    """Rebuild a GridTask from :func:`lease_task_fields` output."""
    from repro.experiments.parallel import GridTask

    return GridTask(
        gpu_id=fields["gpu_id"],
        pim_id=fields["pim_id"],
        policy_name=fields["policy_name"],
        policy_params=tuple((str(k), v) for k, v in fields["policy_params"]),
        num_vcs=int(fields["num_vcs"]),
    )
