"""Distributed sweep fabric: campaign coordination over HTTP.

``repro.fabric`` turns a sweep grid into a horizontally scalable
service: one :class:`FabricCoordinator` owns the campaign (cell leases
with TTL + heartbeat renewal, fingerprint dedupe, checksum-verified
streaming into the shared :class:`~repro.store.ResultStore`, the PR 8
status/metrics surface aggregated across workers) and any number of
:class:`FabricWorker` processes lease cells and stream results home.
A fabric sweep and a single-process ``run_grid_resumable`` sweep over
the same grid leave byte-identical stores behind.

CLI: ``repro fabric serve`` / ``repro fabric work --connect HOST:PORT``.
Protocol and state machine: ``docs/fabric.md``.
"""

from repro.fabric.coordinator import FabricCoordinator, group_tasks, run_campaign
from repro.fabric.protocol import (
    DEFAULT_TTL,
    FABRIC_SCHEMA,
    FabricConnectionError,
    FabricError,
    FabricProtocolError,
    lease_task_fields,
    task_from_fields,
    validate_documents,
)
from repro.fabric.worker import (
    FabricClient,
    FabricWorker,
    WorkerAbandoned,
)

__all__ = [
    "DEFAULT_TTL",
    "FABRIC_SCHEMA",
    "FabricClient",
    "FabricConnectionError",
    "FabricCoordinator",
    "FabricError",
    "FabricProtocolError",
    "FabricWorker",
    "WorkerAbandoned",
    "group_tasks",
    "lease_task_fields",
    "run_campaign",
    "task_from_fields",
    "validate_documents",
]
