"""Distributed sweep fabric: campaign coordination over HTTP.

``repro.fabric`` turns a sweep grid into a horizontally scalable
service: one :class:`FabricCoordinator` owns the campaign (cell leases
with TTL + heartbeat renewal, fingerprint dedupe, checksum-verified
streaming into the shared :class:`~repro.store.ResultStore`, the PR 8
status/metrics surface aggregated across workers) and any number of
:class:`FabricWorker` processes lease cells and stream results home.
A fabric sweep and a single-process ``run_grid_resumable`` sweep over
the same grid leave byte-identical stores behind.

The coordinator is durable: every lease-state decision is written ahead
to a checksummed ledger (:class:`FabricLedger`), so a killed coordinator
restarts with exact in-flight state under a bumped fencing epoch, and
surviving workers reconnect and re-present their leases rather than
dying on disconnect.

CLI: ``repro fabric serve`` / ``repro fabric work --connect HOST:PORT``
/ ``repro fabric ledger``.  Protocol, state machine, and recovery
semantics: ``docs/fabric.md``.
"""

from repro.fabric.coordinator import FabricCoordinator, group_tasks, run_campaign
from repro.fabric.ledger import (
    LEDGER_FILENAME,
    FabricLedger,
    LedgerCorrupt,
    LedgerState,
    ledger_summary,
)
from repro.fabric.protocol import (
    DEFAULT_TTL,
    FABRIC_SCHEMA,
    TOKEN_ENV,
    TOKEN_HEADER,
    FabricConnectionError,
    FabricError,
    FabricProtocolError,
    lease_task_fields,
    task_from_fields,
    validate_documents,
)
from repro.fabric.worker import (
    FabricClient,
    FabricWorker,
    WorkerAbandoned,
)

__all__ = [
    "DEFAULT_TTL",
    "FABRIC_SCHEMA",
    "LEDGER_FILENAME",
    "TOKEN_ENV",
    "TOKEN_HEADER",
    "FabricClient",
    "FabricConnectionError",
    "FabricCoordinator",
    "FabricError",
    "FabricLedger",
    "FabricProtocolError",
    "FabricWorker",
    "LedgerCorrupt",
    "LedgerState",
    "WorkerAbandoned",
    "group_tasks",
    "lease_task_fields",
    "ledger_summary",
    "run_campaign",
    "task_from_fields",
    "validate_documents",
]
