"""Asyncio cell-lease coordinator: sweeps as a horizontally scaled service.

The coordinator owns one campaign — a grid of
:class:`~repro.experiments.parallel.GridTask` cells against one shared
:class:`~repro.store.ResultStore` — and leases cells to worker processes
over HTTP (:mod:`repro.fabric.protocol`).  It is the network-layer
analogue of :func:`repro.experiments.parallel.run_grid_resumable`: the
same store, the same journal, the same ``status.json`` heartbeat schema,
so a fabric sweep and a single-process sweep against the same grid leave
byte-identical ``objects/`` trees behind (the property
``tests/test_fabric.py`` and the CI ``fabric-canary`` assert).

Cell lifecycle (the lease state machine; see ``docs/fabric.md``)::

    pending ──lease──▶ leased ──complete──▶ done
       ▲                 │ │
       │   TTL expiry /  │ └──fail──▶ failed (quarantined)
       └── bad payload ──┘      (attempts left)  │
             (attempts left)                     ▼
                                   failed (attempts exhausted)

* **Dedupe by fingerprint.**  Cells are grouped by their content address
  (:func:`~repro.experiments.parallel.task_store_key`); duplicate tasks
  collapse into one unit of work, and a fingerprint is never leased to
  two workers at once.  Cells whose fingerprint is already in the store
  complete instantly as hits (warm resume), exactly like ``--resume``.
* **Lease TTL + heartbeats.**  Every lease carries a deadline; workers
  renew via ``POST /heartbeat``.  A dead or partitioned worker simply
  stops renewing, the lease expires, and the cell re-enters the queue
  with one failure attempt charged — retried with the PR 5
  :class:`~repro.resilience.RetryPolicy` backoff and quarantined when
  attempts run out, mirroring the supervisor's timeout semantics.
* **Exactly-once accounting.**  Completions are accepted only for the
  currently live lease of a cell: stale (expired/re-leased) and
  duplicate completions are rejected and journaled, never stored twice.
  Rejection is harmless to correctness — cells are idempotent and
  content-addressed — but the journal proves each cell's result was
  accepted exactly once.
* **Checksum-verified streaming.**  A completion carries the exact store
  documents the worker produced (cell outcome + any standalone baselines
  it computed); each is checksum-verified before the coordinator's
  atomic, journaled :meth:`~repro.store.ResultStore.put`.

Everything mutates inside one event loop — handlers never await between
reading and writing campaign state, so there are no locks and no
interleaving hazards.  The HTTP layer is a deliberately small HTTP/1.1
reader over ``asyncio.start_server`` (stdlib only, connection-per-request).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.experiments.parallel import GridTask, grid_store_keys
from repro.experiments.runner import ExperimentScale
from repro.fabric import ledger as wal
from repro.fabric import protocol
from repro.fabric.ledger import LEDGER_FILENAME, FabricLedger, LedgerState
from repro.fabric.protocol import (
    DEFAULT_TTL,
    FABRIC_SCHEMA,
    TOKEN_HEADER,
    lease_task_fields,
    validate_documents,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.status import StatusPublisher
from repro.resilience.supervisor import FATAL_KINDS, RetryPolicy
from repro.store import ResultStore, code_version

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    503: "Service Unavailable",
}

#: How long a worker should wait before re-polling /lease when everything
#: runnable is currently leased or backing off.
EMPTY_RETRY_AFTER = 0.2


@dataclass
class _Lease:
    lease_id: str
    worker: str
    attempt: int
    granted: float  # coordinator clock (monotonic)
    deadline: float
    epoch: int = 1  # fencing epoch the grant (or last re-adoption) was made under


@dataclass
class _CellGroup:
    """One unit of leasable work: every task index sharing a fingerprint."""

    key: str
    indices: List[int]
    task: GridTask
    state: str = "pending"  # pending | leased | done | failed
    attempts: int = 0  # leases granted (expiries/bad payloads consume one)
    not_before: float = 0.0
    lease: Optional[_Lease] = None
    hit: bool = False


def group_tasks(scale: ExperimentScale, tasks: Sequence[GridTask]) -> List[_CellGroup]:
    """Collapse tasks into fingerprint-unique cell groups, in task order."""
    by_key: Dict[str, _CellGroup] = {}
    order: List[_CellGroup] = []
    for index, (task, key) in enumerate(zip(tasks, grid_store_keys(scale, tasks))):
        group = by_key.get(key)
        if group is None:
            group = by_key[key] = _CellGroup(key=key, indices=[], task=task)
            order.append(group)
        group.indices.append(index)
    return order


class FabricCoordinator:
    """One campaign's lease service (see module docstring).

    Lifecycle: :meth:`start` binds the port and scans the store for warm
    cells, :meth:`wait_complete` resolves when every cell is done or
    quarantined, :meth:`stop` tears the server down (journaling an
    ``aborted`` summary if the campaign was still running).  The
    ``completed_event`` threading event mirrors completion for callers on
    other threads (the test harness, ``repro status``-style pollers).
    """

    def __init__(
        self,
        scale: ExperimentScale,
        tasks: Sequence[GridTask],
        store_dir,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ttl: float = DEFAULT_TTL,
        retry: Optional[RetryPolicy] = None,
        tick: float = 0.05,
        status_interval: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        token: Optional[str] = None,
        resume_grace: Optional[float] = None,
        clock=time.monotonic,
        wall_clock=time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive (got {ttl})")
        if resume_grace is not None and resume_grace < 0:
            raise ValueError(f"resume grace must be >= 0 (got {resume_grace})")
        self.scale = scale
        self.tasks = list(tasks)
        self.store = ResultStore(store_dir)
        self.host = host
        self._requested_port = port
        self.ttl = ttl
        self.retry = retry or RetryPolicy()
        self.tick = tick
        self.status_interval = status_interval
        self.registry = registry if registry is not None else MetricsRegistry()
        self.token = token
        #: How long a recovered in-flight lease waits for its worker to
        #: re-present it via /resume before it expires like a dead one.
        self.resume_grace = ttl if resume_grace is None else resume_grace
        self._clock = clock
        self._wall = wall_clock
        self.code = code_version()
        self.ledger = FabricLedger(self.store.root / LEDGER_FILENAME)

        self.cells = group_tasks(scale, self.tasks)
        self._by_key = {group.key: group for group in self.cells}
        self.hits = 0
        self.misses = 0
        self.failures: List[Dict] = []
        self.workers: Dict[str, float] = {}  # worker id -> last seen (clock)
        self.state = "running"
        self.epoch = 1
        self.recoveries = 0
        self.draining = False
        self.drained = False
        self._lease_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._ticker: Optional[asyncio.Task] = None
        self._done_async: Optional[asyncio.Event] = None
        self.completed_event = threading.Event()
        self.publisher: Optional[StatusPublisher] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Replay the ledger, bind the port, absorb warm store hits,
        start the expiry ticker.

        A first run opens epoch 1 on a fresh ledger; a restart replays
        the write-ahead ledger (raising
        :class:`~repro.fabric.ledger.LedgerCorrupt` on damage — never a
        silent wrong state), bumps the fencing epoch, and restores retry
        counts, backoff deadlines, the quarantine roster, and in-flight
        leases (which get ``resume_grace`` to be re-presented by their
        surviving workers before expiring like dead ones).
        """
        self._done_async = asyncio.Event()
        replayed = self.ledger.replay()
        self.epoch = replayed.epoch + 1
        self.recoveries = replayed.opens
        self._lease_seq = replayed.lease_seq
        self.publisher = StatusPublisher(
            self.store.root,
            total_cells=len(self.cells),
            max_workers=0,
            interval=self.status_interval,
            registry=self.registry,
            recoveries=self.recoveries,
            epoch=self.epoch,
        )
        self.ledger.append(
            wal.OP_OPEN, epoch=self.epoch, code=self.code, cells=len(self.cells)
        )
        recovered = self._apply_replay(replayed)
        for group in self.cells:
            if group.state in ("done", "failed"):
                continue
            if self.store.get(group.key, kind="competitive") is not None:
                group.state = "done"
                group.lease = None
                group.hit = True
                self.hits += 1
                self.publisher.record_completion(hit=True)
        if self.recoveries:
            self._journal(
                protocol.EV_RECOVER,
                epoch=self.epoch,
                torn_tail=replayed.torn_tail,
                **recovered,
            )
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self._requested_port
        )
        self._ticker = asyncio.get_running_loop().create_task(self._tick_loop())
        self._check_complete()

    def _apply_replay(self, replayed: LedgerState) -> Dict[str, int]:
        """Restore campaign state from a replayed ledger (pre warm-scan).

        Completed cells are *not* marked here: a ``complete`` record is
        only ever appended after the store puts landed, so the ordinary
        warm-store scan right after this re-discovers them (and heals the
        put-then-crash window where the record itself never landed).
        """
        now = self._clock()
        wall = self._wall()
        counts = {"leased": 0, "pending": 0, "quarantined": 0, "unknown": 0}
        for failure in replayed.failures:
            group = self._by_key.get(failure.get("key"))
            if group is None:
                counts["unknown"] += 1
                continue
            group.state = "failed"
            restored = {
                "index": failure.get("index", group.indices[0]),
                "label": failure.get("label") or group.task.label,
                "kind": failure.get("kind", "error"),
                "message": failure.get("message", ""),
                "attempts": failure.get("attempts", 0),
            }
            self.failures.append(restored)
            self.publisher.record_quarantine(restored)
            counts["quarantined"] += 1
        for key, cell in replayed.cells.items():
            group = self._by_key.get(key)
            if group is None:
                if cell.state != "failed":  # failed ones counted above
                    counts["unknown"] += 1
                continue
            if group.state == "failed":
                continue
            group.attempts = max(group.attempts, cell.attempts)
            if cell.state == "leased":
                group.state = "leased"
                group.lease = _Lease(
                    lease_id=cell.lease_id or "?",
                    worker=cell.worker or "?",
                    attempt=cell.lease_attempt or cell.attempts,
                    granted=now,
                    deadline=now + self.resume_grace,
                    epoch=cell.lease_epoch,
                )
                counts["leased"] += 1
            elif cell.state == "pending" and cell.attempts:
                group.not_before = now + max(0.0, cell.not_before_wall - wall)
                counts["pending"] += 1
        return counts

    @property
    def port(self) -> int:
        assert self._server is not None, "coordinator not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def wait_complete(self) -> None:
        assert self._done_async is not None, "coordinator not started"
        await self._done_async.wait()

    async def stop(self) -> None:
        """Tear the server down; an unfinished campaign journals ``aborted``."""
        if self._ticker is not None:
            self._ticker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ticker
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.state == "running":
            self._finalize("aborted")
        self.ledger.close()

    async def abandon(self) -> None:
        """Tear down *without* finalizing — the test harness's SIGKILL
        stand-in.  No ``close`` ledger record, no ``aborted`` journal
        line: exactly the state a killed coordinator leaves behind, so
        recovery tests exercise the real replay path."""
        if self._ticker is not None:
            self._ticker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ticker
            self._ticker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.ledger.close()

    def begin_drain(self, source: str = "request") -> None:
        """Graceful shutdown: stop granting, let in-flight leases finish.

        Idempotent.  New ``/lease`` calls get ``{"draining": true}``;
        heartbeats and completions keep working.  Once nothing is leased
        the campaign finalizes (``complete`` if everything landed,
        ``aborted`` otherwise — the ledger lets a later coordinator
        resume the remainder) and ``completed_event`` fires so
        :func:`run_campaign` exits 0.
        """
        if self.draining or self.state != "running":
            return
        self.ledger.append(wal.OP_DRAIN, epoch=self.epoch, source=source)
        self.draining = True
        self._journal(
            protocol.EV_DRAIN,
            epoch=self.epoch,
            source=source,
            leased=sum(1 for g in self.cells if g.state == "leased"),
        )
        self._check_complete()

    def summary(self) -> Dict:
        """Campaign roll-up (cells are fingerprint-unique units of work)."""
        completed = sum(1 for g in self.cells if g.state == "done")
        return {
            "state": self.state,
            "total": len(self.cells),
            "completed": completed,
            "hits": self.hits,
            "misses": self.misses,
            "failed": len(self.failures),
            "workers": sorted(self.workers),
            "epoch": self.epoch,
            "recoveries": self.recoveries,
            "drained": self.drained,
        }

    # -- campaign state machine --------------------------------------------

    def _journal(self, event: str, **fields) -> None:
        self.store.log_event(event, **fields)

    def _quarantine(self, group: _CellGroup, kind: str, message: str) -> None:
        failure = {
            "index": group.indices[0],
            "label": group.task.label,
            "kind": kind,
            "message": message,
            "attempts": group.attempts,
        }
        self.ledger.append(wal.OP_QUARANTINE, epoch=self.epoch, key=group.key, **failure)
        group.state = "failed"
        group.lease = None
        self.failures.append(failure)
        self._journal("quarantine", **failure)
        self.publisher.record_quarantine(failure)
        self._check_complete()

    def _blame(self, group: _CellGroup, kind: str, message: str) -> None:
        """One failure attempt: requeue with backoff or quarantine."""
        if kind in FATAL_KINDS or group.attempts > self.retry.retries:
            self._quarantine(group, kind, message)
            return
        delay = self.retry.delay(group.task.label, group.attempts)
        self.ledger.append(
            wal.OP_RETRY,
            epoch=self.epoch,
            key=group.key,
            kind=kind,
            attempts=group.attempts,
            not_before_wall=self._wall() + delay,
        )
        group.lease = None
        group.state = "pending"
        group.not_before = self._clock() + delay
        self.publisher.record_retry(
            {"kind": "retry", "label": group.task.label, "failure": kind}
        )
        self._check_complete()

    def _finalize(self, state: str) -> None:
        self.ledger.append(wal.OP_CLOSE, epoch=self.epoch, state=state)
        self.state = state
        self.publisher.finish("complete" if state == "complete" else "aborted")
        self._journal(
            "sweep_summary",
            state=state,
            total=len(self.cells),
            completed=sum(1 for g in self.cells if g.state == "done"),
            hits=self.hits,
            misses=self.misses,
            failed=len(self.failures),
            shard=None,
        )
        if self._done_async is not None:
            self._done_async.set()
        self.completed_event.set()

    def _check_complete(self) -> None:
        if self.state != "running":
            return
        if all(group.state in ("done", "failed") for group in self.cells):
            self.drained = self.drained or self.draining
            self._finalize("complete")
            return
        if self.draining and not any(g.state == "leased" for g in self.cells):
            # Drain finished with work left over: the ledger keeps the
            # retry/quarantine history, a restart resumes the remainder.
            self.drained = True
            self._finalize("aborted")

    async def _tick_loop(self) -> None:
        """Expire overdue leases and refresh the in-flight heartbeat view."""
        while True:
            await asyncio.sleep(self.tick)
            now = self._clock()
            for group in self.cells:
                if group.state != "leased" or group.lease.deadline > now:
                    continue
                lease = group.lease
                self._journal(
                    protocol.EV_EXPIRE,
                    key=group.key,
                    label=group.task.label,
                    worker=lease.worker,
                    lease_id=lease.lease_id,
                )
                if lease.epoch != self.epoch:
                    message = (
                        f"lease {lease.lease_id} from epoch {lease.epoch} was "
                        f"not re-presented within {self.resume_grace:g}s of "
                        f"coordinator recovery (worker {lease.worker})"
                    )
                else:
                    message = (
                        f"lease {lease.lease_id} expired after {self.ttl:g}s "
                        f"(worker {lease.worker} stopped heartbeating)"
                    )
                self._blame(group, "expired", message)
            self._publish_in_flight(now)
            self._check_complete()

    def _publish_in_flight(self, now: float) -> None:
        self.publisher.max_workers = max(len(self.workers), 1)
        self.publisher.record_in_flight(
            [
                {
                    "label": group.task.label,
                    "attempts": group.attempts,
                    "seconds": round(now - group.lease.granted, 3),
                    "worker": group.lease.worker,
                }
                for group in self.cells
                if group.state == "leased"
            ]
        )

    # -- request handlers ---------------------------------------------------

    def _handle_grid(self) -> Tuple[int, Dict]:
        return 200, {
            "schema": FABRIC_SCHEMA,
            "code": self.code,
            "scale": asdict(self.scale),
            "ttl": self.ttl,
            "epoch": self.epoch,
            "draining": self.draining,
            "cells": {"total": len(self.cells), "tasks": len(self.tasks)},
        }

    def _handle_lease(self, body: Dict) -> Tuple[int, Dict]:
        worker = body.get("worker")
        if not isinstance(worker, str) or not worker:
            return 400, {"error": "lease request must name a worker"}
        now = self._clock()
        self.workers[worker] = now
        if self.state != "running":
            return 200, {"done": True, "summary": self.summary()}
        if self.draining:
            return 200, {"draining": True, "retry_after": EMPTY_RETRY_AFTER}
        eligible = None
        for group in self.cells:
            if group.state == "pending" and group.not_before <= now:
                eligible = group
                break
        if eligible is None:
            if all(group.state in ("done", "failed") for group in self.cells):
                return 200, {"done": True, "summary": self.summary()}
            return 200, {"empty": True, "retry_after": EMPTY_RETRY_AFTER}
        lease_id = f"L{self._lease_seq + 1:05d}-{eligible.key[:8]}"
        self.ledger.append(
            wal.OP_LEASE,
            epoch=self.epoch,
            lease_seq=self._lease_seq + 1,
            key=eligible.key,
            label=eligible.task.label,
            lease_id=lease_id,
            worker=worker,
            attempt=eligible.attempts + 1,
        )
        eligible.attempts += 1
        self._lease_seq += 1
        lease = _Lease(
            lease_id=lease_id,
            worker=worker,
            attempt=eligible.attempts,
            granted=now,
            deadline=now + self.ttl,
            epoch=self.epoch,
        )
        eligible.state = "leased"
        eligible.lease = lease
        self._journal(
            protocol.EV_LEASE,
            key=eligible.key,
            label=eligible.task.label,
            worker=worker,
            lease_id=lease.lease_id,
            attempt=lease.attempt,
            epoch=self.epoch,
        )
        self._publish_in_flight(now)
        return 200, {
            "lease": {
                "lease_id": lease.lease_id,
                "key": eligible.key,
                "label": eligible.task.label,
                "ttl": self.ttl,
                "attempt": lease.attempt,
                "epoch": self.epoch,
                "task": lease_task_fields(eligible.task),
            }
        }

    def _handle_heartbeat(self, body: Dict) -> Tuple[int, Dict]:
        worker = body.get("worker")
        lease_ids = body.get("lease_ids")
        if not isinstance(worker, str) or not isinstance(lease_ids, list):
            return 400, {"error": "heartbeat must carry worker and lease_ids"}
        now = self._clock()
        self.workers[worker] = now
        renewed, lost = [], []
        live = {
            group.lease.lease_id: group
            for group in self.cells
            if group.state == "leased"
        }
        body_epoch = body.get("epoch")
        for lease_id in lease_ids:
            group = live.get(lease_id)
            if (
                group is not None
                and group.lease.worker == worker
                and group.lease.epoch == self.epoch
                and body_epoch == self.epoch
            ):
                group.lease.deadline = now + self.ttl
                renewed.append(lease_id)
            else:
                # Pre-restart-epoch leases renew only after /resume
                # re-adopts them; reporting them lost is what sends the
                # surviving worker down the resume path.
                lost.append(lease_id)
        return 200, {"renewed": renewed, "lost": lost, "epoch": self.epoch}

    def _resolve_lease(self, body: Dict):
        """Common /complete + /fail lease validation.

        Returns ``(group, None)`` for a live, matching lease *at the
        current fencing epoch* or ``(group_or_None, reject_reason)``
        otherwise — journaling (and write-ahead-logging) the rejection,
        which is how stale/duplicate/fenced replies show up in the
        exactly-once accounting.
        """
        key = body.get("key")
        lease_id = body.get("lease_id")
        worker = body.get("worker")
        group = self._by_key.get(key) if isinstance(key, str) else None
        if group is None:
            reason = protocol.REJECT_UNKNOWN_CELL
        elif group.state == "done":
            reason = protocol.REJECT_DONE
        elif body.get("epoch") != self.epoch:
            # The worker's view of the coordinator predates a restart:
            # fence it out deterministically, whatever lease it names.
            reason = protocol.REJECT_STALE_EPOCH
        elif (
            group.state != "leased"
            or group.lease.lease_id != lease_id
            or group.lease.worker != worker
        ):
            reason = protocol.REJECT_STALE
        elif group.lease.epoch != self.epoch:
            # The lease itself was granted pre-restart and never
            # re-presented via /resume — a zombie cannot double-complete.
            reason = protocol.REJECT_STALE_EPOCH
        else:
            return group, None
        self.ledger.append(
            wal.OP_REJECT,
            epoch=self.epoch,
            key=key if isinstance(key, str) else "?",
            lease_id=lease_id if isinstance(lease_id, str) else "?",
            reason=reason,
        )
        self._journal(
            protocol.EV_REJECT,
            key=key if isinstance(key, str) else "?",
            lease_id=lease_id if isinstance(lease_id, str) else "?",
            worker=worker if isinstance(worker, str) else "?",
            reason=reason,
        )
        return group, reason

    def _handle_complete(self, body: Dict) -> Tuple[int, Dict]:
        group, reason = self._resolve_lease(body)
        if reason is not None:
            return 200, {"accepted": False, "reason": reason}
        documents = body.get("documents")
        errors = validate_documents(documents)
        reason = None
        if errors:
            reason = protocol.REJECT_CORRUPT
        elif not any(doc["key"] == group.key for doc in documents):
            reason = protocol.REJECT_MISSING
        if reason is not None:
            # A structurally bad payload blames the lease like a failure:
            # re-leasing a cell to a worker that keeps shipping garbage
            # must converge to quarantine, not loop forever.
            self.ledger.append(
                wal.OP_REJECT,
                epoch=self.epoch,
                key=group.key,
                lease_id=group.lease.lease_id,
                reason=reason,
            )
            self._journal(
                protocol.EV_REJECT,
                key=group.key,
                lease_id=group.lease.lease_id,
                worker=group.lease.worker,
                reason=reason,
                errors=errors[:3],
            )
            self._blame(group, "error", f"rejected completion: {reason}")
            return 200, {"accepted": False, "reason": reason, "errors": errors[:3]}
        lease = group.lease
        stored = []
        for doc in documents:
            self.store.put(doc["key"], doc["value"], meta=doc["meta"])
            stored.append(doc["key"])
        # Puts land before the ledger record: a "complete" in the WAL is
        # always store-backed, and a crash in between is healed by the
        # warm-store scan on restart.
        self.ledger.append(
            wal.OP_COMPLETE,
            epoch=self.epoch,
            key=group.key,
            lease_id=lease.lease_id,
            worker=lease.worker,
        )
        group.state = "done"
        group.lease = None
        self.misses += 1
        self._journal(
            protocol.EV_COMPLETE,
            key=group.key,
            label=group.task.label,
            worker=lease.worker,
            lease_id=lease.lease_id,
        )
        self.publisher.record_completion(hit=False)
        self._check_complete()
        return 200, {"accepted": True, "stored": stored, "done": self.state != "running"}

    def _handle_fail(self, body: Dict) -> Tuple[int, Dict]:
        group, reason = self._resolve_lease(body)
        if reason is not None:
            return 200, {"accepted": False, "reason": reason}
        kind = body.get("kind") if isinstance(body.get("kind"), str) else "error"
        message = str(body.get("message", "worker reported failure"))
        attempts = body.get("attempts")
        lease = group.lease
        self._journal(
            protocol.EV_FAIL,
            key=group.key,
            label=group.task.label,
            worker=lease.worker,
            lease_id=lease.lease_id,
            kind=kind,
            message=message,
            attempts=attempts if isinstance(attempts, int) else None,
        )
        # The worker already burned its local retries (PR 5 policy), so a
        # /fail is final for that worker; deterministic kinds quarantine
        # immediately, transient kinds still get the coordinator's
        # re-lease budget (another worker may lack the fault).
        group.lease = None
        if kind in FATAL_KINDS:
            self._quarantine(group, kind, message)
        else:
            self._blame(group, kind, message)
        return 200, {"accepted": True}

    def _handle_resume(self, body: Dict) -> Tuple[int, Dict]:
        """Session resume: a reconnected worker re-presents held leases.

        Each live lease that still matches (same lease_id, same worker,
        cell still leased) is re-adopted at the *current* epoch with a
        fresh TTL — the only way a pre-restart grant becomes completable
        again.  Everything else the worker must abandon: the cell was
        re-leased, completed, or expired while it was away.
        """
        worker = body.get("worker")
        held = body.get("held")
        if not isinstance(worker, str) or not worker or not isinstance(held, list):
            return 400, {"error": "resume must carry worker and held leases"}
        now = self._clock()
        self.workers[worker] = now
        readopted, abandon = [], []
        for item in held:
            lease_id = item.get("lease_id") if isinstance(item, dict) else None
            key = item.get("key") if isinstance(item, dict) else None
            group = self._by_key.get(key) if isinstance(key, str) else None
            lease = group.lease if group is not None and group.state == "leased" else None
            if (
                lease is None
                or lease.lease_id != lease_id
                or lease.worker != worker
            ):
                abandon.append(lease_id if isinstance(lease_id, str) else "?")
                continue
            if lease.epoch != self.epoch:
                self.ledger.append(
                    wal.OP_READOPT,
                    epoch=self.epoch,
                    key=group.key,
                    lease_id=lease.lease_id,
                    worker=worker,
                )
                self._journal(
                    protocol.EV_READOPT,
                    key=group.key,
                    label=group.task.label,
                    worker=worker,
                    lease_id=lease.lease_id,
                    epoch=self.epoch,
                )
                lease.epoch = self.epoch
            lease.deadline = now + self.ttl
            readopted.append(
                {
                    "lease_id": lease.lease_id,
                    "key": group.key,
                    "epoch": self.epoch,
                    "ttl": self.ttl,
                }
            )
        return 200, {"epoch": self.epoch, "readopted": readopted, "abandon": abandon}

    def _handle_drain(self) -> Tuple[int, Dict]:
        self.begin_drain("request")
        return 200, {
            "draining": True,
            "leased": sum(1 for g in self.cells if g.state == "leased"),
        }

    def _handle_status(self) -> Tuple[int, Dict]:
        return 200, self.publisher.document()

    def _handle_journal(self, query: Dict) -> Tuple[int, object]:
        try:
            count = int(query.get("n", ["50"])[0])
        except ValueError:
            return 400, {"error": "n must be an integer"}
        from repro.obs.server import JOURNAL_LIMIT

        count = max(0, min(count, JOURNAL_LIMIT))
        # [-0:] would be the whole journal, not none of it.
        return 200, self.store.journal_entries()[-count:] if count else []

    def _dispatch(
        self, method: str, target: str, body: Dict, headers: Optional[Dict] = None
    ) -> Tuple[int, object, str]:
        parsed = urlparse(target)
        path, query = parsed.path, parse_qs(parsed.query)
        if self.token:
            presented = (headers or {}).get(TOKEN_HEADER.lower())
            if presented != self.token:
                detail = "presented no token" if not presented else "presented a different token"
                return (
                    401,
                    {
                        "error": (
                            f"fabric token mismatch: coordinator requires a shared "
                            f"secret and the client {detail} (set "
                            f"{protocol.TOKEN_ENV} or pass --token)"
                        ),
                        "reason": protocol.REJECT_UNAUTHORIZED,
                    },
                    "application/json",
                )
        if method == "GET":
            if path == "/grid":
                return (*self._handle_grid(), "application/json")
            if path == "/status":
                return (*self._handle_status(), "application/json")
            if path == "/metrics":
                return (
                    200,
                    self.registry.render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            if path == "/journal":
                return (*self._handle_journal(query), "application/json")
        elif method == "POST":
            if path == "/lease":
                return (*self._handle_lease(body), "application/json")
            if path == "/heartbeat":
                return (*self._handle_heartbeat(body), "application/json")
            if path == "/complete":
                return (*self._handle_complete(body), "application/json")
            if path == "/fail":
                return (*self._handle_fail(body), "application/json")
            if path == "/resume":
                return (*self._handle_resume(body), "application/json")
            if path == "/drain":
                return (*self._handle_drain(), "application/json")
        return 404, {"error": f"unknown endpoint {method} {path!r}"}, "application/json"

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader, writer) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30)
            if not request:
                return
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            length = 0
            headers: Dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await reader.readexactly(length) if length else b""
            try:
                body = json.loads(raw) if raw else {}
                if not isinstance(body, dict):
                    raise ValueError("body must be a JSON object")
            except (json.JSONDecodeError, ValueError) as exc:
                status, payload, ctype = 400, {"error": f"bad request body: {exc}"}, "application/json"
            else:
                status, payload, ctype = self._dispatch(method, target, body, headers)
            blob = (
                payload.encode()
                if isinstance(payload, str)
                else json.dumps(payload).encode()
            )
            writer.write(
                (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + blob
            )
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            UnicodeDecodeError,
        ):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


def run_campaign(
    coordinator: FabricCoordinator,
    *,
    linger: float = 5.0,
    announce=None,
) -> Dict:
    """Drive one coordinator to completion on this thread (CLI entry).

    After the campaign completes the server lingers ``linger`` seconds so
    polling workers observe the ``done`` reply and exit cleanly, then the
    server shuts down and the summary is returned.  ``SIGTERM`` begins a
    graceful drain (stop granting, finish in-flight, flush ledger +
    final status) and the drained summary exits 0; a Ctrl-C lands in the
    ``finally`` — the store keeps every accepted cell and the journal
    gets an ``aborted`` summary, exactly like an interrupted sweep.
    """

    async def _main() -> None:
        await coordinator.start()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(
                signal.SIGTERM, coordinator.begin_drain, "SIGTERM"
            )
        if announce is not None:
            announce(coordinator)
        try:
            await coordinator.wait_complete()
            if linger > 0:
                await asyncio.sleep(linger)
        finally:
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.remove_signal_handler(signal.SIGTERM)
            await coordinator.stop()

    asyncio.run(_main())
    return coordinator.summary()
