"""Fabric worker: lease cells, run them, stream the documents home.

A worker is a stateless loop around the existing single-process cell
path — the same :class:`~repro.experiments.runner.Runner`, the same
content-addressed documents — with the shared store replaced by a
*recording* scratch store.  Every document the runner writes locally
(the competitive outcome plus any standalone baselines it had to
compute) is captured byte-exactly and shipped to the coordinator inside
``POST /complete``; the coordinator re-puts them into the shared store,
which reproduces the identical bytes (same canonical JSON, same
checksum, same ``code`` stamp) a single-process sweep would have
written.

Delivery is **ack-based**: a document stays in the unacknowledged set
until a ``/complete`` reply lists its key as ``stored``.  That is what
makes crash recovery byte-lossless — if a completion is rejected (our
lease expired while we were simulating) the baselines it carried are
not dropped; they ride along with the next accepted completion.  And it
makes re-leases cheap: a cell this worker already simulated under a
lost lease is a local cache hit the second time, and its documents are
still pending, so the retry costs one HTTP round-trip.

Failure handling follows the PR 5 supervisor split: transient kinds
(``error``/``timeout``…) are retried locally with the
:class:`~repro.resilience.RetryPolicy` backoff; deterministic kinds
(:data:`~repro.resilience.supervisor.FATAL_KINDS`) or exhausted retries
are reported via ``POST /fail`` and quarantined by the coordinator.

**Coordinator loss is survivable.**  A worker does not die on
disconnect: every coordinator-facing call retries behind a capped
exponential backoff (bounded by ``max_connect_failures``), and once the
coordinator answers again the worker re-presents any lease it still
holds via ``POST /resume`` — the restarted coordinator either re-adopts
it at the recovered fencing epoch (the cell completes normally, no work
lost) or instructs abandonment (the cell was re-leased or finished
elsewhere; our documents stay pending and ride along later).  A
``/complete`` rejected ``stale-epoch`` triggers the same resync and is
retried exactly once at the new epoch.  The heartbeat thread likewise
treats send failures as transient — it retries at ``ttl/12`` instead of
silently letting the lease expire while the simulation keeps running —
and a ``lost`` verdict on a held lease triggers the resume path.

Test hooks: ``lease_hook`` lets the harness abandon a lease mid-flight
(raise :class:`WorkerAbandoned` — the worker goes silent on that cell
and the coordinator's TTL machinery takes over), ``crash_after_lease``
hard-kills the process while holding a lease (``os._exit``, same exit
code as the PR 5 fault plan), and ``runner_factory`` substitutes the
cell executor entirely.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments.parallel import GridTask
from repro.experiments.runner import ExperimentScale, Runner
from repro.fabric.protocol import (
    FABRIC_SCHEMA,
    REJECT_STALE_EPOCH,
    TOKEN_HEADER,
    FabricConnectionError,
    FabricProtocolError,
    task_from_fields,
)
from repro.resilience.faults import CRASH_EXIT_CODE
from repro.resilience.supervisor import FATAL_KINDS, RetryPolicy, classify_failure
from repro.store import ResultStore, code_version


class WorkerAbandoned(Exception):
    """Raised by a ``lease_hook`` to silently drop the current lease.

    The worker neither completes nor fails the cell — exactly what a
    crashed or partitioned worker looks like from the coordinator, which
    is the point: the harness uses it to force lease expiries without
    killing real processes.
    """


class FabricClient:
    """Minimal JSON-over-HTTP client for the coordinator.

    One connection per request (the coordinator closes after each reply
    anyway); socket-level failures raise
    :class:`~repro.fabric.protocol.FabricConnectionError`, HTTP or JSON
    failures raise :class:`~repro.fabric.protocol.FabricProtocolError`.
    """

    def __init__(
        self, address: str, timeout: float = 10.0, token: Optional[str] = None
    ) -> None:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"fabric address must be HOST:PORT (got {address!r})")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.token = token

    def request(self, method: str, path: str, body: Optional[Dict] = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            if self.token:
                headers[TOKEN_HEADER] = self.token
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise FabricConnectionError(
                    f"coordinator {self.host}:{self.port} unreachable: {exc}"
                ) from exc
            if response.status == 401:
                try:
                    detail = json.loads(raw).get("error", "")
                except (json.JSONDecodeError, AttributeError):
                    detail = raw[:200].decode(errors="replace")
                raise FabricProtocolError(f"{method} {path} -> 401: {detail}")
            if response.status >= 400:
                raise FabricProtocolError(
                    f"{method} {path} -> {response.status}: {raw[:200].decode(errors='replace')}"
                )
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise FabricProtocolError(
                    f"{method} {path} returned non-JSON body"
                ) from exc
        finally:
            conn.close()

    def get(self, path: str):
        return self.request("GET", path)

    def post(self, path: str, body: Dict):
        return self.request("POST", path, body)


class _RecordingStore(ResultStore):
    """A scratch ResultStore that captures every written document.

    ``documents`` maps key → the exact on-disk object document (read
    back after the atomic write, so checksum/meta/value are precisely
    what a single-process sweep would have put in the shared store).
    """

    def __init__(self, root) -> None:
        super().__init__(root)
        self.documents: Dict[str, Dict] = {}

    def put(self, key: str, value, meta: Optional[Dict] = None) -> Path:
        path = super().put(key, value, meta=meta)
        self.documents[key] = json.loads(path.read_text())
        return path


class FabricWorker:
    """One worker process's lease/execute/complete loop (module docstring)."""

    def __init__(
        self,
        worker_id: str,
        address: str,
        scratch_dir,
        *,
        retry: Optional[RetryPolicy] = None,
        poll: float = 0.2,
        max_connect_failures: int = 25,
        heartbeat: bool = True,
        token: Optional[str] = None,
        crash_after_lease: Optional[int] = None,
        lease_hook: Optional[Callable] = None,
        runner_factory: Optional[Callable] = None,
        backend: Optional[str] = None,
        watchdog_window: Optional[int] = None,
        sleep=time.sleep,
    ) -> None:
        self.worker_id = worker_id
        self.client = FabricClient(address, token=token)
        self.scratch_dir = Path(scratch_dir)
        self.retry = retry or RetryPolicy()
        self.poll = poll
        self.max_connect_failures = max_connect_failures
        self.heartbeat_enabled = heartbeat
        self.crash_after_lease = crash_after_lease
        self.lease_hook = lease_hook
        self.runner_factory = runner_factory
        self.backend = backend
        self.watchdog_window = watchdog_window
        self._sleep = sleep

        self.store: Optional[_RecordingStore] = None
        self.runner = None
        self.ttl = 10.0
        self.epoch = 1  # coordinator fencing epoch we last observed
        self.leases_granted = 0
        self.completes_accepted = 0
        self.completes_rejected = 0
        self.fails_reported = 0
        self.abandoned = 0
        self.reconnects = 0  # coordinator outages survived
        self.readopted = 0  # leases re-adopted via /resume
        self.heartbeat_retries = 0  # transient heartbeat send failures retried
        self._lease_lock = threading.Lock()
        self._current_lease_id: Optional[str] = None
        self._current_key: Optional[str] = None
        self._stop_heartbeat = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None

    # -- setup -------------------------------------------------------------

    def handshake(self) -> Dict:
        """``GET /grid``: verify protocol schema and code version match.

        A worker running different code would compute fingerprints that
        never match the coordinator's store — silently duplicating work
        and splitting the cache — so a mismatched fleet is refused here,
        loudly, before any cell runs.
        """
        grid = self.client.get("/grid")
        if grid.get("schema") != FABRIC_SCHEMA:
            raise FabricProtocolError(
                f"fabric schema mismatch: coordinator speaks "
                f"{grid.get('schema')!r}, this worker speaks {FABRIC_SCHEMA}"
            )
        ours = code_version()
        if grid.get("code") != ours:
            raise FabricProtocolError(
                f"code version mismatch: coordinator runs {grid.get('code')!r}, "
                f"this worker runs {ours!r} — refusing to join a mixed-code fleet"
            )
        self.ttl = float(grid.get("ttl", self.ttl))
        self.epoch = int(grid.get("epoch", self.epoch))
        scale = ExperimentScale(**grid["scale"])
        self.store = _RecordingStore(self.scratch_dir)
        if self.runner_factory is not None:
            self.runner = self.runner_factory(scale, self.store)
        else:
            self.runner = Runner(
                scale,
                store=self.store,
                backend=self.backend,
                watchdog_window=self.watchdog_window,
            )
        return grid

    # -- heartbeat ---------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        interval = max(self.ttl / 3.0, 0.02)
        # A send failure is retried at ttl/12 — four more chances inside
        # one TTL — instead of waiting out a full interval and silently
        # letting the lease expire while the simulation keeps running.
        retry_interval = max(self.ttl / 12.0, 0.01)
        wait = interval
        while not self._stop_heartbeat.wait(wait):
            wait = interval
            with self._lease_lock:
                lease_id = self._current_lease_id
            if lease_id is None:
                continue
            try:
                reply = self.client.post(
                    "/heartbeat",
                    {
                        "worker": self.worker_id,
                        "epoch": self.epoch,
                        "lease_ids": [lease_id],
                    },
                )
            except (FabricConnectionError, FabricProtocolError):
                self.heartbeat_retries += 1
                wait = retry_interval
                continue
            self.epoch = int(reply.get("epoch", self.epoch))
            if lease_id in reply.get("lost", []):
                # Fenced behind a coordinator restart (or genuinely
                # expired): re-present the lease; a re-adoption makes the
                # next renewal succeed at the recovered epoch.
                try:
                    self._resync()
                except (FabricConnectionError, FabricProtocolError):
                    wait = retry_interval

    def _set_lease(self, lease_id: Optional[str], key: Optional[str] = None) -> None:
        with self._lease_lock:
            self._current_lease_id = lease_id
            self._current_key = key

    def _resync(self) -> Dict:
        """``POST /resume``: re-present held leases after a reconnect.

        Updates our view of the coordinator's fencing epoch and counts
        re-adoptions.  Leases the coordinator tells us to abandon need no
        local action — their completions would be rejected as stale, and
        their documents stay pending to ride along with the next
        accepted completion.
        """
        with self._lease_lock:
            lease_id, key = self._current_lease_id, self._current_key
        held = [{"lease_id": lease_id, "key": key}] if lease_id else []
        reply = self.client.post("/resume", {"worker": self.worker_id, "held": held})
        self.epoch = int(reply.get("epoch", self.epoch))
        self.readopted += len(reply.get("readopted", []))
        return reply

    def _reconnect_delay(self, failures: int) -> float:
        """Capped exponential backoff for coordinator unavailability."""
        return min(self.poll * (2 ** min(failures - 1, 6)), max(self.ttl / 4.0, self.poll))

    def _post_resilient(self, path: str, body: Dict) -> Dict:
        """POST with reconnect: back off through coordinator outages.

        After an outage the coordinator we reach may be a restarted one;
        the caller re-presents held leases (``/resume``) and handles
        ``stale-epoch`` rejections — this helper only survives the
        socket-level gap.  Raises once ``max_connect_failures``
        consecutive attempts fail.
        """
        failures = 0
        while True:
            try:
                reply = self.client.post(path, body)
            except FabricConnectionError:
                failures += 1
                if failures > self.max_connect_failures:
                    raise
                self._sleep(self._reconnect_delay(failures))
                continue
            if failures:
                self.reconnects += 1
            return reply

    # -- cell execution ----------------------------------------------------

    def _execute(self, task: GridTask, lease: Dict) -> None:
        """Run one leased cell with local retries, then complete or fail."""
        attempt = 0
        while True:
            attempt += 1
            try:
                self.runner.competitive(
                    task.gpu_id, task.pim_id, task.policy, num_vcs=task.num_vcs
                )
                break
            except Exception as exc:  # noqa: BLE001 - classified below
                kind = classify_failure(exc)
                if kind in FATAL_KINDS or attempt > self.retry.retries:
                    self.fails_reported += 1
                    self._post_resilient(
                        "/fail",
                        {
                            "worker": self.worker_id,
                            "lease_id": lease["lease_id"],
                            "key": lease["key"],
                            "epoch": self.epoch,
                            "kind": kind,
                            "message": f"{type(exc).__name__}: {exc}",
                            "attempts": attempt,
                        },
                    )
                    return
                self._sleep(self.retry.delay(task.label, attempt))
        resynced = False
        while True:
            documents = list(self.store.documents.values())
            reply = self._post_resilient(
                "/complete",
                {
                    "worker": self.worker_id,
                    "lease_id": lease["lease_id"],
                    "key": lease["key"],
                    "epoch": self.epoch,
                    "documents": documents,
                },
            )
            if reply.get("accepted"):
                self.completes_accepted += 1
                for key in reply.get("stored", []):
                    self.store.documents.pop(key, None)
                return
            if reply.get("reason") == REJECT_STALE_EPOCH and not resynced:
                # The coordinator restarted under us.  Re-present the
                # lease; if it is re-adopted at the recovered epoch the
                # completion goes through exactly once — otherwise fall
                # through to an ordinary rejection.
                resynced = True
                try:
                    resume = self._resync()
                except (FabricConnectionError, FabricProtocolError):
                    resume = {}
                if any(
                    item.get("lease_id") == lease["lease_id"]
                    for item in resume.get("readopted", [])
                ):
                    continue
            # Stale or duplicate lease: the shared store already has (or
            # will get) this cell from whoever holds the live lease.  Our
            # unacked documents stay pending for the next completion.
            self.completes_rejected += 1
            return

    # -- main loop ---------------------------------------------------------

    def run(self) -> Dict:
        """Work the campaign to completion; returns a summary dict."""
        connect_failures = 0
        while True:
            try:
                self.handshake()
                break
            except FabricConnectionError:
                connect_failures += 1
                if connect_failures > self.max_connect_failures:
                    raise
                self._sleep(self._reconnect_delay(connect_failures))
        if self.heartbeat_enabled:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"fabric-heartbeat-{self.worker_id}",
                daemon=True,
            )
            self._heartbeat_thread.start()
        try:
            connect_failures = 0
            while True:
                try:
                    reply = self.client.post("/lease", {"worker": self.worker_id})
                except FabricConnectionError:
                    connect_failures += 1
                    if connect_failures > self.max_connect_failures:
                        raise
                    self._sleep(self._reconnect_delay(connect_failures))
                    continue
                if connect_failures:
                    # The coordinator came back — possibly a restarted
                    # one.  Refresh our epoch (and re-present anything we
                    # hold, which between leases is nothing).
                    self.reconnects += 1
                    connect_failures = 0
                    try:
                        self._resync()
                    except (FabricConnectionError, FabricProtocolError):
                        pass
                if reply.get("done"):
                    break
                if reply.get("empty") or reply.get("draining"):
                    self._sleep(float(reply.get("retry_after", self.poll)))
                    continue
                lease = reply["lease"]
                self.epoch = int(lease.get("epoch", self.epoch))
                self.leases_granted += 1
                if (
                    self.crash_after_lease is not None
                    and self.leases_granted > self.crash_after_lease
                ):
                    # Die *holding* the lease — the canonical dead-worker
                    # scenario the TTL + re-lease machinery exists for.
                    os._exit(CRASH_EXIT_CODE)
                self._set_lease(lease["lease_id"], lease["key"])
                try:
                    if self.lease_hook is not None:
                        self.lease_hook(self, lease)
                    self._execute(task_from_fields(lease["task"]), lease)
                except WorkerAbandoned:
                    self.abandoned += 1
                finally:
                    self._set_lease(None)
        finally:
            self._stop_heartbeat.set()
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
        return {
            "worker": self.worker_id,
            "leases": self.leases_granted,
            "completed": self.completes_accepted,
            "rejected": self.completes_rejected,
            "failed": self.fails_reported,
            "abandoned": self.abandoned,
            "reconnects": self.reconnects,
            "readopted": self.readopted,
            "heartbeat_retries": self.heartbeat_retries,
        }
