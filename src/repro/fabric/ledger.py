"""Write-ahead lease ledger: durable campaign state for the coordinator.

The coordinator of :mod:`repro.fabric` used to be a single point of
amnesia — a killed coordinator resumed *warm* from the content-addressed
store (done cells complete instantly) but lost all in-flight lease
history: retry counts, backoff deadlines, quarantine rosters, and which
worker held which cell.  The ledger closes that gap.  Every decision
that mutates campaign state — lease grant, re-adoption, completion,
rejection, retry, quarantine, drain, close — is appended here *before*
it takes effect, so a restarted coordinator replays the ledger and
resumes the campaign exactly where it stopped.

The file (``fabric_ledger.jsonl`` in the store root, next to
``journal.jsonl``) reuses the store's durability idioms:

* **Atomic appends.**  One ``os.write`` of one complete line per record
  (plus ``fsync`` — this is a WAL, not an activity log), so a crash can
  tear at most the final line, never interleave two records.
* **Checksummed lines.**  Each record carries a ``check`` field — the
  store's canonical-JSON checksum over the rest of the record — plus a
  contiguous ``seq`` number.  Replay verifies both per line: a torn
  *tail* (the only kind of damage a crash can cause) is truncated away
  and replay resumes from the last whole record; damage anywhere else
  (bit rot, hand-editing, a lost middle line) raises
  :class:`LedgerCorrupt` naming the exact byte offset — never a silent
  wrong state.

**Fencing epochs.**  Each coordinator session appends an ``open`` record
with a monotonically increasing epoch (last epoch + 1).  Lease grants
carry the epoch they were made under; after a restart, replies for
pre-restart grants are rejected ``stale-epoch`` until the worker
re-presents the lease via ``POST /resume`` and has it re-adopted
(``readopt`` record) at the recovered epoch.  That is what makes
recovery zombie-safe: a worker that survived the crash cannot
double-complete a cell the restarted coordinator re-leased.

Record operations (fields beyond ``seq``/``op``/``epoch``/``check``)::

    open        code, cells           new session, new epoch
    lease       lease_seq, key, label, lease_id, worker, attempt
    readopt     key, lease_id, worker      re-adopted at this epoch
    complete    key, lease_id, worker      accepted; store puts landed first
    reject      key, lease_id, reason      refused reply (no state change)
    retry       key, kind, attempts, not_before_wall   requeued w/ backoff
    quarantine  key, index, label, kind, message, attempts
    drain       source                graceful shutdown began
    close       state                 campaign finalized (complete/aborted)

Backoff deadlines are persisted as *wall-clock* times (the coordinator's
scheduling clock is monotonic and does not survive a restart); replay
returns them as wall times and the coordinator converts the remaining
delay onto its fresh monotonic clock.

Store documents are deliberately **not** in the ledger: completions put
their documents into the content-addressed store *before* the
``complete`` record is appended, so a ledger that says "done" is always
backed by store bytes, and a crash between the puts and the record is
healed by the ordinary warm-store scan on restart (the cell replays as
in-flight, the scan finds its object, it completes as a hit).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.store.fingerprint import checksum

PathLike = Union[str, Path]

#: Ledger file name inside the store root (next to ``journal.jsonl``).
LEDGER_FILENAME = "fabric_ledger.jsonl"

OP_OPEN = "open"
OP_LEASE = "lease"
OP_READOPT = "readopt"
OP_COMPLETE = "complete"
OP_REJECT = "reject"
OP_RETRY = "retry"
OP_QUARANTINE = "quarantine"
OP_DRAIN = "drain"
OP_CLOSE = "close"

_OPS = frozenset(
    (
        OP_OPEN,
        OP_LEASE,
        OP_READOPT,
        OP_COMPLETE,
        OP_REJECT,
        OP_RETRY,
        OP_QUARANTINE,
        OP_DRAIN,
        OP_CLOSE,
    )
)


class LedgerCorrupt(RuntimeError):
    """The ledger is damaged somewhere replay cannot repair.

    Only a *tail* line can legitimately be torn (a crash mid-append);
    a parse/checksum failure before the tail, or a ``seq`` gap anywhere,
    means records were lost or altered — resuming would silently drop
    lease history, so replay refuses with this structured diagnostic
    instead.  ``offset`` is the byte offset of the first bad line.
    """

    def __init__(self, path: Path, offset: int, line_no: int, reason: str) -> None:
        self.path = Path(path)
        self.offset = offset
        self.line_no = line_no
        self.reason = reason
        super().__init__(
            f"fabric ledger {self.path} corrupt at byte {offset} "
            f"(line {line_no}): {reason}"
        )


@dataclass
class LedgerCell:
    """Replayed per-cell state (keyed by the cell's store fingerprint)."""

    key: str
    state: str = "pending"  # pending | leased | done | failed
    attempts: int = 0
    not_before_wall: float = 0.0  # wall-clock backoff deadline (0 = none)
    lease_id: Optional[str] = None
    worker: Optional[str] = None
    lease_epoch: int = 0
    lease_attempt: int = 0
    label: str = ""


@dataclass
class LedgerState:
    """Everything :meth:`FabricLedger.replay` recovers from disk."""

    epoch: int = 0  # last opened epoch (0 = never opened)
    opens: int = 0  # coordinator sessions recorded so far
    records: int = 0  # whole records replayed
    lease_seq: int = 0  # highest lease counter ever granted
    cells: Dict[str, LedgerCell] = field(default_factory=dict)
    failures: List[Dict] = field(default_factory=list)  # quarantine roster, in order
    rejects: int = 0
    closed: Optional[str] = None  # final state if the last session closed
    draining: bool = False
    torn_tail: bool = False  # a crash-torn final line was truncated away


class FabricLedger:
    """Appender + replayer for one campaign's write-ahead ledger.

    Usage (the coordinator's startup sequence)::

        ledger = FabricLedger(store_root / LEDGER_FILENAME)
        state = ledger.replay()          # raises LedgerCorrupt on damage
        epoch = state.epoch + 1
        ledger.append(OP_OPEN, epoch=epoch, code=..., cells=...)

    ``replay`` remembers where the last whole record ends; if the tail
    was torn, the first ``append`` truncates the file back to that
    boundary before writing, so the torn bytes can never corrupt later
    records.  Every append is a single ``write`` + ``fsync`` — records
    are rare (one per lease-state transition, not per heartbeat), so
    WAL-grade durability costs nothing measurable.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._seq = 0
        self._truncate_to: Optional[int] = None
        self._needs_newline = False

    # -- replay ------------------------------------------------------------

    def replay(self) -> LedgerState:
        """Rebuild campaign state from disk (empty state if no file)."""
        state = LedgerState()
        self._seq = 0
        self._truncate_to = None
        self._needs_newline = False
        try:
            raw = self.path.read_bytes()
        except OSError:
            return state
        pos = 0
        line_no = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            end = newline if newline != -1 else len(raw)
            line = raw[pos:end]
            line_no += 1
            if not line.strip():
                pos = end + 1
                continue
            record, problem, tearable = self._decode(line, self._seq + 1)
            if record is None:
                # Only a crash-torn *tail* is tolerated: the bad line must
                # be the last (nothing but whitespace after it) AND look
                # like a torn append (parse/checksum failure).  A
                # well-formed final line with a seq gap can only mean
                # records were lost — that is damage, not a crash.
                tail = raw[end + 1 :] if newline != -1 else b""
                if tail.strip() or not tearable:
                    raise LedgerCorrupt(self.path, pos, line_no, problem)
                state.torn_tail = True
                self._truncate_to = pos
                break
            self._seq = record["seq"]
            self._apply(state, record)
            if newline == -1:
                # Valid record but the trailing newline never landed;
                # the next append must start on a fresh line.
                self._needs_newline = True
            pos = end + 1
        return state

    def _decode(self, line: bytes, expected_seq: int):
        """Parse + verify one line.

        Returns ``(record, None, _)`` on success or ``(None, reason,
        crash_tearable)`` — ``crash_tearable`` is True only for failures
        a torn append could produce (partial bytes: unparseable or
        checksum-broken); a structurally sound record with a bad op,
        seq, or epoch means the file was altered, never merely torn.
        """
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return None, f"unparseable record: {exc}", True
        if not isinstance(record, dict):
            return None, "record must be a JSON object", True
        body = dict(record)
        check = body.pop("check", None)
        try:
            derived = checksum(body)
        except TypeError as exc:
            return None, f"unfingerprintable record: {exc}", True
        if check != derived:
            return None, "record checksum mismatch", True
        if record.get("op") not in _OPS:
            return None, f"unknown op {record.get('op')!r}", False
        if record.get("seq") != expected_seq:
            return None, (
                f"sequence gap: expected seq {expected_seq}, "
                f"found {record.get('seq')!r} — records were lost"
            ), False
        if not isinstance(record.get("epoch"), int) or record["epoch"] < 1:
            return None, f"bad epoch {record.get('epoch')!r}", False
        return record, None, False

    @staticmethod
    def _cell(state: LedgerState, record: Dict) -> LedgerCell:
        key = record["key"]
        cell = state.cells.get(key)
        if cell is None:
            cell = state.cells[key] = LedgerCell(key=key)
        return cell

    def _apply(self, state: LedgerState, record: Dict) -> None:
        op = record["op"]
        state.records += 1
        if op == OP_OPEN:
            state.epoch = record["epoch"]
            state.opens += 1
            state.closed = None
            state.draining = False
        elif op == OP_LEASE:
            cell = self._cell(state, record)
            cell.state = "leased"
            cell.attempts = record.get("attempt", cell.attempts + 1)
            cell.lease_id = record.get("lease_id")
            cell.worker = record.get("worker")
            cell.lease_epoch = record["epoch"]
            cell.lease_attempt = record.get("attempt", cell.attempts)
            cell.label = record.get("label", cell.label)
            cell.not_before_wall = 0.0
            state.lease_seq = max(state.lease_seq, record.get("lease_seq", 0))
        elif op == OP_READOPT:
            cell = self._cell(state, record)
            cell.lease_epoch = record["epoch"]
        elif op == OP_COMPLETE:
            cell = self._cell(state, record)
            cell.state = "done"
            cell.lease_id = cell.worker = None
        elif op == OP_RETRY:
            cell = self._cell(state, record)
            cell.state = "pending"
            cell.attempts = record.get("attempts", cell.attempts)
            cell.not_before_wall = float(record.get("not_before_wall", 0.0))
            cell.lease_id = cell.worker = None
        elif op == OP_QUARANTINE:
            cell = self._cell(state, record)
            cell.state = "failed"
            cell.lease_id = cell.worker = None
            state.failures.append(
                {
                    "key": record["key"],
                    "index": record.get("index", 0),
                    "label": record.get("label", ""),
                    "kind": record.get("kind", "error"),
                    "message": record.get("message", ""),
                    "attempts": record.get("attempts", cell.attempts),
                }
            )
        elif op == OP_REJECT:
            state.rejects += 1
        elif op == OP_DRAIN:
            state.draining = True
        elif op == OP_CLOSE:
            state.closed = record.get("state")

    # -- append ------------------------------------------------------------

    def append(self, op: str, **fields) -> Dict:
        """Durably append one record (WAL: call *before* mutating state)."""
        if op not in _OPS:
            raise ValueError(f"unknown ledger op {op!r}")
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            if self._truncate_to is not None:
                # Drop the crash-torn tail before the first new record.
                os.ftruncate(self._fd, self._truncate_to)
                self._truncate_to = None
                self._needs_newline = False
        self._seq += 1
        record = {"seq": self._seq, "op": op, **fields}
        record["check"] = checksum(record)
        data = json.dumps(record, sort_keys=True).encode() + b"\n"
        if self._needs_newline:
            data = b"\n" + data
            self._needs_newline = False
        os.write(self._fd, data)
        os.fsync(self._fd)
        return record

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def ledger_summary(path: PathLike) -> Dict:
    """Operator-facing roll-up of a ledger file (``repro fabric ledger``).

    Raises :class:`LedgerCorrupt` (with the byte offset) on damage —
    the CLI turns that into a non-zero exit and a pointer at the bad
    line rather than a stack trace.
    """
    state = FabricLedger(path).replay()
    by_state: Dict[str, int] = {}
    for cell in state.cells.values():
        by_state[cell.state] = by_state.get(cell.state, 0) + 1
    return {
        "path": str(path),
        "epoch": state.epoch,
        "sessions": state.opens,
        "records": state.records,
        "lease_seq": state.lease_seq,
        "cells": by_state,
        "in_flight": [
            {
                "key": cell.key,
                "label": cell.label,
                "worker": cell.worker,
                "lease_id": cell.lease_id,
                "epoch": cell.lease_epoch,
                "attempt": cell.lease_attempt,
            }
            for cell in state.cells.values()
            if cell.state == "leased"
        ],
        "quarantined": list(state.failures),
        "rejects": state.rejects,
        "closed": state.closed,
        "draining": state.draining,
        "torn_tail": state.torn_tail,
    }
