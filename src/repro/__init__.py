"""repro — Concurrent PIM and Load/Store Servicing in PIM-Enabled Memory.

A cycle-level simulator and experiment harness reproducing Gupta et al.,
ISPASS 2025: a PIM-enabled GPU memory subsystem (HBM banks + bank-level
PIM functional units), the SM-to-memory-controller interconnect with
optional separate MEM/PIM virtual channels (VC2), nine memory-controller
scheduling policies including the paper's F3FS, and harnesses regenerating
every evaluation figure.

Quick start::

    from repro import GPUSystem, PolicySpec, SystemConfig
    from repro.workloads import get_gpu_kernel, get_pim_kernel

    config = SystemConfig.scaled().with_vc2
    system = GPUSystem(config, PolicySpec("F3FS"), scale=0.25)
    system.add_kernel(get_gpu_kernel("G6"), num_sms=8, loop=True)
    system.add_kernel(get_pim_kernel("P1"), num_sms=2, loop=True)
    result = system.run()

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.config import SystemConfig
from repro.core import PAPER_POLICY_ORDER, PolicySpec, available_policies, make_policy
from repro.dram import AddressMapper, DRAMTimings
from repro.metrics import fairness_index, speedup, system_throughput
from repro.request import Mode, Request, RequestType
from repro.sim import GPUSystem, KernelResult, SimResult

__version__ = "1.0.0"

__all__ = [
    "AddressMapper",
    "DRAMTimings",
    "GPUSystem",
    "KernelResult",
    "Mode",
    "PAPER_POLICY_ORDER",
    "PolicySpec",
    "Request",
    "RequestType",
    "SimResult",
    "SystemConfig",
    "available_policies",
    "fairness_index",
    "make_policy",
    "speedup",
    "system_throughput",
    "__version__",
]
