"""Struct-of-arrays engine backend and the backend selector.

The object engine (:class:`repro.sim.system.GPUSystem`) is the reference
implementation: every bank, queue, and warp is a Python object and each
cycle walks them with method calls.  The SoA backend
(:class:`repro.engine_soa.system.SoAGPUSystem`) keeps the *hot* per-cycle
state — bank timing deadlines, row-buffer state, per-bank queue ages,
warp readiness — in preallocated numpy arrays and replaces the three
hottest loops (bank/channel state machines, the FR-FCFS pick, SM warp
issue) with vectorized masks and argmin reductions.  Results are
byte-identical to the object engine (``tests/test_engine_soa.py`` proves
store fingerprints match across policies, telemetry, and fast-forward
modes); only wall-clock time differs.

Backend selection, in precedence order:

1. an explicit ``backend=`` argument (``Runner(backend="soa")``,
   ``create_system(..., backend="soa")``, ``repro bench --backend soa``);
2. the ``REPRO_ENGINE`` environment variable (``object`` | ``soa``);
3. the default, ``object``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.config import SystemConfig
from repro.core.policies import PolicySpec

#: Valid engine backend names, in documentation order.
ENGINE_BACKENDS = ("object", "soa")

#: Environment variable consulted when no explicit backend is passed.
ENGINE_ENV = "REPRO_ENGINE"

DEFAULT_BACKEND = "object"


def resolve_backend(value: str, source: str = "backend") -> str:
    """Normalize and validate a backend name.

    Raises ``ValueError`` naming the offending value and the valid
    choices (the PR 5 convention for shard/config errors), with
    ``source`` identifying where the bad value came from (a CLI flag,
    the environment variable, a constructor argument).
    """
    normalized = str(value).strip().lower()
    if normalized not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown {source} {value!r}: valid choices are "
            + ", ".join(ENGINE_BACKENDS)
        )
    return normalized


def backend_from_env(default: str = DEFAULT_BACKEND) -> str:
    """The backend selected by ``REPRO_ENGINE`` (or ``default`` if unset)."""
    raw = os.environ.get(ENGINE_ENV)
    if raw is None or not raw.strip():
        return default
    return resolve_backend(raw, source=f"{ENGINE_ENV} value")


def create_system(
    config: SystemConfig,
    policy: PolicySpec,
    backend: Optional[str] = None,
    **kwargs,
):
    """Build a simulated system under the selected engine backend.

    ``backend`` (validated) beats ``REPRO_ENGINE`` beats the object
    default; remaining keyword arguments are forwarded to the system
    constructor unchanged.  Requesting ``soa`` without numpy installed
    raises an ``ImportError`` explaining the dependency (numpy is a
    declared dependency, so this only happens in stripped environments).
    """
    resolved = (
        resolve_backend(backend) if backend is not None else backend_from_env()
    )
    if resolved == "soa":
        from repro.engine_soa.system import SoAGPUSystem

        return SoAGPUSystem(config, policy, **kwargs)
    from repro.sim.system import GPUSystem

    return GPUSystem(config, policy, **kwargs)
