"""Pooled struct-of-arrays request storage for the handle pipeline.

:class:`RequestArrays` holds the fields the fused NoC hop stages read
as parallel ``array('q')`` columns indexed by a small integer *handle*.
While a request is in flight through the hop rings (see
``engine_soa.ring``) the stages never touch the ``Request`` object —
routing reads (``channel``, ``is_pim``) come straight from the columns,
and the object is materialized (looked up) only at the pipeline
boundaries: the L2 lookup (tag/MSHR state keys on the object), the
memory-controller ingress, telemetry fallbacks, and reply delivery.

Handle lifetime
---------------
Handles are recycled through a free list.  Two lifetimes exist:

* **Transient** (``request._slot is None`` — writebacks, user traces,
  telemetry runs): acquired when the request enters its first ring,
  released when it leaves the NoC (MC ingress, or an L2 hit/merge).
  The pool's steady-state size is therefore bounded by the total ring
  capacity, and the free list churns constantly.
* **Pinned** (replay-recycled requests): the handle stays bound to the
  recorded request across kernel launches — the routing columns are
  immutable for a recorded request, so a later flight reuses the handle
  with zero column writes (only the flight timestamp is refreshed).
  When the replay cache rebuilds a dirty request it transfers the
  handle to the fresh object (see ``replay.WarpProgramCache``).

Columns are typed ``array('q')`` (C ``int64``) so a compiled kernel can
read them through the buffer protocol without marshalling.
"""

from __future__ import annotations

from array import array
from typing import List, Optional

from repro.request import Request, RequestType

#: Initial pool capacity; the pool doubles as needed.
_INITIAL = 512

#: ``rtype`` column encoding.
RTYPE_LOAD = 0
RTYPE_STORE = 1
RTYPE_PIM = 2

_RTYPE_CODE = {
    RequestType.MEM_LOAD: RTYPE_LOAD,
    RequestType.MEM_STORE: RTYPE_STORE,
    RequestType.PIM: RTYPE_PIM,
}


class RequestArrays:
    """Struct-of-arrays pool of in-flight request fields.

    ``objs[h]`` carries the originating :class:`Request` for boundary
    materialization; every other column is a plain ``int64`` array.
    """

    __slots__ = (
        "rtype",
        "address",
        "channel",
        "bank",
        "row",
        "kernel_id",
        "is_pim",
        "noc_entry",
        "objs",
        "_free",
        "size",
    )

    def __init__(self, initial: int = _INITIAL) -> None:
        zeros = bytes(8 * initial)
        self.rtype = array("q", zeros)
        self.address = array("q", zeros)
        self.channel = array("q", zeros)
        self.bank = array("q", zeros)
        self.row = array("q", zeros)
        self.kernel_id = array("q", zeros)
        self.is_pim = array("q", zeros)
        self.noc_entry = array("q", zeros)
        self.objs: List[Optional[Request]] = [None] * initial
        self._free = list(range(initial - 1, -1, -1))  # pop() yields 0 first
        self.size = initial

    # -- lifetime ------------------------------------------------------------

    def acquire(self, request: Request, cycle: int) -> int:
        """Bind a request to a pool slot and return its handle.

        Copies the routing/record fields into the columns and stamps the
        flight's NoC-entry cycle.  The handle is also stored on the
        request (``request._handle``) so pinned requests skip this copy
        on later flights.
        """
        free = self._free
        if not free:
            self._grow()
            free = self._free
        h = free.pop()
        self.rtype[h] = _RTYPE_CODE[request.type]
        self.address[h] = request.address
        self.channel[h] = request.channel
        self.bank[h] = request.bank
        self.row[h] = request.row
        self.kernel_id[h] = request.kernel_id
        self.is_pim[h] = 1 if request.is_pim else 0
        self.noc_entry[h] = cycle
        self.objs[h] = request
        request._handle = h
        return h

    def release(self, request: Request) -> None:
        """Return a transient request's handle to the free list."""
        h = request._handle
        request._handle = -1
        self.objs[h] = None
        self._free.append(h)

    def transfer(self, h: int, request: Request) -> None:
        """Re-point a pinned handle at a rebuilt request object.

        Used by the replay cache when a recorded request is rebuilt
        fresh: the record (and therefore every column) is unchanged, so
        only the object column needs the new reference.
        """
        self.objs[h] = request
        request._handle = h

    def materialize(self, h: int) -> Request:
        """The request object behind a handle (boundary use only)."""
        request = self.objs[h]
        assert request is not None
        return request

    # -- accounting ----------------------------------------------------------

    @property
    def live(self) -> int:
        return self.size - len(self._free)

    def _grow(self) -> None:
        old = self.size
        grow = old  # double
        zeros = bytes(8 * grow)
        for name in ("rtype", "address", "channel", "bank", "row", "kernel_id", "is_pim", "noc_entry"):
            column = getattr(self, name)
            column.extend(array("q", zeros))
        self.objs.extend([None] * grow)
        self._free.extend(range(old + grow - 1, old - 1, -1))
        self.size = old + grow
