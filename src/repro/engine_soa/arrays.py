"""Preallocated array state backing the SoA engine.

Three pieces live here:

* :class:`BankArrays` — every per-bank quantity the hot loops touch, as
  ``(num_channels, banks_per_channel)`` numpy arrays: the five timing
  rails, the open row, the conflict/issued flags, and the per-bank MEM
  queue digests (live count, oldest arrival seq, oldest row-hit seq).
* :class:`ArrayBankState` — a drop-in replacement for
  :class:`repro.dram.bank.BankState` whose fields are *views* into the
  arrays.  Cold paths (other policies, the PIM executor's row switch,
  refresh, tests poking ``bank.state``) keep working unchanged through
  the property layer; only the fused hot loops read the arrays directly.
* :class:`SoAMemQueue` — the per-bank indexed MEM queue extended to
  maintain the array digests eagerly, so the FR-FCFS pick is a masked
  argmin instead of a per-bank scan.

Sentinels: ``NOROW`` (-1) marks a closed row buffer (rows are
non-negative everywhere else); ``NOSEQ`` (a huge seq) marks "no live
request", so it never wins an argmin against a real arrival seq.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy is a declared dep
    raise ImportError(
        "the SoA engine backend requires numpy; install numpy or select "
        "the object backend (REPRO_ENGINE=object / backend='object')"
    ) from exc

from repro.core.memq import BankIndexedMemQueue
from repro.dram.bank import AccessKind
from repro.request import Request

#: ``open_row`` value for a closed (precharged) row buffer.
NOROW = -1

#: ``head_seq``/``hit_seq`` value when no live request qualifies.  Larger
#: than any real ``mc_seq`` (which counts arrivals), so masked argmin
#: reductions never select it over a live candidate.
NOSEQ = 1 << 62

#: Penalty added to non-hit candidates in the combined ``score`` digest:
#: ``score = min(hit_seq, head_seq + HIT_BIAS)``.  Any row hit
#: (< HIT_BIAS) beats any non-hit (>= HIT_BIAS), and within each class
#: the smaller arrival seq wins — the FR-FCFS order, in one argmin.
#: A bank with no live work scores ``NOSEQ`` (>= ``NOSEQ`` means idle).
HIT_BIAS = 1 << 61


class BankArrays:
    """All per-bank hot state as ``(channels, banks)`` arrays."""

    __slots__ = (
        "num_channels",
        "banks_per_channel",
        "accept_at",
        "next_col",
        "pre_ready",
        "act_ready",
        "busy_until",
        "open_row",
        "head_seq",
        "hit_seq",
        "score",
        "bank_live",
        "conflict",
        "issued",
        "has_conflict",
        "has_issued",
    )

    def __init__(self, num_channels: int, banks_per_channel: int) -> None:
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        shape = (num_channels, banks_per_channel)
        # Timing rails (cycles).
        self.accept_at = np.zeros(shape, dtype=np.int64)
        self.next_col = np.zeros(shape, dtype=np.int64)
        self.pre_ready = np.zeros(shape, dtype=np.int64)
        self.act_ready = np.zeros(shape, dtype=np.int64)
        self.busy_until = np.zeros(shape, dtype=np.int64)
        # Row-buffer state.
        self.open_row = np.full(shape, NOROW, dtype=np.int64)
        # MEM-queue digests (maintained by SoAMemQueue).
        self.head_seq = np.full(shape, NOSEQ, dtype=np.int64)
        self.hit_seq = np.full(shape, NOSEQ, dtype=np.int64)
        self.score = np.full(shape, NOSEQ, dtype=np.int64)
        self.bank_live = np.zeros(shape, dtype=np.int64)
        # FR-FCFS switch-trigger flags.
        self.conflict = np.zeros(shape, dtype=bool)
        self.issued = np.zeros(shape, dtype=bool)
        # Per-channel sticky "any bit may be set" flags gating the fused
        # decide's conflict/issued flag clears.
        self.has_conflict = [False] * num_channels
        self.has_issued = [False] * num_channels


class ArrayBankState:
    """``BankState``-compatible facade over one bank's array slots.

    Every field of the dataclass is exposed as a property that reads or
    writes the corresponding array cell, cast back to plain Python types
    so values stored into requests/stats stay JSON-clean.  Installed as
    ``bank.state`` on every bank of an SoA system; note ``Bank.reset()``
    would replace it with a plain ``BankState`` (SoA systems are built
    fresh per run and never reset mid-run).
    """

    __slots__ = ("_a", "_ch", "_bank", "_memq", "busy_intervals")

    def __init__(self, arrays: BankArrays, channel: int, bank: int, memq: "SoAMemQueue") -> None:
        self._a = arrays
        self._ch = channel
        self._bank = bank
        self._memq = memq
        self.busy_intervals = []

    # -- row buffer ------------------------------------------------------

    @property
    def open_row(self):
        row = self._a.open_row[self._ch, self._bank]
        return int(row) if row >= 0 else None

    @open_row.setter
    def open_row(self, value) -> None:
        self._a.open_row[self._ch, self._bank] = NOROW if value is None else value
        # The row-hit digest is defined against the open row: re-derive it
        # whenever a cold path (PIM row switch, refresh) moves the row.
        self._memq.resync_hit(self._bank)

    # -- timing rails ----------------------------------------------------

    @property
    def accept_at(self) -> int:
        return int(self._a.accept_at[self._ch, self._bank])

    @accept_at.setter
    def accept_at(self, value: int) -> None:
        self._a.accept_at[self._ch, self._bank] = value

    @property
    def next_col(self) -> int:
        return int(self._a.next_col[self._ch, self._bank])

    @next_col.setter
    def next_col(self, value: int) -> None:
        self._a.next_col[self._ch, self._bank] = value

    @property
    def pre_ready(self) -> int:
        return int(self._a.pre_ready[self._ch, self._bank])

    @pre_ready.setter
    def pre_ready(self, value: int) -> None:
        self._a.pre_ready[self._ch, self._bank] = value

    @property
    def act_ready(self) -> int:
        return int(self._a.act_ready[self._ch, self._bank])

    @act_ready.setter
    def act_ready(self, value: int) -> None:
        self._a.act_ready[self._ch, self._bank] = value

    @property
    def busy_until(self) -> int:
        return int(self._a.busy_until[self._ch, self._bank])

    @busy_until.setter
    def busy_until(self, value: int) -> None:
        self._a.busy_until[self._ch, self._bank] = value

    # -- switch-trigger flags -------------------------------------------

    @property
    def conflict_bit(self) -> bool:
        return bool(self._a.conflict[self._ch, self._bank])

    @conflict_bit.setter
    def conflict_bit(self, value: bool) -> None:
        self._a.conflict[self._ch, self._bank] = value
        if value:
            self._a.has_conflict[self._ch] = True

    @property
    def issued_since_switch(self) -> bool:
        return bool(self._a.issued[self._ch, self._bank])

    @issued_since_switch.setter
    def issued_since_switch(self, value: bool) -> None:
        self._a.issued[self._ch, self._bank] = value
        if value:
            self._a.has_issued[self._ch] = True

    # -- BankState behaviour --------------------------------------------

    def classify(self, row: int) -> AccessKind:
        open_row = self._a.open_row[self._ch, self._bank]
        if open_row < 0:
            return AccessKind.MISS
        if open_row == row:
            return AccessKind.HIT
        return AccessKind.CONFLICT

    def is_idle(self, cycle: int) -> bool:
        return cycle >= self._a.busy_until[self._ch, self._bank]


class SoAMemQueue(BankIndexedMemQueue):
    """Indexed MEM queue that mirrors its per-bank digests into arrays.

    On top of the base queue's lazily-trimmed deques, three per-bank
    digests are kept *eagerly* consistent in :class:`BankArrays`:

    * ``bank_live[ch, b]`` — live request count (mirror of the base
      class's ``_bank_live`` list),
    * ``head_seq[ch, b]`` — ``mc_seq`` of the oldest live request,
    * ``hit_seq[ch, b]`` — ``mc_seq`` of the oldest live request whose
      row matches the bank's *currently open* row.

    Appends carry a fresh, strictly increasing ``mc_seq`` (the
    controller stamps it before the append), so an append only lowers a
    digest when it was empty; removals re-derive a digest only when the
    removed request *was* the digest.  Row-buffer moves re-derive
    ``hit_seq`` via :meth:`resync_hit` (called by ``ArrayBankState`` and
    the fused issue path).
    """

    __slots__ = ("_arrays", "_channel")

    def __init__(self, num_banks: int, arrays: BankArrays, channel: int) -> None:
        super().__init__(num_banks)
        self._arrays = arrays
        self._channel = channel

    def append(self, request: Request) -> None:
        super().append(request)
        a = self._arrays
        ch = self._channel
        bank = request.bank
        a.bank_live[ch, bank] += 1
        seq = request.mc_seq
        head = int(a.head_seq[ch, bank])
        hit = int(a.hit_seq[ch, bank])
        if head == NOSEQ:
            head = seq
            a.head_seq[ch, bank] = seq
        if hit == NOSEQ and a.open_row[ch, bank] == request.row:
            hit = seq
            a.hit_seq[ch, bank] = seq
        biased = head + HIT_BIAS
        a.score[ch, bank] = hit if hit < biased else biased

    def remove(self, request: Request) -> None:
        super().remove(request)
        a = self._arrays
        ch = self._channel
        bank = request.bank
        a.bank_live[ch, bank] -= 1
        seq = request.mc_seq
        if a.head_seq[ch, bank] == seq:
            head = self.bank_head(bank)
            a.head_seq[ch, bank] = head.mc_seq if head is not None else NOSEQ
        if a.hit_seq[ch, bank] == seq:
            self.resync_hit(bank)  # also refreshes the score
        else:
            hit = int(a.hit_seq[ch, bank])
            biased = int(a.head_seq[ch, bank]) + HIT_BIAS
            a.score[ch, bank] = hit if hit < biased else biased

    def resync_hit(self, bank: int) -> None:
        """Re-derive ``hit_seq`` (and the score) for ``bank``."""
        a = self._arrays
        ch = self._channel
        row = int(a.open_row[ch, bank])
        if row < 0:
            hit = NOSEQ
        else:
            head = self.row_head(bank, row)
            hit = head.mc_seq if head is not None else NOSEQ
        a.hit_seq[ch, bank] = hit
        biased = int(a.head_seq[ch, bank]) + HIT_BIAS
        a.score[ch, bank] = hit if hit < biased else biased
