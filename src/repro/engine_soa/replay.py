"""Warp-program record/replay cache for looping kernels.

The co-execution methodology re-launches each kernel in a loop, and
``KernelInstance.warp_program`` deliberately seeds each warp's RNG
independently of the launch number — every launch replays the *same*
request trace.  The object engine still pays the full generation cost
(numpy RNG draws, address encoding, dataclass construction overhead)
on every launch; under the SoA backend the first launch records each
warp's phases and later launches replay them, rebuilding only the
:class:`~repro.request.Request` objects (which are mutated in flight
and must be fresh per launch).

Recording is exact: a replayed phase carries requests with the same
type/address/kernel_id/pim_op/size and the same pre-decoded
channel/bank/row/column, constructed in the same order and at the same
point in the generator protocol (lazily, as each phase is requested),
so global request-id consumption and RNG-free behaviour match the
original stream.  Only the synthetic spec classes are cached — their
programs depend solely on ``(seed, spec name, sm_slot, warp)``; unknown
user specs fall back to normal generation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.gpu.kernel import KernelInstance, Phase, WarpProgram
from repro.request import Request
from repro.workloads.synthetic import GPUKernelProfile, PIMGemvKernel, PIMStreamKernel

#: Spec classes whose warp programs are launch-invariant by construction.
#: Exact-type match (not isinstance): a subclass may override
#: ``warp_program`` with launch-dependent behaviour.
REPLAYABLE_SPECS = (GPUKernelProfile, PIMStreamKernel, PIMGemvKernel)

#: One recorded request: constructor fields + pre-decoded address fields.
_RequestRecord = Tuple[object, int, int, object, int, int, int, int, int]

#: One recorded phase: (compute_cycles, wait_for_replies, requests).
_PhaseRecord = Tuple[int, bool, Tuple[_RequestRecord, ...]]


def _record_request(request: Request) -> _RequestRecord:
    return (
        request.type,
        request.address,
        request.kernel_id,
        request.pim_op,
        request.size,
        request.channel,
        request.bank,
        request.row,
        request.column,
    )


def _replay_request(record: _RequestRecord) -> Request:
    rtype, address, kernel_id, pim_op, size, channel, bank, row, column = record
    request = Request(type=rtype, address=address, kernel_id=kernel_id, pim_op=pim_op, size=size)
    request.channel, request.bank, request.row, request.column = channel, bank, row, column
    return request


class WarpProgramCache:
    """Per-system cache of recorded warp programs.

    Keyed by ``(kernel_id, sm_slot, warp)`` — the full determinant of a
    synthetic warp program for a fixed system seed.  A recording is only
    replayed once marked complete (the original generator was exhausted);
    a warp abandoned mid-program (never happens in normal runs, but
    cheap to guard) is simply re-recorded on the next launch.
    """

    def __init__(self) -> None:
        self._programs: Dict[Tuple[int, int, int], List[_PhaseRecord]] = {}
        self._complete: Dict[Tuple[int, int, int], bool] = {}

    def program(self, key: Tuple[int, int, int], factory) -> WarpProgram:
        if self._complete.get(key):
            return self._replay(self._programs[key])
        return self._record(key, factory())

    def _record(self, key: Tuple[int, int, int], source: WarpProgram) -> Iterator[Phase]:
        phases: List[_PhaseRecord] = []
        self._programs[key] = phases
        self._complete[key] = False
        for phase in source:
            phases.append(
                (
                    phase.compute_cycles,
                    phase.wait_for_replies,
                    tuple(_record_request(r) for r in phase.requests),
                )
            )
            yield phase
        self._complete[key] = True

    @staticmethod
    def _replay(phases: List[_PhaseRecord]) -> Iterator[Phase]:
        for compute_cycles, wait_for_replies, records in phases:
            yield Phase(
                compute_cycles=compute_cycles,
                requests=[_replay_request(r) for r in records],
                wait_for_replies=wait_for_replies,
            )


class ReplayKernelInstance(KernelInstance):
    """Kernel instance whose warp programs go through a replay cache.

    The cache is shared across launches of the same kernel (it lives on
    the system, keyed by kernel id), so the second and later launches of
    a looping kernel skip RNG and address-encoding work entirely.
    """

    def __init__(self, spec, ctx, kernel_id: int, seed: int, cache: WarpProgramCache) -> None:
        super().__init__(spec, ctx, kernel_id, seed=seed)
        self._cache = cache

    def warp_program(self, sm_slot: int, warp: int) -> WarpProgram:
        key = (self.kernel_id, sm_slot, warp)
        return self._cache.program(key, lambda: super(ReplayKernelInstance, self).warp_program(sm_slot, warp))
