"""Warp-program record/replay cache for looping kernels.

The co-execution methodology re-launches each kernel in a loop, and
``KernelInstance.warp_program`` deliberately seeds each warp's RNG
independently of the launch number — every launch replays the *same*
request trace.  The object engine still pays the full generation cost
(numpy RNG draws, address encoding, dataclass construction overhead)
on every launch; under the SoA backend the first launch records each
warp's phases and later launches replay them, rebuilding only the
:class:`~repro.request.Request` objects (which are mutated in flight
and must be fresh per launch).

Recording is exact: a replayed phase carries requests with the same
type/address/kernel_id/pim_op/size and the same pre-decoded
channel/bank/row/column, constructed in the same order and at the same
point in the generator protocol (lazily, as each phase is requested),
so global request-id consumption and RNG-free behaviour match the
original stream.  Only the synthetic spec classes are cached — their
programs depend solely on ``(seed, spec name, sm_slot, warp)``; unknown
user specs fall back to normal generation.

Request recycling
-----------------
Rebuilding ~170k dataclass instances per co-run is itself a measurable
slice of the SoA hot path, so each cached phase carries a *slot*
(``[live_count, phase]``) shared by its request objects.  The engine
returns every finished request to its slot; when the count reaches
zero the next launch re-yields the *same* ``Phase`` object.  Per
request, reuse is decided by where it travelled: a request that
entered a memory controller's MEM queue may survive as a stale
tombstone reference in the queue's lazy index deques, so its object is
abandoned to the garbage collector and rebuilt from its record (same
fields, fresh identity); PIM requests (popped physically) and requests
that never reached a controller (L2 hits / MSHR merges) are reused in
place, refreshing only the per-flight fields a later stage reads
before writing (the global request id, to keep id consumption
identical to the object engine, and the ``cycle_created`` stamp
guard).  Telemetry reads every hop timestamp, so enabling telemetry
turns recycling off and drops the existing slots.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.gpu.kernel import KernelInstance, Phase, WarpProgram
from repro import request as _request_mod
from repro.request import Request
from repro.workloads.synthetic import GPUKernelProfile, PIMGemvKernel, PIMStreamKernel

#: Spec classes whose warp programs are launch-invariant by construction.
#: Exact-type match (not isinstance): a subclass may override
#: ``warp_program`` with launch-dependent behaviour.
REPLAYABLE_SPECS = (GPUKernelProfile, PIMStreamKernel, PIMGemvKernel)

#: One recorded request: constructor fields + pre-decoded address fields.
_RequestRecord = Tuple[object, int, int, object, int, int, int, int, int]

#: One recorded phase: (compute_cycles, wait_for_replies, requests).
_PhaseRecord = Tuple[int, bool, Tuple[_RequestRecord, ...]]


def _record_request(request: Request) -> _RequestRecord:
    return (
        request.type,
        request.address,
        request.kernel_id,
        request.pim_op,
        request.size,
        request.channel,
        request.bank,
        request.row,
        request.column,
    )


def _replay_request(record: _RequestRecord) -> Request:
    rtype, address, kernel_id, pim_op, size, channel, bank, row, column = record
    request = Request(type=rtype, address=address, kernel_id=kernel_id, pim_op=pim_op, size=size)
    request.channel, request.bank, request.row, request.column = channel, bank, row, column
    return request


class WarpProgramCache:
    """Per-system cache of recorded warp programs.

    Keyed by ``(kernel_id, sm_slot, warp)`` — the full determinant of a
    synthetic warp program for a fixed system seed.  A recording is only
    replayed once marked complete (the original generator was exhausted);
    a warp abandoned mid-program (never happens in normal runs, but
    cheap to guard) is simply re-recorded on the next launch.
    """

    def __init__(self) -> None:
        self._programs: Dict[Tuple[int, int, int], List[_PhaseRecord]] = {}
        self._complete: Dict[Tuple[int, int, int], bool] = {}
        # Per-program recycling slots, parallel to ``_programs[key]``:
        # ``[live_count, phase]`` or None (recycling off when recorded).
        self._phase_slots: Dict[Tuple[int, int, int], List[Optional[list]]] = {}
        #: Master switch for request recycling (see module docstring).
        #: Cleared (never re-set) when telemetry needs fresh stamps.
        self.recycle = True
        #: Optional RequestArrays (engine_soa.handles) of the owning
        #: system: replayed requests pin their NoC handle across
        #: launches, so a rebuilt request inherits the handle of the
        #: object it replaces (the record — and therefore every pool
        #: column — is identical; only the object pointer moves).
        self.pool = None

    def disable_recycling(self) -> None:
        """Stop reusing request objects and drop the existing slots.

        Called when telemetry is enabled: recycled requests carry stale
        hop timestamps from earlier flights, which telemetry would fold
        into its latency accounting.  Live requests keep their (now
        orphaned) slots; the counts decay harmlessly.
        """
        self.recycle = False
        self._phase_slots = {}

    def program(self, key: Tuple[int, int, int], factory) -> WarpProgram:
        if self._complete.get(key):
            return self._replay(key, self._programs[key])
        return self._record(key, factory())

    def _record(self, key: Tuple[int, int, int], source: WarpProgram) -> Iterator[Phase]:
        phases: List[_PhaseRecord] = []
        slots: List[Optional[list]] = []
        self._programs[key] = phases
        self._phase_slots[key] = slots
        self._complete[key] = False
        for phase in source:
            phases.append(
                (
                    phase.compute_cycles,
                    phase.wait_for_replies,
                    tuple(_record_request(r) for r in phase.requests),
                )
            )
            if self.recycle:
                slot = [len(phase.requests), phase]
                for request in phase.requests:
                    request._slot = slot
                slots.append(slot)
            else:
                slots.append(None)
            yield phase
        self._complete[key] = True

    def _replay(self, key: Tuple[int, int, int], phases: List[_PhaseRecord]) -> Iterator[Phase]:
        slots = self._phase_slots.get(key) if self.recycle else None
        index = 0
        for compute_cycles, wait_for_replies, records in phases:
            slot = slots[index] if slots is not None else None
            if slot is not None and slot[0] == 0:
                # Every request of the previous launch's phase finished:
                # reuse the phase.  Requests that entered a MEM controller
                # queue may survive as stale tombstone references in its
                # lazy index deques, so those objects are abandoned to the
                # GC and rebuilt from their records (same fields, fresh
                # identity); the rest are reused in place, refreshing the
                # global id (identical id-stream consumption to a fresh
                # build) and the one stamp guarded by a read-before-write.
                phase = slot[1]
                requests = phase.requests
                slot[0] = len(requests)
                ids = _request_mod._request_ids
                pool = self.pool
                pool_objs = pool.objs if pool is not None else None
                for idx, request in enumerate(requests):
                    if request.mc_seq >= 0 and not request.is_pim:
                        fresh = _replay_request(records[idx])
                        fresh._slot = slot
                        if pool_objs is not None:
                            h = request._handle
                            if h >= 0:
                                fresh._handle = h
                                pool_objs[h] = fresh
                        requests[idx] = fresh
                    else:
                        request.id = next(ids)
                        request.cycle_created = -1
                index += 1
                yield phase
                continue
            requests = [_replay_request(r) for r in records]
            phase = Phase(
                compute_cycles=compute_cycles,
                requests=requests,
                wait_for_replies=wait_for_replies,
            )
            if slots is not None:
                slot = [len(requests), phase]
                for request in requests:
                    request._slot = slot
                slots[index] = slot
            index += 1
            yield phase


class ReplayKernelInstance(KernelInstance):
    """Kernel instance whose warp programs go through a replay cache.

    The cache is shared across launches of the same kernel (it lives on
    the system, keyed by kernel id), so the second and later launches of
    a looping kernel skip RNG and address-encoding work entirely.
    """

    def __init__(self, spec, ctx, kernel_id: int, seed: int, cache: WarpProgramCache) -> None:
        super().__init__(spec, ctx, kernel_id, seed=seed)
        self._cache = cache

    def warp_program(self, sm_slot: int, warp: int) -> WarpProgram:
        key = (self.kernel_id, sm_slot, warp)
        return self._cache.program(key, lambda: super(ReplayKernelInstance, self).warp_program(sm_slot, warp))
