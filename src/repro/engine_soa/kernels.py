"""Build-and-load machinery for the compiled SoA kernels.

The SoA engine's remaining scalar hot loops operate on persistent typed
buffers (the ``BankArrays`` numpy rows, the handle rings' ``array('q')``
storage), so they can be compiled to native code without any per-cycle
marshalling.  This module compiles ``_kernels.c`` with the system C
compiler on first use and exposes the functions through ctypes.

Everything degrades gracefully:

* no compiler, a failed build, or a failed load → ``load_kernels()``
  returns ``None`` and the engine keeps its pure-Python/numpy paths;
* ``REPRO_SOA_COMPILED=0`` (or ``off``/``false``) skips the attempt
  entirely — the escape hatch if a toolchain miscompiles;
* an ABI mismatch (the shared object was built against different
  ``NOSEQ``/``HIT_BIAS`` constants) is rejected at load time.

The shared object is cached in the user's temp directory keyed by a
hash of the C source, so repeated runs skip the compile.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("_kernels.c")

#: Set by load_kernels for diagnostics (``repro bench`` reports it).
last_status = "not attempted"


def compiled_enabled() -> bool:
    """Whether the env allows the compiled kernels (default: yes)."""
    return os.environ.get("REPRO_SOA_COMPILED", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def _cache_path(source: bytes) -> Path:
    digest = hashlib.sha256(source).hexdigest()[:16]
    return Path(tempfile.gettempdir()) / f"repro_soa_kernels_{digest}.so"


def _build(source_path: Path, out_path: Path) -> bool:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return False
    tmp = out_path.with_suffix(f".tmp{os.getpid()}.so")
    cmd = [compiler, "-O2", "-shared", "-fPIC", str(source_path), "-o", str(tmp)]
    try:
        proc = subprocess.run(cmd, capture_output=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return False
    if proc.returncode != 0:
        return False
    try:
        os.replace(tmp, out_path)  # atomic: concurrent builders converge
    except OSError:
        tmp.unlink(missing_ok=True)
        return False
    return True


class SoAKernels:
    """ctypes facade over the compiled kernel functions."""

    __slots__ = ("lib", "frfcfs_decide", "path")

    def __init__(self, lib: ctypes.CDLL, path: Path) -> None:
        self.lib = lib
        self.path = path
        decide = lib.frfcfs_decide
        decide.argtypes = [
            ctypes.c_void_p,  # ptrs (per-channel pointer table row)
            ctypes.c_longlong,  # nbanks
            ctypes.c_longlong,  # cycle
            ctypes.c_longlong,  # pim_older
            ctypes.c_longlong,  # has_conflict
            ctypes.c_longlong,  # has_issued
            ctypes.c_void_p,  # out[4]
        ]
        decide.restype = ctypes.c_long
        self.frfcfs_decide = decide


def load_kernels() -> Optional[SoAKernels]:
    """Compile (if needed) and load the kernels; None on any failure."""
    global last_status
    if not compiled_enabled():
        last_status = "disabled (REPRO_SOA_COMPILED)"
        return None
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        last_status = "source missing"
        return None
    path = _cache_path(source)
    if not path.exists() and not _build(_SOURCE, path):
        last_status = "build failed (no toolchain?)"
        return None
    try:
        lib = ctypes.CDLL(str(path))
    except OSError:
        last_status = "load failed"
        return None
    try:
        abi = lib.kernel_abi
    except AttributeError:
        last_status = "ABI symbol missing"
        return None
    abi.argtypes = [ctypes.c_void_p]
    abi.restype = ctypes.c_long
    out = (ctypes.c_longlong * 3)()
    abi(ctypes.byref(out))
    from repro.engine_soa.arrays import HIT_BIAS, NOSEQ

    if out[0] != NOSEQ or out[1] != HIT_BIAS or out[2] != 1:
        last_status = "ABI mismatch"
        return None
    last_status = f"loaded ({path.name})"
    return SoAKernels(lib, path)
