"""Struct-of-arrays engine: ``SoAGPUSystem``.

A drop-in subclass of :class:`repro.sim.system.GPUSystem` that keeps the
hot per-cycle state in :class:`~repro.engine_soa.arrays.BankArrays` and
replaces the three hottest stage loops with fused implementations:

* **controllers** — FR-FCFS decide + issue collapsed into one pass over
  the bank arrays: the conflict-bit update, the all-stalled check, and
  the hit/oldest pick are masked reductions; the winning request's DRAM
  command schedule (the ``Bank.schedule`` math) is inlined on the array
  cells.
* **sms** — due-event processing with batched readiness classification,
  a full-output-queue fast path that skips the issue scan entirely
  (with no L1 and a single VC, nothing can issue into a full queue),
  and an inlined issue loop with direct queue access.
* **crossbar / l2 / mc_ingress / completions** — the single-VC cases of
  the object stages with the per-request indirection (``heads()`` lists,
  ``can_push``/``pop_matching`` dispatch) flattened out.

Exactness is the design invariant, not an aspiration: every fused path
replicates the object engine's statement order (queue removal before
rail updates, wake/dirty bookkeeping, stats and telemetry gating), and
every configuration a fused path does not cover — telemetry attached,
two virtual channels, mesh topology, refresh enabled, a policy other
than plain FR-FCFS — falls back to the inherited object implementation
mid-flight.  The object and SoA backends therefore produce byte-identical
``SimResult``/store fingerprints (``tests/test_engine_soa.py``).

Warp programs of looping synthetic kernels are additionally wrapped in a
record/replay cache (:mod:`repro.engine_soa.replay`): relaunches skip
RNG draws and address encoding.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left

import numpy as np

from repro.cache.l2 import LookupResult
from repro.config import SystemConfig
from repro.core.controller import NEVER, MemoryController
from repro.dram.bank import AccessKind
from repro.core.policies import PolicySpec
from repro.core.policies.frfcfs import FRFCFS
from repro.engine_soa.arrays import HIT_BIAS, NOSEQ, ArrayBankState, BankArrays, SoAMemQueue
from repro.engine_soa.primitives import warp_ready_batch
from repro.engine_soa.replay import REPLAYABLE_SPECS, ReplayKernelInstance, WarpProgramCache
from repro.gpu.kernel import KernelInstance, LaunchContext
from repro.gpu.sm import SM
from repro.request import Mode, Request, RequestType
from repro.sim.system import GPUSystem, KernelRun

#: Minimum popped due entries for the vectorized readiness classification;
#: below this the numpy gather costs more than the scalar checks.
_WARP_BATCH_MIN = 8

# AccessKind singletons hoisted out of the issue path.
_HIT = AccessKind.HIT
_MISS = AccessKind.MISS
_CONFLICT = AccessKind.CONFLICT


class _WakeFilteredController(MemoryController):
    """FR-FCFS controller whose ``enqueue`` drops provably-inert wakes.

    The dirty flag exists so an arrival can change the next decide.  For
    plain FR-FCFS (no refresh) most arrivals provably cannot:

    * while switching, the post-drain tick re-reads the queues anyway
      (and the drain-complete cycle only depends on in-flight work);
    * a PIM arrival behind an existing PIM head leaves both the FCFS head
      and the oldest-is-PIM comparison unchanged;
    * a MEM arrival in PIM mode with a live PIM head carries a larger
      ``mc_seq`` than that head, so the older-MEM switch check stays
      false until the head itself changes (our own issue);
    * the first PIM arrival in MEM mode has the largest ``mc_seq`` of
      any queued request, so oldest-is-other stays false while the MEM
      queue is non-empty (and MEM drain re-evaluates the fallback).

    In each retracted case the controller is already parked at (or
    active before) the next cycle its decide could change, so skipping
    the wake leaves the issue stream bit-identical.  Telemetry runs keep
    every wake — mc-blocked attribution snapshots depend on arrival-time
    state.
    """

    #: Under the all-fused array scheduler: ``(wake_array, channel, system)``.
    #: Enqueues that survive the retraction filter signal the array directly,
    #: replacing the active-set/wake-heap plumbing of the object stage.
    _soa_sched = None

    def enqueue(self, request: Request, cycle: int) -> bool:
        dirty_before = self._dirty
        if not MemoryController.enqueue(self, request, cycle):
            return False
        if self.telemetry is not None:
            return True
        if self._switch_target is not None:
            self._dirty = dirty_before
        elif request.is_pim:
            if len(self.pim_queue) > 1 or (self.mode is Mode.MEM and self.mem_queue):
                self._dirty = dirty_before
        elif self.mode is Mode.PIM and self.pim_queue:
            self._dirty = dirty_before
        if self._dirty and self._soa_sched is not None:
            wake, ch, system = self._soa_sched
            wake[ch] = 0
            system._ctl_min = 0
        return True


class _WakeFilteredSM(SM):
    """SM (no L1) whose ``receive_reply`` drops provably-inert wakes.

    A reply always decrements ``outstanding_loads``; that only matters if
    an issuable warp exists (the outstanding limit may now pass).  The
    other way a reply changes the next step is by re-arming its warp's
    phase advance, which pushes a due entry at ``max(compute_until,
    cycle)``: a push at ``cycle`` must be processed this very step, and a
    future push below the parked wake needs the earlier wake the dirty
    flag provides.  Every other reply leaves the next step a no-op, so
    the wake (and the step's full warp rescan) is skipped.
    """

    def receive_reply(self, request: Request, cycle: int) -> None:
        dirty_before = self._dirty
        SM.receive_reply(self, request, cycle)
        if self._issuable:
            return
        warp = self.warps[request.warp]
        if (
            not warp.done
            and not warp.pending
            and not (warp.wait_for_replies and warp.waiting_replies > 0)
        ):
            # The base method pushed a due entry at max(compute_until, cycle).
            until = warp.compute_until
            if until <= cycle or until < self._next_wake:
                return
        self._dirty = dirty_before


class SoAGPUSystem(GPUSystem):
    """GPUSystem with struct-of-arrays hot loops (see module docstring)."""

    def __init__(self, config: SystemConfig, policy: PolicySpec, **kwargs) -> None:
        super().__init__(config, policy, **kwargs)
        num_banks = config.banks_per_channel
        self._ba = BankArrays(config.num_channels, num_banks)
        self._timings = config.timings
        self._vc1 = config.num_virtual_channels == 1
        self._warp_cache = WarpProgramCache()
        # Per-controller fused-path eligibility: plain FR-FCFS (subclasses
        # like FRFCFSCap override decide) and no refresh machinery.  The
        # telemetry gate is checked per call — it can be enabled later.
        self._fused_ctl = []
        for ch, controller in enumerate(self.controllers):
            queue = SoAMemQueue(num_banks, self._ba, ch)
            controller.mem_queue = queue
            for b, bank in enumerate(controller.channel.banks):
                bank.state = ArrayBankState(self._ba, ch, b, queue)
            fused = type(controller.policy) is FRFCFS and not controller.refresh.enabled
            self._fused_ctl.append(fused)
            if fused:
                # Same object, stricter enqueue: drop wakes that cannot
                # change a decide (see _WakeFilteredController).
                controller.__class__ = _WakeFilteredController
        for sm in self.sms:
            if sm.l1 is None:
                # Same object, stricter receive_reply (no local L1 replies
                # to interact with): see _WakeFilteredSM.
                sm.__class__ = _WakeFilteredSM
        # Stable object caches for the fused (single-VC) stage loops:
        # queue 0 of each VCBuffer, and the per-channel controller parts.
        self._sm_q0 = [b._queues[0] for b in self.sm_buffers]
        self._in_q0 = [b._queues[0] for b in self.input_buffers]
        self._dram_q0 = [b._queues[0] for b in self.dram_queues]
        self._ctl_refs = [(c, c.channel, c.pim_exec) for c in self.controllers]
        # All-fused array scheduler: when every controller is fused (and
        # telemetry is off), the controllers stage replaces the active-set
        # + wake-heap plumbing with one wake-cycle array — ``wake[ch] <=
        # cycle`` means "examine this cycle"; 0 means "dirty".  ``_ctl_min``
        # caches ``wake.min()`` so idle cycles cost one compare, and feeds
        # the quiescence/fast-forward contract (see ``_quiescent``).
        self._all_fused = all(self._fused_ctl)
        # Plain lists, not numpy: at 8-16 channels scalar compares beat
        # array-op dispatch overhead.
        self._ctl_wake = [0] * config.num_channels
        self._ctl_min = 0
        self._comp_next = [0] * config.num_channels
        if self._all_fused:
            for ch, controller in enumerate(self.controllers):
                controller._soa_sched = (self._ctl_wake, ch, self)

    # -- kernel launch ----------------------------------------------------

    def _create_instance(self, run: KernelRun, ctx: LaunchContext) -> KernelInstance:
        # Replay only pays off on relaunches, so gate on looping runs; the
        # synthetic specs are launch-invariant by construction (the warp
        # RNG is seeded without the launch id).
        if run.loop and type(run.spec) in REPLAYABLE_SPECS:
            return ReplayKernelInstance(
                run.spec, ctx, run.kernel_id, seed=self.seed, cache=self._warp_cache
            )
        return super()._create_instance(run, ctx)

    # -- completions -------------------------------------------------------

    def _stage_completions(self) -> None:
        busy = self._busy_channels
        if not busy:
            return
        cycle = self.cycle
        refs = self._ctl_refs
        # ``_comp_next`` caches each busy channel's earliest completion so
        # the common no-completion cycle is one int compare instead of two
        # heap-head peeks.  Only valid while every issue goes through the
        # fused paths (which maintain it); the object issue paths do not,
        # so mixed-policy and telemetry runs fall back to peeking.
        fast = self._all_fused and self.telemetry is None
        comp = self._comp_next
        for ch in busy.snapshot():
            if fast and comp[ch] > cycle:
                continue
            controller, channel, pim_exec = refs[ch]
            mem_flight = channel._in_flight
            pim_flight = pim_exec._in_flight
            if (not mem_flight or mem_flight[0][0] > cycle) and (
                not pim_flight or pim_flight[0][0] > cycle
            ):
                if not mem_flight and not pim_flight:
                    busy.discard(ch)
                    comp[ch] = NEVER
                else:
                    nxt = mem_flight[0][0] if mem_flight else NEVER
                    if pim_flight and pim_flight[0][0] < nxt:
                        nxt = pim_flight[0][0]
                    comp[ch] = nxt
                continue
            done = controller.pop_completed(cycle)
            if done:
                # Unlike the object stage, no controller wake: a completion
                # changes neither queue heads, bank rails, the PIM busy
                # window, nor a parked drain deadline, so no decide can.
                for request in done:
                    self._handle_completion(ch, request, cycle)
            # pop_completed rebuilds the PIM in-flight list: re-read both.
            mem_flight = channel._in_flight
            pim_flight = pim_exec._in_flight
            if not mem_flight and not pim_flight:
                busy.discard(ch)
                comp[ch] = NEVER
            else:
                nxt = mem_flight[0][0] if mem_flight else NEVER
                if pim_flight and pim_flight[0][0] < nxt:
                    nxt = pim_flight[0][0]
                comp[ch] = nxt

    # -- replies -----------------------------------------------------------

    def _stage_replies(self) -> None:
        cycle = self.cycle
        heap = self._reply_heap
        if not heap or heap[0][0] > cycle:
            return
        sm_active = self._sm_active
        sms = self.sms
        telemetry = self.telemetry
        while heap and heap[0][0] <= cycle:
            _, _, request = heapq.heappop(heap)
            sm = sms[request.source]
            sm.receive_reply(request, cycle)
            if sm._dirty:
                # A retracted (inert) wake leaves the SM parked on the wake
                # heap or already in the active set.
                sm_active.add(request.source)
            self._finish_request(request)
            if telemetry is not None:
                telemetry.record_return(request, cycle)

    # -- controllers -------------------------------------------------------

    def _stage_controllers(self) -> None:
        if self.telemetry is not None:
            # The object tick stamps mc_blocked telemetry per issue; the
            # fused path does not, so telemetry runs drop to the reference.
            super()._stage_controllers()
            return
        if self._all_fused:
            # Array scheduler: one compare on idle cycles, one masked scan
            # otherwise — no snapshot lists, no per-channel heap churn.
            wake = self._ctl_wake
            active = self._mc_active
            if active:
                # Entries parked or woken under the object discipline
                # (step()'s wake-heap drain, the VC2 ingress): fold them
                # into the array and re-examine.
                for ch in active.snapshot():
                    wake[ch] = 0
                    active.discard(ch)
                self._ctl_min = 0
            cycle = self.cycle
            if cycle < self._ctl_min:
                return
            controllers = self.controllers
            busy = self._busy_channels
            for ch, due in enumerate(wake):
                if due > cycle:
                    continue
                controller = controllers[ch]
                controller._dirty = False
                if self._fused_tick(controller, ch, cycle) is not None:
                    busy.add(ch)
                wake[ch] = 0 if controller._dirty else controller._next_wake
            self._ctl_min = min(wake)
            return
        active = self._mc_active
        if not active:
            return
        cycle = self.cycle
        controllers = self.controllers
        wake_heap = self._wake_heap
        fused = self._fused_ctl
        for ch in active.snapshot():
            controller = controllers[ch]
            if not fused[ch]:
                if controller.tick(cycle) is not None:
                    self._busy_channels.add(ch)
                if controller._dirty:
                    continue
                wake = controller.next_wake_cycle(cycle)
                if wake <= cycle + 1:
                    continue
                active.discard(ch)
                if wake < NEVER:
                    heapq.heappush(wake_heap, (wake, 0, ch))
                continue
            # Fused FR-FCFS controller (refresh disabled): tick gate,
            # decide, and the next_wake_cycle parking test inlined.
            if controller._dirty or cycle >= controller._next_wake:
                controller._dirty = False
                if self._fused_tick(controller, ch, cycle) is not None:
                    self._busy_channels.add(ch)
            if controller._dirty:
                continue
            wake = controller._next_wake
            if wake <= cycle + 1:
                if (
                    controller._switch_target is not None
                    or controller.mem_queue._live
                    or controller.pim_queue
                ):
                    continue
                active.discard(ch)  # pure idle, no refresh: external wake only
                continue
            active.discard(ch)
            if wake < NEVER:
                heapq.heappush(wake_heap, (wake, 0, ch))

    def _fused_tick(self, c: MemoryController, ch: int, cycle: int):
        """``MemoryController.tick`` body for a refresh-free FR-FCFS
        controller (the dirty/wake gate ran in the stage loop).

        No refresh hook: fused controllers have refresh disabled, so
        ``_refresh_until`` stays 0 and the object tick would skip it too.
        """
        if c._switch_target is not None:
            if c._drain_done(cycle):
                c._finish_switch(cycle)
            else:
                c._next_wake = max(cycle + 1, c._drain_complete_cycle())
                return None
        if c.mode is Mode.MEM:
            return self._fused_mem(c, ch, cycle)
        return self._fused_pim(c, ch, cycle)

    def _fused_mem(self, c: MemoryController, ch: int, cycle: int):
        """FR-FCFS MEM-mode decide + issue over the bank arrays."""
        a = self._ba
        mem_queue = c.mem_queue
        if not mem_queue._live:
            if c.pim_queue:
                return self._fused_switch(c, Mode.PIM, cycle)
            # Both queues empty and no refresh: nothing internal can wake
            # this controller — park at NEVER; an enqueue (dirty) re-arms.
            c._next_wake = NEVER
            return None
        pim_queue = c.pim_queue
        stalled = None
        if pim_queue and pim_queue[0].mc_seq < mem_queue.head().mc_seq:
            # Oldest overall is PIM: mark newly-stalled banks (pending work,
            # issued since the switch, open row with no pending hit) and
            # switch once every bank with work has stalled.
            live = a.bank_live[ch]
            conflict = a.conflict[ch]
            newly = (
                (live > 0)
                & a.issued[ch]
                & ~conflict
                & (a.open_row[ch] >= 0)
                & (a.hit_seq[ch] == NOSEQ)
            )
            if newly.any():
                conflict |= newly
                a.has_conflict[ch] = True
            if a.has_conflict[ch]:
                if not ((live > 0) & ~conflict).any():
                    return self._fused_switch(c, Mode.PIM, cycle)
                stalled = conflict
                masked = np.where(
                    (a.accept_at[ch] > cycle) | conflict, NOSEQ, a.score[ch]
                )
            else:
                masked = np.where(a.accept_at[ch] > cycle, NOSEQ, a.score[ch])
        else:
            # clear_conflict_bits(): both flags, every bank (the fills are
            # gated on the sticky any-bit-set flags).
            if a.has_conflict[ch]:
                a.conflict[ch].fill(False)
                a.has_conflict[ch] = False
            if a.has_issued[ch]:
                a.issued[ch].fill(False)
                a.has_issued[ch] = False
            masked = np.where(a.accept_at[ch] > cycle, NOSEQ, a.score[ch])
        # One argmin over the combined score: hits (< HIT_BIAS) beat
        # non-hits, older arrivals beat newer, NOSEQ means nothing ready.
        bank = int(masked.argmin())
        best = int(masked[bank])
        if best >= NOSEQ:
            # Every candidate bank (live work, not conflict-masked) has
            # accept_at in the future, and the decide inputs are static
            # until an enqueue (dirty) or our own issue: park at the
            # earliest candidate accept instead of re-ticking every cycle.
            candidates = a.bank_live[ch] > 0
            if stalled is not None:
                candidates &= ~stalled
            c._next_wake = int(np.where(candidates, a.accept_at[ch], NOSEQ).min())
            return None
        if best < HIT_BIAS:
            request = mem_queue.row_head(bank, int(a.open_row[ch, bank]))
        else:
            request = mem_queue.bank_head(bank)
        return self._fused_issue_mem(c, ch, bank, request, cycle)

    def _fused_issue_mem(
        self, c: MemoryController, ch: int, bank: int, request: Request, cycle: int
    ) -> Request:
        """Inlined ``mem_queue.remove`` + ``Channel.issue_mem`` + bookkeeping."""
        a = self._ba
        c.mem_queue.remove(request)
        t = self._timings
        channel = c.channel
        row = request.row
        open_row = int(a.open_row[ch, bank])
        next_col = int(a.next_col[ch, bank])
        is_write = request.type is RequestType.MEM_STORE
        # Bank.schedule: place PRE/ACT/column commands, advance the rails.
        act = None
        if open_row == row:
            kind = _HIT
            col = max(cycle, next_col, channel.next_col_bus)
            first_cmd = col
        elif open_row < 0:
            kind = _MISS
            act = max(cycle, int(a.act_ready[ch, bank]), channel.next_act)
            col = max(act + t.tRCD, next_col, channel.next_col_bus)
            first_cmd = act
        else:
            kind = _CONFLICT
            pre = max(cycle, int(a.pre_ready[ch, bank]))
            act = max(pre + t.tRP, int(a.act_ready[ch, bank]), channel.next_act)
            col = max(act + t.tRCD, next_col, channel.next_col_bus)
            first_cmd = pre
        if is_write:
            completion = col + t.tWL + t.burst_length
            write_recovery = completion + t.tWR
            read_to_pre = 0
        else:
            completion = col + t.tCL + t.burst_length
            write_recovery = 0
            read_to_pre = col + t.tRTP
        a.open_row[ch, bank] = row
        a.next_col[ch, bank] = col + t.tCCDl
        a.accept_at[ch, bank] = col
        if act is not None:
            pre_ready = act + t.tRAS
            act_ready = act
        else:
            pre_ready = int(a.pre_ready[ch, bank])
            act_ready = int(a.act_ready[ch, bank])
        pre_ready = max(pre_ready, read_to_pre, write_recovery)
        a.pre_ready[ch, bank] = pre_ready
        a.act_ready[ch, bank] = max(act_ready, pre_ready + t.tRP)
        if completion > int(a.busy_until[ch, bank]):
            a.busy_until[ch, bank] = completion
        channel.banks[bank].state.busy_intervals.append((first_cmd, completion))
        # Channel rails + stats + in-flight heap (Channel.issue_mem tail).
        channel.next_col_bus = col + t.burst_length
        if act is not None:
            channel.next_act = act + t.tRRD
        channel.stats.record_mem(kind, request)
        request.access_kind = kind.value
        request.cycle_issued = cycle
        channel._heap_seq += 1
        heapq.heappush(channel._in_flight, (completion, channel._heap_seq, request))
        if completion < self._comp_next[ch]:
            self._comp_next[ch] = completion
        # Controller tail: flags, digests, PIM uniformity, switch conflicts.
        a.issued[ch, bank] = True
        a.has_issued[ch] = True
        c.mem_queue.resync_hit(bank)
        pim_exec = c.pim_exec
        if pim_exec._rows_uniform and row != pim_exec.open_row:
            pim_exec._rows_uniform = False
        if c._pre_switch_rows:
            c._attribute_post_switch_conflict(request)
        c.stats.mem_issued += 1
        c._next_wake = cycle + 1
        c._dirty = True
        return request

    def _fused_pim(self, c: MemoryController, ch: int, cycle: int):
        """FR-FCFS PIM-mode decide + issue (FCFS head, lock-step executor)."""
        pim_queue = c.pim_queue
        if not pim_queue:
            if c.mem_queue._live:
                return self._fused_switch(c, Mode.MEM, cycle)
            # Both queues empty and no refresh: nothing internal can wake
            # this controller — park at NEVER; an enqueue (dirty) re-arms.
            c._next_wake = NEVER
            return None
        head = pim_queue[0]
        pim_exec = c.pim_exec
        mem_head = c.mem_queue.head()
        if (
            mem_head is not None
            and mem_head.mc_seq < head.mc_seq
            and pim_exec.would_switch_row(head)
        ):
            return self._fused_switch(c, Mode.MEM, cycle)
        if cycle < pim_exec.busy_until:
            # The decide inputs are static until an enqueue (dirty) or our
            # own issue, and the busy gate holds until busy_until: park
            # there instead of re-ticking every cycle like the object.
            c._next_wake = pim_exec.busy_until
            return None
        pim_queue.popleft()
        # PIMExecutor.issue, inlined (lock-step FCFS, one op at a time).
        t = self._timings
        stats = pim_exec.stats
        next_col = pim_exec.next_col
        if head.pim_op.kind.accesses_dram:
            if pim_exec.would_switch_row(head):
                start = pim_exec._switch_row(head.row, cycle, t)
            else:
                start = cycle if cycle > next_col else next_col
            end = start + t.tCCDl
        else:
            start = cycle if cycle > next_col else next_col
            end = start + 1
            stats.rf_only_ops += 1
        pim_exec.next_col = end
        pim_exec.busy_until = end
        stats.ops_executed += 1
        stats.busy_cycles += end - cycle
        intervals = pim_exec.busy_intervals
        if intervals and start <= intervals[-1][1]:
            if end > intervals[-1][1]:
                intervals[-1] = (intervals[-1][0], end)
        else:
            intervals.append((start, end))
        if pim_exec.functional:
            pim_exec._execute_functional(head)
        head.cycle_issued = cycle
        pim_exec._in_flight.append((end, head))
        if end < self._comp_next[ch]:
            self._comp_next[ch] = end
        c.stats.pim_issued += 1
        # Post-issue wake: the object re-ticks at cycle+1, but the only
        # decision it could take before ``end`` is the older-MEM switch for
        # the *new* head — and that condition is static until an enqueue
        # (dirty) or our own issue.  Evaluate it now: if it can't fire,
        # park straight at the busy window's end.
        if pim_queue:
            nxt = pim_queue[0]
            if (
                mem_head is not None
                and mem_head.mc_seq < nxt.mc_seq
                and pim_exec.would_switch_row(nxt)
            ):
                c._next_wake = cycle + 1
                c._dirty = True
            else:
                c._next_wake = end
        else:
            c._next_wake = cycle + 1
            c._dirty = True
        return head

    def _fused_switch(self, c: MemoryController, target: Mode, cycle: int):
        c._begin_switch(target, cycle)
        c._next_wake = max(cycle + 1, c._drain_complete_cycle())
        c._dirty = True
        return None

    # -- quiescence / fast-forward ----------------------------------------
    #
    # The array scheduler parks controllers outside the active set and the
    # wake heap, so the engine's quiescence contract must fold the array
    # in: a controller due at or before the current cycle blocks the skip
    # (it would act this step — the exact cases the object discipline kept
    # in the active set), and one parked further out bounds the jump the
    # same way a wake-heap entry would.

    def _quiescent(self) -> bool:
        if self._backlog or self._mc_active or self._sm_active:
            return False
        if (
            self._all_fused
            and self.telemetry is None
            and self._ctl_min <= self.cycle
        ):
            return False
        return self.mesh is None or not self.mesh.occupancy

    def _fast_forward_clock(self, limit: int) -> None:
        if self._all_fused and self.telemetry is None and self._ctl_min < limit:
            limit = self._ctl_min
        super()._fast_forward_clock(limit)

    def enable_telemetry(self, *args, **kwargs):
        telemetry = super().enable_telemetry(*args, **kwargs)
        if self._all_fused:
            # Telemetry routes the controllers stage to the object
            # implementation, which never reads the wake array: migrate
            # array-parked controllers into the active set so the object
            # discipline re-parks them on the wake heap.
            for ch in range(len(self.controllers)):
                self._mc_active.add(ch)
        return telemetry

    # -- MC ingress --------------------------------------------------------

    def _stage_mc_ingress(self) -> None:
        if not self._vc1:
            super()._stage_mc_ingress()
            return
        active = self._ingress_active
        if not active:
            return
        cycle = self.cycle
        dram_q0 = self._dram_q0
        controllers = self.controllers
        # Under the all-fused array scheduler the enqueue itself signals
        # the wake array; only the object disciplines need the active set.
        track_active = self.telemetry is not None or not self._all_fused
        for ch in active.snapshot():
            items = dram_q0[ch]._items
            if not items:
                continue
            head = items[0]
            controller = controllers[ch]
            if head.is_pim:
                if len(controller.pim_queue) >= controller.pim_queue_size:
                    continue
            elif controller.mem_queue._live >= controller.mem_queue_size:
                continue
            # Inlined BoundedQueue.pop + the engine's on_pop watch hook.
            items.popleft()
            self._backlog -= 1
            if not items:
                active.discard(ch)
            controller.enqueue(head, cycle)
            if track_active and controller._dirty:
                # A retracted (inert) wake leaves the controller parked on
                # the wake heap or already in the active set.
                self._mc_active.add(ch)

    # -- L2 ----------------------------------------------------------------

    def _stage_l2(self) -> None:
        if not self._vc1 or self.telemetry is not None:
            super()._stage_l2()
            return
        active = self._l2_active
        if not active:
            return
        cycle = self.cycle
        l2_latency = self.config.l2_latency
        in_q0 = self._in_q0
        dram_q0 = self._dram_q0
        l2_slices = self.l2_slices
        ingress = self._ingress_active
        hit, blocked, secondary = (
            LookupResult.HIT,
            LookupResult.BLOCKED,
            LookupResult.MISS_SECONDARY,
        )
        for ch in active.snapshot():
            queue = in_q0[ch]
            items = queue._items
            if not items:
                continue
            head = items[0]
            dram_queue = dram_q0[ch]
            dram_items = dram_queue._items
            # Single VC: PIM forward and MEM miss share one L2->DRAM queue.
            if len(dram_items) >= dram_queue.capacity:
                continue
            forward = True
            if not head.is_pim:
                outcome = l2_slices[ch].lookup(head)
                if outcome == blocked:
                    continue  # MSHRs full: head stays put
                if outcome == hit:
                    forward = False
                    if head.is_load:
                        self._schedule_reply(head, cycle + l2_latency)
                    else:
                        self._finish_request(head)
                elif outcome == secondary:
                    forward = False  # merged; replied when the fill returns
            # Inlined pop (+ on_pop hook) from the interconnect->L2 queue.
            items.popleft()
            self._backlog -= 1
            if not items:
                active.discard(ch)
            if forward:  # inlined try_push (+ on_push hook) into L2->DRAM
                dram_items.append(head)
                dram_queue.pushes += 1
                occupancy = len(dram_items)
                if occupancy > dram_queue.peak_occupancy:
                    dram_queue.peak_occupancy = occupancy
                self._backlog += 1
                ingress.add(ch)

    # -- crossbar ----------------------------------------------------------

    def _stage_crossbar(self) -> None:
        if self.mesh is not None or not self._vc1:
            super()._stage_crossbar()
            return
        active = self._xbar_active
        if not active:
            return
        # Single-VC iSlip: each input offers exactly one head to one
        # output, so every grant is accepted and the request/grant/accept
        # phases collapse into one pass.  can_push is evaluated against
        # pre-transfer occupancy for every proposal, as in the object
        # arbiter (at most one push per output per cycle, so a proposal
        # admitted here cannot overflow).
        xbar = self.crossbar
        sm_q0 = self._sm_q0
        in_q0 = self._in_q0
        proposals = {}
        for i in active.snapshot():
            items = sm_q0[i]._items
            if not items:
                continue
            head = items[0]
            out = head.channel
            out_queue = in_q0[out]
            if len(out_queue._items) >= out_queue.capacity:
                continue
            entry = proposals.get(out)
            if entry is None:
                proposals[out] = [(i, head)]
            else:
                entry.append((i, head))
        if not proposals:
            return
        grant_ptr = xbar._grant_ptr
        num_inputs = xbar.num_inputs
        l2_active = self._l2_active
        for out, requesters in proposals.items():
            pointer = grant_ptr[out]
            chosen, head = requesters[0]
            if len(requesters) > 1:
                best = (chosen - pointer) % num_inputs
                for i, candidate in requesters[1:]:
                    distance = (i - pointer) % num_inputs
                    if distance < best:
                        best = distance
                        chosen, head = i, candidate
            # Inlined pop (+ on_pop) from the SM buffer ...
            in_items = sm_q0[chosen]._items
            in_items.popleft()
            self._backlog -= 1
            if not in_items:
                active.discard(chosen)
            # ... and try_push (+ on_push) into the interconnect->L2 queue.
            out_queue = in_q0[out]
            out_items = out_queue._items
            out_items.append(head)
            out_queue.pushes += 1
            occupancy = len(out_items)
            if occupancy > out_queue.peak_occupancy:
                out_queue.peak_occupancy = occupancy
            self._backlog += 1
            l2_active.add(out)
            grant_ptr[out] = (chosen + 1) % num_inputs
            xbar.transfers += 1

    # -- SMs ---------------------------------------------------------------

    def _stage_sms(self) -> None:
        if not self._vc1:
            super()._stage_sms()
            return
        active = self._sm_active
        if not active:
            return
        cycle = self.cycle
        sms = self.sms
        wake_heap = self._wake_heap
        for i in active.snapshot():
            sm = sms[i]
            if sm.instance is None:
                active.discard(i)
                continue
            before = sm.requests_injected
            # L1-enabled SMs keep the object step (local reply heap, hit
            # path); the common no-L1 configuration takes the fused step.
            issued = (
                sm.step(cycle)
                if sm.l1 is not None
                else self._fused_sm_step(sm, self._sm_q0[i], cycle)
            )
            if issued:
                sm.requests_injected = before + issued
                kernel_id = sm.instance.kernel_id
                self._injected[kernel_id] += issued
                self._kernel_inflight[kernel_id] += issued
            if sm._dirty:
                continue
            # No L1 means no local-reply heap: _next_wake is the whole
            # next_event_cycle contract.
            wake = sm._next_wake if sm.l1 is None else sm.next_event_cycle()
            if wake <= cycle + 1:
                continue
            active.discard(i)
            heapq.heappush(wake_heap, (wake, 1, i))

    def _fused_sm_step(self, sm, out_queue, cycle: int) -> int:
        """``SM.step`` without an L1: no local replies, every issue pushes."""
        if not sm._dirty and cycle < sm._next_wake:
            return 0
        sm._dirty = False
        due = sm._due
        if due and due[0][0] <= cycle:
            self._fused_advance_due(sm, cycle)
        issuable = sm._issuable
        if not issuable:
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
            return 0
        items = out_queue._items
        capacity = out_queue.capacity
        if len(items) >= capacity:
            # Full output queue: with no L1, every candidate fails the push
            # check and the scan is a no-op — skip it.  Issuable non-empty
            # means retry next cycle, exactly the object wake rule.
            sm._next_wake = cycle + 1
            return 0
        issued = 0
        slots = 0
        warps = sm.warps
        num_warps = len(warps)
        issue_width = sm.issue_width
        max_outstanding = sm.max_outstanding
        sm_index = sm.index
        base = sm._issue_rotation
        order = sorted(issuable)
        if base:
            split = bisect_left(order, base)
            order = order[split:] + order[:split]
        xbar_active = self._xbar_active
        xbar_members = xbar_active._members
        for warp_index in order:
            if slots >= issue_width:
                break
            if len(items) >= capacity:
                break  # queue filled mid-scan: nothing else can issue
            warp = warps[warp_index]
            request = warp.pending[0]
            if request.is_load and sm.outstanding_loads >= max_outstanding:
                continue
            warp.pending.popleft()
            if request.cycle_created < 0:
                request.cycle_created = cycle
            request.source = sm_index
            request.warp = warp_index
            request.cycle_noc_entry = cycle
            # Inlined try_push (+ on_push hook) into the SM output buffer.
            items.append(request)
            out_queue.pushes += 1
            occupancy = len(items)
            if occupancy > out_queue.peak_occupancy:
                out_queue.peak_occupancy = occupancy
            self._backlog += 1
            if sm_index not in xbar_members:
                xbar_active.add(sm_index)
            if request.is_load:
                sm.outstanding_loads += 1
                if warp.wait_for_replies:
                    warp.waiting_replies += 1
            issued += 1
            slots += 1
            sm._issue_rotation = (warp_index + 1) % num_warps
            if not warp.pending:
                issuable.remove(warp_index)
                if not (warp.wait_for_replies and warp.waiting_replies > 0):
                    heapq.heappush(
                        due,
                        (
                            warp.compute_until if warp.compute_until > cycle else cycle + 1,
                            warp_index,
                        ),
                    )
        if slots:
            sm._next_wake = cycle + 1
        else:
            # Nothing issued this step.  If issuable warps remain, every
            # one was a load blocked on the outstanding limit (a store or
            # a fitting load would have issued — the output queue had
            # space, so the scan ran to completion).  Only a reply
            # (``receive_reply`` marks the SM dirty) or a due event can
            # unblock either case: park at the due head instead of the
            # object's retry-every-cycle rescan.
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
        return issued

    def _fused_advance_due(self, sm, cycle: int) -> None:
        """``SM._advance_due_warps`` with batched readiness classification.

        All due entries are popped up front (processing only ever pushes
        entries beyond ``cycle``, so the pop sequence matches the object
        loop).  Entries whose warp is immediately issuable — not done,
        pending requests, compute window elapsed — resolve to an
        idempotent ``issuable.add`` with no state change, so they can be
        classified in bulk and in any order; the rest run the exact
        scalar logic in pop order.
        """
        due = sm._due
        if not due or due[0][0] > cycle:
            return
        warps = sm.warps
        issuable = sm._issuable
        popped = []
        while due and due[0][0] <= cycle:
            popped.append(heapq.heappop(due)[1])
        if len(popped) >= _WARP_BATCH_MIN:
            count = len(popped)
            done = np.fromiter((warps[w].done for w in popped), dtype=bool, count=count)
            pending = np.fromiter(
                (len(warps[w].pending) for w in popped), dtype=np.int64, count=count
            )
            compute_until = np.fromiter(
                (warps[w].compute_until for w in popped), dtype=np.int64, count=count
            )
            ready = warp_ready_batch(done, pending, compute_until, cycle)
            if ready.all():
                issuable.update(popped)
                return
            rest = []
            for index, warp_index in enumerate(popped):
                if ready[index]:
                    issuable.add(warp_index)
                else:
                    rest.append(warp_index)
            popped = rest
        for warp_index in popped:
            warp = warps[warp_index]
            if warp.done:
                continue
            if warp.pending:
                if cycle >= warp.compute_until:
                    issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            if warp.wait_for_replies and warp.waiting_replies > 0:
                continue  # receive_reply re-arms the warp
            if cycle < warp.compute_until:
                heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            phase = next(warp.program, None)
            if phase is None:
                warp.done = True
                sm._live_warps -= 1
                continue
            warp.compute_until = cycle + phase.compute_cycles
            warp.wait_for_replies = phase.wait_for_replies
            warp.pending.extend(phase.requests)
            if warp.pending:
                if cycle >= warp.compute_until:
                    issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
            else:
                heapq.heappush(
                    due,
                    (
                        warp.compute_until if warp.compute_until > cycle else cycle + 1,
                        warp_index,
                    ),
                )
