"""Struct-of-arrays engine: ``SoAGPUSystem``.

A drop-in subclass of :class:`repro.sim.system.GPUSystem` that keeps the
hot per-cycle state in :class:`~repro.engine_soa.arrays.BankArrays` and
replaces the three hottest stage loops with fused implementations:

* **controllers** — FR-FCFS decide + issue collapsed into one pass over
  the bank arrays: the conflict-bit update, the all-stalled check, and
  the hit/oldest pick are masked reductions; the winning request's DRAM
  command schedule (the ``Bank.schedule`` math) is inlined on the array
  cells.
* **sms** — due-event processing with batched readiness classification,
  a full-output-queue fast path that skips the issue scan entirely
  (with no L1 and a single VC, nothing can issue into a full queue),
  and an inlined issue loop with direct queue access.
* **crossbar / l2 / mc_ingress / completions** — the single-VC cases of
  the object stages with the per-request indirection (``heads()`` lists,
  ``can_push``/``pop_matching`` dispatch) flattened out.

Exactness is the design invariant, not an aspiration: every fused path
replicates the object engine's statement order (queue removal before
rail updates, wake/dirty bookkeeping, stats and telemetry gating), and
every configuration a fused path does not cover — telemetry attached,
two virtual channels, mesh topology, refresh enabled, a policy other
than plain FR-FCFS — falls back to the inherited object implementation
mid-flight.  The object and SoA backends therefore produce byte-identical
``SimResult``/store fingerprints (``tests/test_engine_soa.py``).

Warp programs of looping synthetic kernels are additionally wrapped in a
record/replay cache (:mod:`repro.engine_soa.replay`): relaunches skip
RNG draws and address encoding.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left
from collections import deque

import numpy as np

from repro.cache.l2 import LookupResult
from repro.config import SystemConfig
from repro.core.controller import NEVER, MemoryController
from repro.dram.bank import AccessKind
from repro.core.policies import PolicySpec
from repro.core.policies.frfcfs import FRFCFS
from repro.engine_soa.arrays import HIT_BIAS, NOSEQ, ArrayBankState, BankArrays, SoAMemQueue
from repro.engine_soa.handles import RequestArrays
from repro.engine_soa.kernels import load_kernels
from repro.engine_soa.ring import HandleRing
from repro.sim.activeset import DenseIndexSet
from repro.engine_soa.primitives import warp_ready_batch
from repro.engine_soa.replay import REPLAYABLE_SPECS, ReplayKernelInstance, WarpProgramCache
from repro.gpu.kernel import KernelInstance, LaunchContext
from repro.gpu.sm import SM
from repro.request import Mode, Request, RequestType
from repro.sim.system import GPUSystem, KernelRun

#: Minimum popped due entries for the vectorized readiness classification;
#: below this the numpy gather costs more than the scalar checks.
_WARP_BATCH_MIN = 8

# AccessKind singletons hoisted out of the issue path.
_HIT = AccessKind.HIT
_MISS = AccessKind.MISS
_CONFLICT = AccessKind.CONFLICT


class _WakeFilteredController(MemoryController):
    """FR-FCFS controller whose ``enqueue`` drops provably-inert wakes.

    The dirty flag exists so an arrival can change the next decide.  For
    plain FR-FCFS (no refresh) most arrivals provably cannot:

    * while switching, the post-drain tick re-reads the queues anyway
      (and the drain-complete cycle only depends on in-flight work);
    * a PIM arrival behind an existing PIM head leaves both the FCFS head
      and the oldest-is-PIM comparison unchanged;
    * a MEM arrival in PIM mode with a live PIM head carries a larger
      ``mc_seq`` than that head, so the older-MEM switch check stays
      false until the head itself changes (our own issue);
    * the first PIM arrival in MEM mode has the largest ``mc_seq`` of
      any queued request, so oldest-is-other stays false while the MEM
      queue is non-empty (and MEM drain re-evaluates the fallback).

    In each retracted case the controller is already parked at (or
    active before) the next cycle its decide could change, so skipping
    the wake leaves the issue stream bit-identical.  Telemetry runs keep
    every wake — mc-blocked attribution snapshots depend on arrival-time
    state.
    """

    #: Under the all-fused array scheduler: ``(wake_array, channel, system)``.
    #: Enqueues that survive the retraction filter signal the array directly,
    #: replacing the active-set/wake-heap plumbing of the object stage.
    _soa_sched = None

    #: End of the current batched PIM drain window (``_fused_pim``): the
    #: batch pops the whole queue snapshot up front, but sequentially each
    #: op would stay queued until its issue tick — so while ``cycle`` is
    #: inside the window the queue is *logically* non-empty and the
    #: emptiness tests below must treat it that way.
    _pim_chain_until = 0

    #: Issue ticks of batch ops popped ahead of their logical pop cycle
    #: (ascending).  ``len`` after pruning entries ``<= cycle`` is the
    #: virtual pim_queue occupancy the ingress backpressure check adds to
    #: the physical length.  Set to a deque per fused controller.
    _chain_ticks = None

    def enqueue(self, request: Request, cycle: int) -> bool:
        dirty_before = self._dirty
        if not MemoryController.enqueue(self, request, cycle):
            return False
        if self.telemetry is not None:
            return True
        if self._switch_target is not None:
            self._dirty = dirty_before
        elif request.is_pim:
            if (
                len(self.pim_queue) > 1
                or (self.mode is Mode.MEM and self.mem_queue)
                or (self.mode is Mode.PIM and cycle < self._pim_chain_until)
            ):
                self._dirty = dirty_before
        elif self.mode is Mode.PIM and (
            self.pim_queue or cycle < self._pim_chain_until
        ):
            self._dirty = dirty_before
        if self._dirty and self._soa_sched is not None:
            wake, ch, system = self._soa_sched
            wake[ch] = 0
            system._ctl_min = 0
        return True


class _WakeFilteredSM(SM):
    """SM (no L1) whose ``receive_reply`` drops provably-inert wakes.

    A reply always decrements ``outstanding_loads``; that only matters if
    an issuable warp exists (the outstanding limit may now pass).  The
    other way a reply changes the next step is by re-arming its warp's
    phase advance, which pushes a due entry at ``max(compute_until,
    cycle)``: a push at ``cycle`` must be processed this very step, and a
    future push below the parked wake needs the earlier wake the dirty
    flag provides.  Every other reply leaves the next step a no-op, so
    the wake (and the step's full warp rescan) is skipped.
    """

    def receive_reply(self, request: Request, cycle: int) -> None:
        dirty_before = self._dirty
        SM.receive_reply(self, request, cycle)
        if self._issuable:
            return
        warp = self.warps[request.warp]
        if (
            not warp.done
            and not warp.pending
            and not (warp.wait_for_replies and warp.waiting_replies > 0)
        ):
            # The base method pushed a due entry at max(compute_until, cycle).
            until = warp.compute_until
            if until <= cycle or until < self._next_wake:
                return
        self._dirty = dirty_before


class SoAGPUSystem(GPUSystem):
    """GPUSystem with struct-of-arrays hot loops (see module docstring)."""

    def __init__(self, config: SystemConfig, policy: PolicySpec, **kwargs) -> None:
        super().__init__(config, policy, **kwargs)
        num_banks = config.banks_per_channel
        self._ba = BankArrays(config.num_channels, num_banks)
        self._timings = config.timings
        self._vc1 = config.num_virtual_channels == 1
        self._warp_cache = WarpProgramCache()
        # Per-controller fused-path eligibility: plain FR-FCFS (subclasses
        # like FRFCFSCap override decide) and no refresh machinery.  The
        # telemetry gate is checked per call — it can be enabled later.
        self._fused_ctl = []
        for ch, controller in enumerate(self.controllers):
            queue = SoAMemQueue(num_banks, self._ba, ch)
            controller.mem_queue = queue
            for b, bank in enumerate(controller.channel.banks):
                bank.state = ArrayBankState(self._ba, ch, b, queue)
            fused = type(controller.policy) is FRFCFS and not controller.refresh.enabled
            self._fused_ctl.append(fused)
            # Empty for non-fused controllers (they never batch), so the
            # ingress occupancy check can read it unconditionally.
            controller._chain_ticks = deque()
            if fused:
                # Same object, stricter enqueue: drop wakes that cannot
                # change a decide (see _WakeFilteredController).
                controller.__class__ = _WakeFilteredController
        for sm in self.sms:
            if sm.l1 is None:
                # Same object, stricter receive_reply (no local L1 replies
                # to interact with): see _WakeFilteredSM.
                sm.__class__ = _WakeFilteredSM
        # Flag-array active sets (see DenseIndexSet): the fused stages
        # inline membership as direct ``_flags`` subscripts; the object
        # fallback paths keep using the OrderedIndexSet-compatible API.
        # The buffer watch hooks captured the original sets — re-watch.
        num_channels = config.num_channels
        num_sms = config.num_sms
        self._l2_active = DenseIndexSet(num_channels, self._l2_active)
        self._ingress_active = DenseIndexSet(num_channels, self._ingress_active)
        self._wb_active = DenseIndexSet(num_channels, self._wb_active)
        self._busy_channels = DenseIndexSet(num_channels, self._busy_channels)
        self._mc_active = DenseIndexSet(num_channels, self._mc_active)
        self._xbar_active = DenseIndexSet(num_sms, self._xbar_active)
        self._sm_active = DenseIndexSet(num_sms, self._sm_active)
        for ch in range(num_channels):
            self._watch_buffer(self.input_buffers[ch], self._l2_active, ch)
            self._watch_buffer(self.dram_queues[ch], self._ingress_active, ch)
        for i, buffer in enumerate(self.sm_buffers):
            self._watch_buffer(buffer, self._xbar_active, i)
        # Crossbar proposal registers (see _stage_crossbar): first/best
        # proposer per output and its head, reset after every grant pass.
        self._xp_in = [-1] * num_channels
        self._xp_head = [None] * num_channels
        # SMs parked on a full output buffer (see _fused_sm_step): the
        # crossbar grant loop wakes them the cycle a pop frees a slot —
        # the first cycle the object engine's retry scan could issue.
        # Only the fused crossbar fires that wake, so a mesh topology
        # keeps the object retry-every-cycle rule.
        self._sm_stalled = [False] * num_sms
        self._stall_park = self.mesh is None
        # Flag-scan universe sizes (the index at which a DenseIndexSet
        # scan hits the sentinel and stops).
        self._nch = num_channels
        self._nsm = num_sms
        # Stable object caches for the fused (single-VC) stage loops:
        # queue 0 of each VCBuffer, and the per-channel controller parts.
        self._sm_q0 = [b._queues[0] for b in self.sm_buffers]
        self._in_q0 = [b._queues[0] for b in self.input_buffers]
        self._dram_q0 = [b._queues[0] for b in self.dram_queues]
        self._ctl_refs = [(c, c.channel, c.pim_exec) for c in self.controllers]
        # Handle pipeline (engine_soa.ring / engine_soa.handles): with a
        # single VC, no mesh, and no L1 on any SM, every hop stage runs a
        # fused body, so the NoC hop queues can carry integer handles
        # into a pooled RequestArrays instead of Request objects — the
        # stages read routing fields from the pool's columns and
        # materialize the object only at the pipeline boundaries (L2
        # lookup, MC ingress, replies).  Telemetry (attachable mid-run)
        # migrates ring contents back into the BoundedQueues and routes
        # the stages to their object bodies (see enable_telemetry).
        self._pool = None
        self._rings_on = (
            self._vc1
            and self.mesh is None
            and all(sm.l1 is None for sm in self.sms)
        )
        if self._rings_on:
            self._pool = RequestArrays()
            self._warp_cache.pool = self._pool
            self._sm_rings = [HandleRing(q.capacity, q.name) for q in self._sm_q0]
            self._in_rings = [HandleRing(q.capacity, q.name) for q in self._in_q0]
            self._dram_rings = [HandleRing(q.capacity, q.name) for q in self._dram_q0]
        # Compiled decide kernel (engine_soa.kernels): auto-detected with
        # a pure-Python fallback (self._k_decide stays None).  The
        # per-channel pointer tables index straight into the persistent
        # BankArrays buffers, so a call passes five scalars and two
        # preallocated addresses — no per-cycle marshalling.
        self._kernels = load_kernels()
        self._k_decide = None
        if self._kernels is not None:
            a = self._ba
            self._nbk = num_banks
            tables = []
            for ch in range(num_channels):
                off8 = ch * num_banks * 8
                off1 = ch * num_banks
                tables.append(
                    array(
                        "q",
                        (
                            a.score.ctypes.data + off8,
                            a.accept_at.ctypes.data + off8,
                            a.bank_live.ctypes.data + off8,
                            a.open_row.ctypes.data + off8,
                            a.hit_seq.ctypes.data + off8,
                            a.conflict.ctypes.data + off1,
                            a.issued.ctypes.data + off1,
                        ),
                    )
                )
            self._k_tables = tables  # keep the arrays alive
            self._k_addr = [t.buffer_info()[0] for t in tables]
            self._k_out = array("q", (0, 0, 0, 0))
            self._k_out_addr = self._k_out.buffer_info()[0]
            self._k_decide = self._kernels.frfcfs_decide
        # All-fused array scheduler: when every controller is fused (and
        # telemetry is off), the controllers stage replaces the active-set
        # + wake-heap plumbing with one wake-cycle array — ``wake[ch] <=
        # cycle`` means "examine this cycle"; 0 means "dirty".  ``_ctl_min``
        # caches ``wake.min()`` so idle cycles cost one compare, and feeds
        # the quiescence/fast-forward contract (see ``_quiescent``).
        self._all_fused = all(self._fused_ctl)
        # Plain lists, not numpy: at 8-16 channels scalar compares beat
        # array-op dispatch overhead.
        self._ctl_wake = [0] * config.num_channels
        self._ctl_min = 0
        # NEVER until a fused issue lowers them: an idle channel must not
        # pin the stage-gating min at a stale-low value.
        self._comp_next = [NEVER] * config.num_channels
        # Lower bound on min(_comp_next): one compare gates the whole
        # completions stage on no-completion cycles (all-fused only).
        self._comp_min = NEVER
        if self._all_fused:
            for ch, controller in enumerate(self.controllers):
                controller._soa_sched = (self._ctl_wake, ch, self)

    # -- kernel launch ----------------------------------------------------

    def _create_instance(self, run: KernelRun, ctx: LaunchContext) -> KernelInstance:
        # Replay only pays off on relaunches, so gate on looping runs; the
        # synthetic specs are launch-invariant by construction (the warp
        # RNG is seeded without the launch id).
        if run.loop and type(run.spec) in REPLAYABLE_SPECS:
            return ReplayKernelInstance(
                run.spec, ctx, run.kernel_id, seed=self.seed, cache=self._warp_cache
            )
        return super()._create_instance(run, ctx)

    # -- completions -------------------------------------------------------

    def _stage_completions(self) -> None:
        cycle = self.cycle
        # ``_comp_next`` caches each busy channel's earliest completion so
        # the common no-completion cycle is one int compare instead of two
        # heap-head peeks; ``_comp_min`` is a lower bound on the whole
        # array, so most cycles return after a single compare.  Only valid
        # while every issue goes through the fused paths (which maintain
        # both); the object issue paths do not, so mixed-policy and
        # telemetry runs fall back to peeking.
        fast = self._all_fused and self.telemetry is None
        if fast and self._comp_min > cycle:
            return
        busy_flags = self._busy_channels._flags
        nch = self._nch
        find = busy_flags.index
        ch = find(True)
        if ch >= nch:
            if fast:
                self._comp_min = NEVER
            return
        refs = self._ctl_refs
        comp = self._comp_next
        while ch < nch:
            if fast and comp[ch] > cycle:
                ch = find(True, ch + 1)
                continue
            controller, channel, pim_exec = refs[ch]
            mem_flight = channel._in_flight
            pim_flight = pim_exec._in_flight
            if (not mem_flight or mem_flight[0][0] > cycle) and (
                not pim_flight or pim_flight[0][0] > cycle
            ):
                if not mem_flight and not pim_flight:
                    busy_flags[ch] = False
                    comp[ch] = NEVER
                else:
                    nxt = mem_flight[0][0] if mem_flight else NEVER
                    if pim_flight and pim_flight[0][0] < nxt:
                        nxt = pim_flight[0][0]
                    comp[ch] = nxt
                ch = find(True, ch + 1)
                continue
            if fast:
                # Inlined controller.pop_completed: pop the MEM heap and the
                # PIM flight deque directly (same order: MEM first, then
                # PIM, both FCFS-by-completion).  Unlike the object stage,
                # no controller wake: a completion changes neither queue
                # heads, bank rails, the PIM busy window, nor a parked
                # drain deadline, so no decide can.  PIM ops and stores
                # retire right here (the ``_handle_completion`` body minus
                # the load/fill branch); loads carry an L2 fill and keep
                # the full call.
                inflight = self._kernel_inflight
                heappop = heapq.heappop
                while mem_flight and mem_flight[0][0] <= cycle:
                    completion, _, request = heappop(mem_flight)
                    request.cycle_completed = completion
                    if request.is_load:
                        self._handle_completion(ch, request, cycle)
                    elif not request.is_writeback:
                        inflight[request.kernel_id] -= 1
                        slot = request._slot
                        if slot is not None:
                            slot[0] -= 1
                if pim_flight and pim_flight[0][0] <= cycle:
                    pending = pim_exec._pending
                    popleft = pim_flight.popleft
                    apply_issue = pim_exec._apply_issue
                    while pim_flight and pim_flight[0][0] <= cycle:
                        end, request = popleft()
                        request.cycle_completed = end
                        # Batch ops pair 1:1 with pending entries (both
                        # FCFS); after a horizon flush the surplus flight
                        # entries carry none.
                        if len(pending) > len(pim_flight):
                            apply_issue(pending.popleft())
                        inflight[request.kernel_id] -= 1
                        slot = request._slot
                        if slot is not None:
                            slot[0] -= 1
            else:
                done = controller.pop_completed(cycle)
                if done:
                    if self.telemetry is None:
                        inflight = self._kernel_inflight
                        for request in done:
                            if request.is_load:
                                self._handle_completion(ch, request, cycle)
                            elif not request.is_writeback:
                                inflight[request.kernel_id] -= 1
                                slot = request._slot
                                if slot is not None:
                                    slot[0] -= 1
                    else:
                        for request in done:
                            self._handle_completion(ch, request, cycle)
            # pop_completed rebuilds the PIM in-flight list: re-read both.
            mem_flight = channel._in_flight
            pim_flight = pim_exec._in_flight
            if not mem_flight and not pim_flight:
                busy_flags[ch] = False
                comp[ch] = NEVER
            else:
                nxt = mem_flight[0][0] if mem_flight else NEVER
                if pim_flight and pim_flight[0][0] < nxt:
                    nxt = pim_flight[0][0]
                comp[ch] = nxt
            ch = find(True, ch + 1)
        if fast:
            self._comp_min = min(comp)

    # -- replies -----------------------------------------------------------

    def _stage_replies(self) -> None:
        cycle = self.cycle
        heap = self._reply_heap
        if not heap or heap[0][0] > cycle:
            return
        sm_flags = self._sm_active._flags
        sms = self.sms
        telemetry = self.telemetry
        inflight = self._kernel_inflight
        while heap and heap[0][0] <= cycle:
            _, _, request = heapq.heappop(heap)
            sm = sms[request.source]
            sm.receive_reply(request, cycle)
            if sm._dirty:
                # A retracted (inert) wake leaves the SM parked on the wake
                # heap or already in the active set.
                sm_flags[request.source] = True
            # Inlined _finish_request.
            inflight[request.kernel_id] -= 1
            slot = request._slot
            if slot is not None:
                slot[0] -= 1
            if telemetry is not None:
                telemetry.record_return(request, cycle)

    # -- controllers -------------------------------------------------------

    def _stage_controllers(self) -> None:
        if self.telemetry is not None:
            # The object tick stamps mc_blocked telemetry per issue; the
            # fused path does not, so telemetry runs drop to the reference.
            super()._stage_controllers()
            return
        if self._all_fused:
            # Array scheduler: one compare on idle cycles, one masked scan
            # otherwise — no snapshot lists, no per-channel heap churn.
            wake = self._ctl_wake
            mc_flags = self._mc_active._flags
            nch = self._nch
            ch = mc_flags.index(True)
            if ch < nch:
                # Entries parked or woken under the object discipline
                # (step()'s wake-heap drain, the VC2 ingress): fold them
                # into the array and re-examine.
                while ch < nch:
                    wake[ch] = 0
                    mc_flags[ch] = False
                    ch = mc_flags.index(True, ch + 1)
                self._ctl_min = 0
            cycle = self.cycle
            if cycle < self._ctl_min:
                return
            controllers = self.controllers
            busy_flags = self._busy_channels._flags
            for ch, due in enumerate(wake):
                if due > cycle:
                    continue
                controller = controllers[ch]
                controller._dirty = False
                if self._fused_tick(controller, ch, cycle) is not None:
                    busy_flags[ch] = True
                wake[ch] = 0 if controller._dirty else controller._next_wake
            self._ctl_min = min(wake)
            return
        active = self._mc_active
        if not active:
            return
        cycle = self.cycle
        controllers = self.controllers
        wake_heap = self._wake_heap
        fused = self._fused_ctl
        for ch in active.snapshot():
            controller = controllers[ch]
            if not fused[ch]:
                if controller.tick(cycle) is not None:
                    self._busy_channels.add(ch)
                if controller._dirty:
                    continue
                wake = controller.next_wake_cycle(cycle)
                if wake <= cycle + 1:
                    continue
                active.discard(ch)
                if wake < NEVER:
                    heapq.heappush(wake_heap, (wake, 0, ch))
                continue
            # Fused FR-FCFS controller (refresh disabled): tick gate,
            # decide, and the next_wake_cycle parking test inlined.
            if controller._dirty or cycle >= controller._next_wake:
                controller._dirty = False
                if self._fused_tick(controller, ch, cycle) is not None:
                    self._busy_channels.add(ch)
            if controller._dirty:
                continue
            wake = controller._next_wake
            if wake <= cycle + 1:
                if (
                    controller._switch_target is not None
                    or controller.mem_queue._live
                    or controller.pim_queue
                ):
                    continue
                active.discard(ch)  # pure idle, no refresh: external wake only
                continue
            active.discard(ch)
            if wake < NEVER:
                heapq.heappush(wake_heap, (wake, 0, ch))

    def _fused_tick(self, c: MemoryController, ch: int, cycle: int):
        """``MemoryController.tick`` body for a refresh-free FR-FCFS
        controller (the dirty/wake gate ran in the stage loop).

        No refresh hook: fused controllers have refresh disabled, so
        ``_refresh_until`` stays 0 and the object tick would skip it too.
        """
        if c._switch_target is not None:
            if c._drain_done(cycle):
                c._finish_switch(cycle)
            else:
                c._next_wake = max(cycle + 1, c._drain_complete_cycle())
                return None
        if c.mode is Mode.MEM:
            return self._fused_mem(c, ch, cycle)
        return self._fused_pim(c, ch, cycle)

    def _fused_mem(self, c: MemoryController, ch: int, cycle: int):
        """FR-FCFS MEM-mode decide + issue over the bank arrays."""
        a = self._ba
        mem_queue = c.mem_queue
        if not mem_queue._live:
            if c.pim_queue:
                return self._fused_switch(c, Mode.PIM, cycle)
            # Both queues empty and no refresh: nothing internal can wake
            # this controller — park at NEVER; an enqueue (dirty) re-arms.
            c._next_wake = NEVER
            return None
        pim_queue = c.pim_queue
        decide = self._k_decide
        if decide is not None:
            # Compiled path: the decide body (conflict marking, masked
            # argmin, park-wake reduction) runs in _kernels.c over the
            # same array rows; outcomes map 1:1 onto the numpy branches.
            out = self._k_out
            decide(
                self._k_addr[ch],
                self._nbk,
                cycle,
                1 if pim_queue and pim_queue[0].mc_seq < mem_queue.head().mc_seq else 0,
                1 if a.has_conflict[ch] else 0,
                1 if a.has_issued[ch] else 0,
                self._k_out_addr,
            )
            a.has_conflict[ch] = out[0] != 0
            a.has_issued[ch] = out[1] != 0
            code = out[2]
            if code == 0:  # park at the earliest candidate accept
                c._next_wake = out[3]
                return None
            if code == 3:  # every working bank stalled behind older PIM
                return self._fused_switch(c, Mode.PIM, cycle)
            bank = out[3]
            if code == 1:  # row hit
                request = mem_queue.row_head(bank, int(a.open_row[ch, bank]))
            else:
                request = mem_queue.bank_head(bank)
            return self._fused_issue_mem(c, ch, bank, request, cycle)
        stalled = None
        if pim_queue and pim_queue[0].mc_seq < mem_queue.head().mc_seq:
            # Oldest overall is PIM: mark newly-stalled banks (pending work,
            # issued since the switch, open row with no pending hit) and
            # switch once every bank with work has stalled.
            live = a.bank_live[ch]
            conflict = a.conflict[ch]
            newly = (
                (live > 0)
                & a.issued[ch]
                & ~conflict
                & (a.open_row[ch] >= 0)
                & (a.hit_seq[ch] == NOSEQ)
            )
            if newly.any():
                conflict |= newly
                a.has_conflict[ch] = True
            if a.has_conflict[ch]:
                if not ((live > 0) & ~conflict).any():
                    return self._fused_switch(c, Mode.PIM, cycle)
                stalled = conflict
                masked = np.where(
                    (a.accept_at[ch] > cycle) | conflict, NOSEQ, a.score[ch]
                )
            else:
                masked = np.where(a.accept_at[ch] > cycle, NOSEQ, a.score[ch])
        else:
            # clear_conflict_bits(): both flags, every bank (the fills are
            # gated on the sticky any-bit-set flags).
            if a.has_conflict[ch]:
                a.conflict[ch].fill(False)
                a.has_conflict[ch] = False
            if a.has_issued[ch]:
                a.issued[ch].fill(False)
                a.has_issued[ch] = False
            masked = np.where(a.accept_at[ch] > cycle, NOSEQ, a.score[ch])
        # One argmin over the combined score: hits (< HIT_BIAS) beat
        # non-hits, older arrivals beat newer, NOSEQ means nothing ready.
        bank = int(masked.argmin())
        best = int(masked[bank])
        if best >= NOSEQ:
            # Every candidate bank (live work, not conflict-masked) has
            # accept_at in the future, and the decide inputs are static
            # until an enqueue (dirty) or our own issue: park at the
            # earliest candidate accept instead of re-ticking every cycle.
            candidates = a.bank_live[ch] > 0
            if stalled is not None:
                candidates &= ~stalled
            c._next_wake = int(np.where(candidates, a.accept_at[ch], NOSEQ).min())
            return None
        if best < HIT_BIAS:
            request = mem_queue.row_head(bank, int(a.open_row[ch, bank]))
        else:
            request = mem_queue.bank_head(bank)
        return self._fused_issue_mem(c, ch, bank, request, cycle)

    def _fused_issue_mem(
        self, c: MemoryController, ch: int, bank: int, request: Request, cycle: int
    ) -> Request:
        """Inlined ``mem_queue.remove`` + ``Channel.issue_mem`` + bookkeeping."""
        a = self._ba
        c.mem_queue.remove(request)
        t = self._timings
        channel = c.channel
        row = request.row
        open_row = int(a.open_row[ch, bank])
        next_col = int(a.next_col[ch, bank])
        is_write = request.type is RequestType.MEM_STORE
        # Bank.schedule: place PRE/ACT/column commands, advance the rails.
        act = None
        if open_row == row:
            kind = _HIT
            col = max(cycle, next_col, channel.next_col_bus)
            first_cmd = col
        elif open_row < 0:
            kind = _MISS
            act = max(cycle, int(a.act_ready[ch, bank]), channel.next_act)
            col = max(act + t.tRCD, next_col, channel.next_col_bus)
            first_cmd = act
        else:
            kind = _CONFLICT
            pre = max(cycle, int(a.pre_ready[ch, bank]))
            act = max(pre + t.tRP, int(a.act_ready[ch, bank]), channel.next_act)
            col = max(act + t.tRCD, next_col, channel.next_col_bus)
            first_cmd = pre
        if is_write:
            completion = col + t.tWL + t.burst_length
            write_recovery = completion + t.tWR
            read_to_pre = 0
        else:
            completion = col + t.tCL + t.burst_length
            write_recovery = 0
            read_to_pre = col + t.tRTP
        a.open_row[ch, bank] = row
        a.next_col[ch, bank] = col + t.tCCDl
        a.accept_at[ch, bank] = col
        if act is not None:
            pre_ready = act + t.tRAS
            act_ready = act
        else:
            pre_ready = int(a.pre_ready[ch, bank])
            act_ready = int(a.act_ready[ch, bank])
        pre_ready = max(pre_ready, read_to_pre, write_recovery)
        a.pre_ready[ch, bank] = pre_ready
        a.act_ready[ch, bank] = max(act_ready, pre_ready + t.tRP)
        if completion > int(a.busy_until[ch, bank]):
            a.busy_until[ch, bank] = completion
        channel.banks[bank].state.busy_intervals.append((first_cmd, completion))
        # Channel rails + stats + in-flight heap (Channel.issue_mem tail).
        channel.next_col_bus = col + t.burst_length
        if act is not None:
            channel.next_act = act + t.tRRD
        channel.stats.record_mem(kind, request)
        request.access_kind = kind.value
        request.cycle_issued = cycle
        channel._heap_seq += 1
        heapq.heappush(channel._in_flight, (completion, channel._heap_seq, request))
        if completion < self._comp_next[ch]:
            self._comp_next[ch] = completion
        if completion < self._comp_min:
            self._comp_min = completion
        # Controller tail: flags, digests, PIM uniformity, switch conflicts.
        a.issued[ch, bank] = True
        a.has_issued[ch] = True
        c.mem_queue.resync_hit(bank)
        pim_exec = c.pim_exec
        if pim_exec._rows_uniform and row != pim_exec.open_row:
            pim_exec._rows_uniform = False
        if c._pre_switch_rows:
            c._attribute_post_switch_conflict(request)
        c.stats.mem_issued += 1
        c._next_wake = cycle + 1
        c._dirty = True
        return request

    def _fused_pim(self, c: MemoryController, ch: int, cycle: int):
        """FR-FCFS PIM-mode decide + batched drain of the queued ops.

        The per-op object discipline is: issue the head, park at its
        completion (``end``), re-tick there, issue the next head, and so
        on — one scheduler round-trip per op.  During such a parked chain
        no external event can change a decide: MEM and trailing-PIM
        arrivals are provably inert (``_WakeFilteredController``), the MEM
        head is static while non-empty (PIM mode issues nothing from it),
        and any request arriving after the chain started carries a larger
        ``mc_seq`` than every op already queued — so the older-MEM switch
        condition for each queued op is fully determined when the chain
        starts.  The whole queue snapshot can therefore be drained in one
        pass, replaying the exact per-op sequence (issue cycle of op *i*
        is op *i-1*'s completion, so ``busy_cycles`` telescopes) and
        stopping where the sequential discipline would:

        * an op whose older-MEM switch condition fires is left queued and
          the controller parks at the previous op's issue tick + 1 — the
          cycle the sequential path re-ticks and begins the switch;
        * after draining the snapshot it parks at the last issue tick + 1,
          where the sequential path either finds new arrivals (and starts
          a new chain at the same cycle with the same rail state) or finds
          the queue empty and evaluates the MEM switch — both identical.
        """
        pim_queue = c.pim_queue
        if not pim_queue:
            if cycle < c._pim_chain_until:
                # Mid-window tick (a completion marked the controller dirty
                # while it sat in the active set): the drained queue is
                # logically still non-empty — re-park at the chain end.
                c._next_wake = c._pim_chain_until
                return None
            if c.mem_queue._live:
                return self._fused_switch(c, Mode.MEM, cycle)
            # Both queues empty and no refresh: nothing internal can wake
            # this controller — park at NEVER; an enqueue (dirty) re-arms.
            c._next_wake = NEVER
            return None
        head = pim_queue[0]
        pim_exec = c.pim_exec
        mem_head = c.mem_queue.head()
        mem_seq = mem_head.mc_seq if mem_head is not None else None
        if (
            mem_seq is not None
            and mem_seq < head.mc_seq
            and pim_exec.would_switch_row(head)
        ):
            return self._fused_switch(c, Mode.MEM, cycle)
        if cycle < pim_exec.busy_until:
            # The decide inputs are static until an enqueue (dirty) or our
            # own issue, and the busy gate holds until busy_until: park
            # there instead of re-ticking every cycle like the object.
            c._next_wake = pim_exec.busy_until
            return None
        # Batched drain (PIMExecutor.issue inlined per op).  Rails commit
        # immediately — they already hold their final values at every
        # logical issue tick; stats and functional execution are deferred
        # to each op's tick via the executor's pending queue, so a
        # simulation horizon cutting the window mid-chain observes exactly
        # the ops the object engine would have issued by then.
        t = self._timings
        ccdl = t.tCCDl
        in_flight = pim_exec._in_flight
        pending = pim_exec._pending
        # A timeline sampler reads queue occupancy at fixed cycles: keep
        # the per-tick drain so the sampled pim_queue depths match the
        # object engine (the parked chain still skips idle re-ticks).
        # VC2 runs use the object ingress, whose backpressure check can't
        # see the virtual occupancy of a drained chain — same cap.
        single = self.timeline is not None or not self._vc1
        chain_ticks = c._chain_ticks
        issued = 0
        first_end = 0
        tick = cycle  # issue cycle of the current op (= previous op's end)
        while True:
            pim_queue.popleft()
            next_col = pim_exec.next_col
            switched = False
            if head.pim_dram:
                if pim_exec.would_switch_row(head):
                    start = pim_exec._switch_row_rails(head.row, tick, t)
                    switched = True
                else:
                    start = tick if tick > next_col else next_col
                end = start + ccdl
                rf_only = False
            else:
                start = tick if tick > next_col else next_col
                end = start + 1
                rf_only = True
            pim_exec.next_col = end
            pim_exec.busy_until = end
            head.cycle_issued = tick
            in_flight.append((end, head))
            pending.append((tick, start, end, rf_only, switched, head))
            if tick > cycle:
                # Sequentially this op stays queued until its issue tick:
                # it still occupies a pim_queue slot for backpressure.
                chain_ticks.append(tick)
            if not issued:
                first_end = end
            issued += 1
            if single or not pim_queue:
                break
            nxt = pim_queue[0]
            if (
                mem_seq is not None
                and mem_seq < nxt.mc_seq
                and pim_exec.would_switch_row(nxt)
            ):
                break
            head = nxt
            tick = end
        # Park at the last issue tick + 1 (see docstring); not dirty — no
        # wake can move a parked PIM chain earlier.  The window marker
        # keeps arrival wakes inert while the drained queue is logically
        # still non-empty (see ``_WakeFilteredController``).
        c._next_wake = tick + 1
        c._pim_chain_until = tick + 1
        if first_end < self._comp_next[ch]:
            self._comp_next[ch] = first_end
        if first_end < self._comp_min:
            self._comp_min = first_end
        c.stats.pim_issued += issued
        return head

    def _collect_results(self):
        # Commit deferred issue stats for batch ops whose logical issue
        # tick falls inside the simulated window (see ``_fused_pim``);
        # later ops stay uncounted, as in the object engine.  ``step``
        # post-increments, so the last processed tick is ``cycle - 1``.
        final = self.cycle - 1
        for pim_exec in self.pim_execs:
            if pim_exec._pending:
                pim_exec.flush_issue_stats(final)
        return super()._collect_results()

    def _fused_switch(self, c: MemoryController, target: Mode, cycle: int):
        c._begin_switch(target, cycle)
        c._next_wake = max(cycle + 1, c._drain_complete_cycle())
        c._dirty = True
        return None

    # -- quiescence / fast-forward ----------------------------------------
    #
    # The array scheduler parks controllers outside the active set and the
    # wake heap, so the engine's quiescence contract must fold the array
    # in: a controller due at or before the current cycle blocks the skip
    # (it would act this step — the exact cases the object discipline kept
    # in the active set), and one parked further out bounds the jump the
    # same way a wake-heap entry would.

    def _quiescent(self) -> bool:
        if self._backlog or self._mc_active or self._sm_active:
            return False
        if (
            self._all_fused
            and self.telemetry is None
            and self._ctl_min <= self.cycle
        ):
            return False
        return self.mesh is None or not self.mesh.occupancy

    def _fast_forward_clock(self, limit: int) -> None:
        if self._all_fused and self.telemetry is None and self._ctl_min < limit:
            limit = self._ctl_min
        super()._fast_forward_clock(limit)

    def _finish_request(self, request: Request) -> None:
        self._kernel_inflight[request.kernel_id] -= 1
        # Return the request to its replay slot.  Whether the *object* is
        # reused is decided at replay time: requests that entered the
        # tombstone-indexed MEM queue are rebuilt fresh there (stale lazy
        # index references may survive), the rest are reused in place.
        slot = request._slot
        if slot is not None:
            slot[0] -= 1

    def enable_telemetry(self, *args, **kwargs):
        telemetry = super().enable_telemetry(*args, **kwargs)
        # Telemetry folds per-request hop stamps into its accounting;
        # recycled requests would carry stale stamps from earlier flights.
        self._warp_cache.disable_recycling()
        if self._rings_on:
            # Telemetry stages (and their buffer-watch hooks) work on the
            # BoundedQueues: migrate the in-flight handles back into the
            # object queues in FIFO order, carry the occupancy telemetry
            # over, and route the hop stages to their object bodies.
            self._rings_on = False
            pool = self._pool
            objs = pool.objs
            for rings, queues in (
                (self._sm_rings, self._sm_q0),
                (self._in_rings, self._in_q0),
                (self._dram_rings, self._dram_q0),
            ):
                for ring, queue in zip(rings, queues):
                    items = queue._items
                    for h in ring.snapshot():
                        request = objs[h]
                        items.append(request)
                        if request._slot is None:
                            pool.release(request)
                    queue.pushes += ring.pushes
                    if ring.peak_occupancy > queue.peak_occupancy:
                        queue.peak_occupancy = ring.peak_occupancy
                    ring.clear()
        if self._all_fused:
            # Telemetry routes the controllers stage to the object
            # implementation, which never reads the wake array: migrate
            # array-parked controllers into the active set so the object
            # discipline re-parks them on the wake heap.
            for ch in range(len(self.controllers)):
                self._mc_active.add(ch)
        return telemetry

    # -- MC ingress --------------------------------------------------------

    def _stage_mc_ingress(self) -> None:
        if not self._vc1:
            super()._stage_mc_ingress()
            return
        if self._rings_on:
            self._ring_ingress()
            return
        in_flags = self._ingress_active._flags
        nch = self._nch
        find = in_flags.index
        ch = find(True)
        if ch >= nch:
            return
        cycle = self.cycle
        dram_q0 = self._dram_q0
        controllers = self.controllers
        # The inlined admission below covers fused controllers with no
        # telemetry: plain FR-FCFS has a no-op ``on_enqueue`` and the
        # ingress already performed the capacity check, so the admission
        # body is the queue append, the arrival stamps/stats, and the
        # wake-retraction filter (see ``_WakeFilteredController``).
        fused_ctl = self._fused_ctl
        inline = self.telemetry is None
        all_fused = self._all_fused
        wake = self._ctl_wake
        mc_flags = self._mc_active._flags
        mode_pim = Mode.PIM
        mode_mem = Mode.MEM
        while ch < nch:
            items = dram_q0[ch]._items
            if not items:
                ch = find(True, ch + 1)
                continue
            head = items[0]
            c = controllers[ch]
            if head.is_pim:
                occupancy = len(c.pim_queue)
                ticks = c._chain_ticks
                if ticks:
                    # Batch ops not yet at their logical pop cycle still
                    # occupy pim_queue slots (see ``_fused_pim``).
                    while ticks and ticks[0] <= cycle:
                        ticks.popleft()
                    occupancy += len(ticks)
                if occupancy >= c.pim_queue_size:
                    ch = find(True, ch + 1)
                    continue
            elif c.mem_queue._live >= c.mem_queue_size:
                ch = find(True, ch + 1)
                continue
            # Inlined BoundedQueue.pop + the engine's on_pop watch hook.
            items.popleft()
            self._backlog -= 1
            if not items:
                in_flags[ch] = False
            if not (inline and fused_ctl[ch]):
                c.enqueue(head, cycle)
                if c._dirty and (self.telemetry is not None or not all_fused):
                    # A retracted (inert) wake leaves the controller parked
                    # on the wake heap or already in the active set.
                    mc_flags[ch] = True
                ch = find(True, ch + 1)
                continue
            head.mc_seq = c._next_seq
            c._next_seq += 1
            head.cycle_mc_arrival = cycle
            stats = c.stats
            kid = head.kernel_id
            if head.is_pim:
                c.pim_queue.append(head)
                stats.pim_arrivals += 1
                k = stats.kernel_pim_arrivals
                k[kid] = k.get(kid, 0) + 1
                retract = (
                    len(c.pim_queue) > 1
                    or (c.mode is mode_mem and c.mem_queue._live)
                    or (c.mode is mode_pim and cycle < c._pim_chain_until)
                )
            else:
                c.mem_queue.append(head)
                stats.mem_arrivals += 1
                k = stats.kernel_mem_arrivals
                k[kid] = k.get(kid, 0) + 1
                retract = c.mode is mode_pim and (
                    c.pim_queue or cycle < c._pim_chain_until
                )
            dirty = c._dirty
            if c._switch_target is None and not retract:
                dirty = True
                c._dirty = True
            if dirty:
                if all_fused:
                    wake[ch] = 0
                    self._ctl_min = 0
                else:
                    mc_flags[ch] = True
            ch = find(True, ch + 1)

    def _ring_ingress(self) -> None:
        """The fused ingress over handle rings (telemetry is off by mode)."""
        in_flags = self._ingress_active._flags
        nch = self._nch
        find = in_flags.index
        ch = find(True)
        if ch >= nch:
            return
        cycle = self.cycle
        rings = self._dram_rings
        controllers = self.controllers
        pool = self._pool
        objs = pool.objs
        pim_col = pool.is_pim
        free = pool._free
        fused_ctl = self._fused_ctl
        all_fused = self._all_fused
        wake = self._ctl_wake
        mc_flags = self._mc_active._flags
        mode_pim = Mode.PIM
        mode_mem = Mode.MEM
        while ch < nch:
            ring = rings[ch]
            head_i = ring.head
            if head_i == ring.tail:
                ch = find(True, ch + 1)
                continue
            h = ring.buf[head_i & ring.mask]
            c = controllers[ch]
            if pim_col[h]:
                occupancy = len(c.pim_queue)
                ticks = c._chain_ticks
                if ticks:
                    # Batch ops not yet at their logical pop cycle still
                    # occupy pim_queue slots (see ``_fused_pim``).
                    while ticks and ticks[0] <= cycle:
                        ticks.popleft()
                    occupancy += len(ticks)
                if occupancy >= c.pim_queue_size:
                    ch = find(True, ch + 1)
                    continue
            elif c.mem_queue._live >= c.mem_queue_size:
                ch = find(True, ch + 1)
                continue
            # Pop the ring; the request leaves the NoC here, so this is a
            # materialization boundary (and a transient handle's release).
            ring.head = head_i + 1
            self._backlog -= 1
            if ring.head == ring.tail:
                in_flags[ch] = False
            head = objs[h]
            if head._slot is None:
                head._handle = -1
                objs[h] = None
                free.append(h)
            if not fused_ctl[ch]:
                c.enqueue(head, cycle)
                if c._dirty and not all_fused:
                    # A retracted (inert) wake leaves the controller parked
                    # on the wake heap or already in the active set.
                    mc_flags[ch] = True
                ch = find(True, ch + 1)
                continue
            head.mc_seq = c._next_seq
            c._next_seq += 1
            head.cycle_mc_arrival = cycle
            stats = c.stats
            kid = head.kernel_id
            if head.is_pim:
                c.pim_queue.append(head)
                stats.pim_arrivals += 1
                k = stats.kernel_pim_arrivals
                k[kid] = k.get(kid, 0) + 1
                retract = (
                    len(c.pim_queue) > 1
                    or (c.mode is mode_mem and c.mem_queue._live)
                    or (c.mode is mode_pim and cycle < c._pim_chain_until)
                )
            else:
                c.mem_queue.append(head)
                stats.mem_arrivals += 1
                k = stats.kernel_mem_arrivals
                k[kid] = k.get(kid, 0) + 1
                retract = c.mode is mode_pim and (
                    c.pim_queue or cycle < c._pim_chain_until
                )
            dirty = c._dirty
            if c._switch_target is None and not retract:
                dirty = True
                c._dirty = True
            if dirty:
                if all_fused:
                    wake[ch] = 0
                    self._ctl_min = 0
                else:
                    mc_flags[ch] = True
            ch = find(True, ch + 1)

    # -- L2 ----------------------------------------------------------------

    def _stage_l2(self) -> None:
        if not self._vc1 or self.telemetry is not None:
            super()._stage_l2()
            return
        if self._rings_on:
            self._ring_l2()
            return
        l2_flags = self._l2_active._flags
        nch = self._nch
        find = l2_flags.index
        ch = find(True)
        if ch >= nch:
            return
        cycle = self.cycle
        l2_latency = self.config.l2_latency
        in_q0 = self._in_q0
        dram_q0 = self._dram_q0
        l2_slices = self.l2_slices
        in_flags = self._ingress_active._flags
        hit, blocked, secondary = (
            LookupResult.HIT,
            LookupResult.BLOCKED,
            LookupResult.MISS_SECONDARY,
        )
        while ch < nch:
            queue = in_q0[ch]
            items = queue._items
            if not items:
                ch = find(True, ch + 1)
                continue
            head = items[0]
            dram_queue = dram_q0[ch]
            dram_items = dram_queue._items
            # Single VC: PIM forward and MEM miss share one L2->DRAM queue.
            if len(dram_items) >= dram_queue.capacity:
                ch = find(True, ch + 1)
                continue
            forward = True
            if not head.is_pim:
                outcome = l2_slices[ch].lookup(head)
                if outcome == blocked:
                    ch = find(True, ch + 1)
                    continue  # MSHRs full: head stays put
                if outcome == hit:
                    forward = False
                    if head.is_load:
                        self._schedule_reply(head, cycle + l2_latency)
                    else:
                        self._finish_request(head)
                elif outcome == secondary:
                    forward = False  # merged; replied when the fill returns
            # Inlined pop (+ on_pop hook) from the interconnect->L2 queue.
            items.popleft()
            self._backlog -= 1
            if not items:
                l2_flags[ch] = False
            if forward:  # inlined try_push (+ on_push hook) into L2->DRAM
                dram_items.append(head)
                dram_queue.pushes += 1
                occupancy = len(dram_items)
                if occupancy > dram_queue.peak_occupancy:
                    dram_queue.peak_occupancy = occupancy
                self._backlog += 1
                in_flags[ch] = True
            ch = find(True, ch + 1)

    def _ring_l2(self) -> None:
        """The fused L2 sink over handle rings.

        PIM requests forward on their ``is_pim`` column alone — the
        object is only materialized for MEM lookups (the tag/MSHR state
        keys on it) and released when a hit or MSHR merge takes the
        request out of the NoC.
        """
        l2_flags = self._l2_active._flags
        nch = self._nch
        find = l2_flags.index
        ch = find(True)
        if ch >= nch:
            return
        cycle = self.cycle
        l2_latency = self.config.l2_latency
        in_rings = self._in_rings
        dram_rings = self._dram_rings
        l2_slices = self.l2_slices
        in_flags = self._ingress_active._flags
        pool = self._pool
        objs = pool.objs
        pim_col = pool.is_pim
        free = pool._free
        hit, blocked, secondary = (
            LookupResult.HIT,
            LookupResult.BLOCKED,
            LookupResult.MISS_SECONDARY,
        )
        while ch < nch:
            ring = in_rings[ch]
            head_i = ring.head
            if head_i == ring.tail:
                ch = find(True, ch + 1)
                continue
            dram_ring = dram_rings[ch]
            # Single VC: PIM forward and MEM miss share one L2->DRAM queue.
            if dram_ring.tail - dram_ring.head >= dram_ring.capacity:
                ch = find(True, ch + 1)
                continue
            h = ring.buf[head_i & ring.mask]
            forward = True
            head = None
            if not pim_col[h]:
                head = objs[h]
                outcome = l2_slices[ch].lookup(head)
                if outcome == blocked:
                    ch = find(True, ch + 1)
                    continue  # MSHRs full: head stays put
                if outcome == hit:
                    forward = False
                    if head.is_load:
                        self._schedule_reply(head, cycle + l2_latency)
                    else:
                        self._finish_request(head)
                elif outcome == secondary:
                    forward = False  # merged; replied when the fill returns
            ring.head = head_i + 1
            self._backlog -= 1
            if ring.head == ring.tail:
                l2_flags[ch] = False
            if forward:
                tail = dram_ring.tail
                dram_ring.buf[tail & dram_ring.mask] = h
                dram_ring.tail = tail + 1
                dram_ring.pushes += 1
                occupancy = tail + 1 - dram_ring.head
                if occupancy > dram_ring.peak_occupancy:
                    dram_ring.peak_occupancy = occupancy
                self._backlog += 1
                in_flags[ch] = True
            elif head._slot is None:
                # Hit/merge: the request leaves the NoC without reaching
                # the MC — release a transient handle here.
                head._handle = -1
                objs[h] = None
                free.append(h)
            ch = find(True, ch + 1)

    # -- crossbar ----------------------------------------------------------

    def _stage_crossbar(self) -> None:
        if self.mesh is not None or not self._vc1:
            super()._stage_crossbar()
            return
        if self._rings_on:
            self._ring_crossbar()
            return
        x_flags = self._xbar_active._flags
        nsm = self._nsm
        find = x_flags.index
        i = find(True)
        if i >= nsm:
            return
        # Single-VC iSlip: each input offers exactly one head to one
        # output, so every grant is accepted and the request/grant/accept
        # phases collapse into one pass.  can_push is evaluated against
        # pre-transfer occupancy for every proposal, as in the object
        # arbiter (at most one push per output per cycle, so a proposal
        # admitted here cannot overflow).  Collisions resolve incrementally
        # against the grant pointer (min clockwise distance — the same
        # winner the object arbiter's scan picks), so the per-cycle state
        # is two preallocated registers per output, no dict or lists.
        xbar = self.crossbar
        sm_q0 = self._sm_q0
        in_q0 = self._in_q0
        grant_ptr = xbar._grant_ptr
        num_inputs = xbar.num_inputs
        prop_in = self._xp_in
        prop_head = self._xp_head
        touched = None
        while i < nsm:
            items = sm_q0[i]._items
            if not items:
                i = find(True, i + 1)
                continue
            head = items[0]
            out = head.channel
            out_queue = in_q0[out]
            if len(out_queue._items) >= out_queue.capacity:
                i = find(True, i + 1)
                continue
            prev = prop_in[out]
            if prev < 0:
                prop_in[out] = i
                prop_head[out] = head
                if touched is None:
                    touched = [out]
                else:
                    touched.append(out)
            else:
                pointer = grant_ptr[out]
                if (i - pointer) % num_inputs < (prev - pointer) % num_inputs:
                    prop_in[out] = i
                    prop_head[out] = head
            i = find(True, i + 1)
        if touched is None:
            return
        l2_flags = self._l2_active._flags
        stalled = self._sm_stalled
        sm_flags = self._sm_active._flags
        sms = self.sms
        for out in touched:
            chosen = prop_in[out]
            head = prop_head[out]
            prop_in[out] = -1
            prop_head[out] = None
            # Inlined pop (+ on_pop) from the SM buffer ...
            in_items = sm_q0[chosen]._items
            in_items.popleft()
            self._backlog -= 1
            if not in_items:
                x_flags[chosen] = False
            if stalled[chosen]:
                # The SM parked on this full buffer: the freed slot is the
                # first chance its retry scan could succeed — wake it now
                # (the SM stage runs after the crossbar this same cycle).
                stalled[chosen] = False
                sm_flags[chosen] = True
                sms[chosen]._dirty = True
            # ... and try_push (+ on_push) into the interconnect->L2 queue.
            out_queue = in_q0[out]
            out_items = out_queue._items
            out_items.append(head)
            out_queue.pushes += 1
            occupancy = len(out_items)
            if occupancy > out_queue.peak_occupancy:
                out_queue.peak_occupancy = occupancy
            self._backlog += 1
            l2_flags[out] = True
            grant_ptr[out] = (chosen + 1) % num_inputs
            xbar.transfers += 1

    def _ring_crossbar(self) -> None:
        """The fused single-VC iSlip pass over handle rings.

        Identical arbitration to the deque body; the output port comes
        from the pool's ``channel`` column instead of the head object,
        and a grant moves one integer between rings.  The head registers
        (``_xp_head``) are unnecessary — a ring head is re-read at grant
        time with two array ops, and only this loop pops the rings.
        """
        x_flags = self._xbar_active._flags
        nsm = self._nsm
        find = x_flags.index
        i = find(True)
        if i >= nsm:
            return
        xbar = self.crossbar
        sm_rings = self._sm_rings
        in_rings = self._in_rings
        grant_ptr = xbar._grant_ptr
        num_inputs = xbar.num_inputs
        prop_in = self._xp_in
        chan_col = self._pool.channel
        touched = None
        while i < nsm:
            ring = sm_rings[i]
            head_i = ring.head
            if head_i == ring.tail:
                i = find(True, i + 1)
                continue
            out = chan_col[ring.buf[head_i & ring.mask]]
            out_ring = in_rings[out]
            if out_ring.tail - out_ring.head >= out_ring.capacity:
                i = find(True, i + 1)
                continue
            prev = prop_in[out]
            if prev < 0:
                prop_in[out] = i
                if touched is None:
                    touched = [out]
                else:
                    touched.append(out)
            else:
                pointer = grant_ptr[out]
                if (i - pointer) % num_inputs < (prev - pointer) % num_inputs:
                    prop_in[out] = i
            i = find(True, i + 1)
        if touched is None:
            return
        l2_flags = self._l2_active._flags
        stalled = self._sm_stalled
        sm_flags = self._sm_active._flags
        sms = self.sms
        for out in touched:
            chosen = prop_in[out]
            prop_in[out] = -1
            in_ring = sm_rings[chosen]
            head_i = in_ring.head
            h = in_ring.buf[head_i & in_ring.mask]
            in_ring.head = head_i + 1
            self._backlog -= 1
            if in_ring.head == in_ring.tail:
                x_flags[chosen] = False
            if stalled[chosen]:
                # The SM parked on this full buffer: the freed slot is the
                # first chance its retry scan could succeed — wake it now
                # (the SM stage runs after the crossbar this same cycle).
                stalled[chosen] = False
                sm_flags[chosen] = True
                sms[chosen]._dirty = True
            out_ring = in_rings[out]
            tail = out_ring.tail
            out_ring.buf[tail & out_ring.mask] = h
            out_ring.tail = tail + 1
            out_ring.pushes += 1
            occupancy = tail + 1 - out_ring.head
            if occupancy > out_ring.peak_occupancy:
                out_ring.peak_occupancy = occupancy
            self._backlog += 1
            l2_flags[out] = True
            grant_ptr[out] = (chosen + 1) % num_inputs
            xbar.transfers += 1

    # -- writebacks --------------------------------------------------------

    def _stage_writebacks(self) -> None:
        if not self._rings_on:
            super()._stage_writebacks()
            return
        wb_flags = self._wb_active._flags
        nch = self._nch
        find = wb_flags.index
        ch = find(True)
        if ch >= nch:
            return
        cycle = self.cycle
        pool = self._pool
        rings = self._dram_rings
        in_flags = self._ingress_active._flags
        writebacks = self.writebacks
        while ch < nch:
            ring = rings[ch]
            if ring.tail - ring.head < ring.capacity:
                pending = writebacks[ch]
                request = pending.popleft()
                # Writebacks are always transient (no replay slot):
                # acquired here, released at MC ingress.  The object
                # path's try_push hook adds one backlog that the stage
                # immediately re-subtracts — net zero, so no adjustment.
                h = pool.acquire(request, cycle)
                tail = ring.tail
                ring.buf[tail & ring.mask] = h
                ring.tail = tail + 1
                ring.pushes += 1
                occupancy = tail + 1 - ring.head
                if occupancy > ring.peak_occupancy:
                    ring.peak_occupancy = occupancy
                in_flags[ch] = True
                if not pending:
                    wb_flags[ch] = False
            ch = find(True, ch + 1)

    # -- SMs ---------------------------------------------------------------

    def _stage_sms(self) -> None:
        if not self._vc1:
            super()._stage_sms()
            return
        sm_flags = self._sm_active._flags
        nsm = self._nsm
        find = sm_flags.index
        i = find(True)
        if i >= nsm:
            return
        cycle = self.cycle
        sms = self.sms
        wake_heap = self._wake_heap
        rings_on = self._rings_on
        while i < nsm:
            sm = sms[i]
            if sm.instance is None:
                sm_flags[i] = False
                i = find(True, i + 1)
                continue
            before = sm.requests_injected
            # L1-enabled SMs keep the object step (local reply heap, hit
            # path); the common no-L1 configuration takes the fused step
            # (handle-ring variant when the hop pipeline is on).
            issued = (
                self._ring_sm_step(sm, self._sm_rings[i], cycle)
                if rings_on
                else sm.step(cycle)
                if sm.l1 is not None
                else self._fused_sm_step(sm, self._sm_q0[i], cycle)
            )
            if issued:
                sm.requests_injected = before + issued
                kernel_id = sm.instance.kernel_id
                self._injected[kernel_id] += issued
                self._kernel_inflight[kernel_id] += issued
            if sm._dirty:
                i = find(True, i + 1)
                continue
            # No L1 means no local-reply heap: _next_wake is the whole
            # next_event_cycle contract.
            wake = sm._next_wake if sm.l1 is None else sm.next_event_cycle()
            if wake <= cycle + 1:
                i = find(True, i + 1)
                continue
            sm_flags[i] = False
            if wake < NEVER:
                heapq.heappush(wake_heap, (wake, 1, i))
            i = find(True, i + 1)

    def _fused_sm_step(self, sm, out_queue, cycle: int) -> int:
        """``SM.step`` without an L1: no local replies, every issue pushes."""
        if not sm._dirty and cycle < sm._next_wake:
            return 0
        sm._dirty = False
        due = sm._due
        if due and due[0][0] <= cycle:
            self._fused_advance_due(sm, cycle)
        issuable = sm._issuable
        if not issuable:
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
            return 0
        items = out_queue._items
        capacity = out_queue.capacity
        if len(items) >= capacity:
            # Full output queue: with no L1, every candidate fails the push
            # check and the scan is a no-op.  The object engine retries
            # every cycle, but each retry before a crossbar pop is provably
            # a no-op (only this SM pushes to its buffer), so park at the
            # due head and let the grant loop wake us on the pop — the
            # same cycle the object rescan would first succeed (the
            # crossbar stage runs before the SM stage).
            if self._stall_park:
                self._sm_stalled[sm.index] = True
                sm._next_wake = due[0][0] if due else cycle + 1_000_000
            else:
                sm._next_wake = cycle + 1
            return 0
        issued = 0
        slots = 0
        warps = sm.warps
        num_warps = len(warps)
        issue_width = sm.issue_width
        max_outstanding = sm.max_outstanding
        sm_index = sm.index
        if len(issuable) == 1:
            # Rotation is irrelevant for a single candidate; skip the sort
            # (the loop below may remove the member, so don't iterate the
            # live set).
            order = (next(iter(issuable)),)
        else:
            base = sm._issue_rotation
            order = sorted(issuable)
            if base:
                split = bisect_left(order, base)
                order = order[split:] + order[:split]
        xbar_flags = self._xbar_active._flags
        for warp_index in order:
            if slots >= issue_width:
                break
            if len(items) >= capacity:
                break  # queue filled mid-scan: nothing else can issue
            warp = warps[warp_index]
            request = warp.pending[0]
            if request.is_load and sm.outstanding_loads >= max_outstanding:
                continue
            warp.pending.popleft()
            if request.cycle_created < 0:
                request.cycle_created = cycle
            request.source = sm_index
            request.warp = warp_index
            request.cycle_noc_entry = cycle
            # Inlined try_push (+ on_push hook) into the SM output buffer.
            items.append(request)
            out_queue.pushes += 1
            occupancy = len(items)
            if occupancy > out_queue.peak_occupancy:
                out_queue.peak_occupancy = occupancy
            self._backlog += 1
            xbar_flags[sm_index] = True
            if request.is_load:
                sm.outstanding_loads += 1
                if warp.wait_for_replies:
                    warp.waiting_replies += 1
            issued += 1
            slots += 1
            sm._issue_rotation = (warp_index + 1) % num_warps
            if not warp.pending:
                issuable.remove(warp_index)
                if not (warp.wait_for_replies and warp.waiting_replies > 0):
                    heapq.heappush(
                        due,
                        (
                            warp.compute_until if warp.compute_until > cycle else cycle + 1,
                            warp_index,
                        ),
                    )
        if slots:
            if len(items) >= capacity and self._stall_park:
                # Filled the queue mid-scan: every retry before a crossbar
                # pop is a no-op — same park as the full-at-entry case.
                self._sm_stalled[sm_index] = True
                sm._next_wake = due[0][0] if due else cycle + 1_000_000
            else:
                sm._next_wake = cycle + 1
        else:
            # Nothing issued this step.  If issuable warps remain, every
            # one was a load blocked on the outstanding limit (a store or
            # a fitting load would have issued — the output queue had
            # space, so the scan ran to completion).  Only a reply
            # (``receive_reply`` marks the SM dirty) or a due event can
            # unblock either case: park at the due head instead of the
            # object's retry-every-cycle rescan.
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
        return issued

    def _ring_sm_step(self, sm, ring, cycle: int) -> int:
        """``_fused_sm_step`` issuing into a handle ring.

        Identical control flow; the only deltas are the ring occupancy
        checks (``tail - head``) and the handle bind on push — a pinned
        request (replay-recycled) reuses its handle with one column
        refresh, everything else acquires a pool slot.
        """
        if not sm._dirty and cycle < sm._next_wake:
            return 0
        sm._dirty = False
        due = sm._due
        if due and due[0][0] <= cycle:
            self._fused_advance_due(sm, cycle)
        issuable = sm._issuable
        if not issuable:
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
            return 0
        capacity = ring.capacity
        if ring.tail - ring.head >= capacity:
            # Full output ring: park at the due head and let the crossbar
            # grant loop wake us on the pop (see _fused_sm_step; the
            # ring mode implies a crossbar, so the wake always fires).
            self._sm_stalled[sm.index] = True
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
            return 0
        issued = 0
        slots = 0
        warps = sm.warps
        num_warps = len(warps)
        issue_width = sm.issue_width
        max_outstanding = sm.max_outstanding
        sm_index = sm.index
        if len(issuable) == 1:
            order = (next(iter(issuable)),)
        else:
            base = sm._issue_rotation
            order = sorted(issuable)
            if base:
                split = bisect_left(order, base)
                order = order[split:] + order[:split]
        xbar_flags = self._xbar_active._flags
        pool = self._pool
        noc_col = pool.noc_entry
        buf = ring.buf
        mask = ring.mask
        for warp_index in order:
            if slots >= issue_width:
                break
            if ring.tail - ring.head >= capacity:
                break  # ring filled mid-scan: nothing else can issue
            warp = warps[warp_index]
            request = warp.pending[0]
            if request.is_load and sm.outstanding_loads >= max_outstanding:
                continue
            warp.pending.popleft()
            if request.cycle_created < 0:
                request.cycle_created = cycle
            request.source = sm_index
            request.warp = warp_index
            request.cycle_noc_entry = cycle
            h = request._handle
            if h < 0:
                h = pool.acquire(request, cycle)
            else:
                noc_col[h] = cycle  # pinned handle: refresh the flight stamp
            tail = ring.tail
            buf[tail & mask] = h
            ring.tail = tail + 1
            ring.pushes += 1
            occupancy = tail + 1 - ring.head
            if occupancy > ring.peak_occupancy:
                ring.peak_occupancy = occupancy
            self._backlog += 1
            xbar_flags[sm_index] = True
            if request.is_load:
                sm.outstanding_loads += 1
                if warp.wait_for_replies:
                    warp.waiting_replies += 1
            issued += 1
            slots += 1
            sm._issue_rotation = (warp_index + 1) % num_warps
            if not warp.pending:
                issuable.remove(warp_index)
                if not (warp.wait_for_replies and warp.waiting_replies > 0):
                    heapq.heappush(
                        due,
                        (
                            warp.compute_until if warp.compute_until > cycle else cycle + 1,
                            warp_index,
                        ),
                    )
        if slots:
            if ring.tail - ring.head >= capacity:
                # Filled the ring mid-scan: park as in the full-at-entry
                # case (the crossbar pop wakes us).
                self._sm_stalled[sm_index] = True
                sm._next_wake = due[0][0] if due else cycle + 1_000_000
            else:
                sm._next_wake = cycle + 1
        else:
            sm._next_wake = due[0][0] if due else cycle + 1_000_000
        return issued

    def _fused_advance_due(self, sm, cycle: int) -> None:
        """``SM._advance_due_warps`` with batched readiness classification.

        All due entries are popped up front (processing only ever pushes
        entries beyond ``cycle``, so the pop sequence matches the object
        loop).  Entries whose warp is immediately issuable — not done,
        pending requests, compute window elapsed — resolve to an
        idempotent ``issuable.add`` with no state change, so they can be
        classified in bulk and in any order; the rest run the exact
        scalar logic in pop order.
        """
        due = sm._due
        if not due or due[0][0] > cycle:
            return
        warps = sm.warps
        issuable = sm._issuable
        popped = []
        while due and due[0][0] <= cycle:
            popped.append(heapq.heappop(due)[1])
        if len(popped) >= _WARP_BATCH_MIN:
            count = len(popped)
            done = np.fromiter((warps[w].done for w in popped), dtype=bool, count=count)
            pending = np.fromiter(
                (len(warps[w].pending) for w in popped), dtype=np.int64, count=count
            )
            compute_until = np.fromiter(
                (warps[w].compute_until for w in popped), dtype=np.int64, count=count
            )
            ready = warp_ready_batch(done, pending, compute_until, cycle)
            if ready.all():
                issuable.update(popped)
                return
            rest = []
            for index, warp_index in enumerate(popped):
                if ready[index]:
                    issuable.add(warp_index)
                else:
                    rest.append(warp_index)
            popped = rest
        for warp_index in popped:
            warp = warps[warp_index]
            if warp.done:
                continue
            if warp.pending:
                if cycle >= warp.compute_until:
                    issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            if warp.wait_for_replies and warp.waiting_replies > 0:
                continue  # receive_reply re-arms the warp
            if cycle < warp.compute_until:
                heapq.heappush(due, (warp.compute_until, warp_index))
                continue
            phase = next(warp.program, None)
            if phase is None:
                warp.done = True
                sm._live_warps -= 1
                continue
            warp.compute_until = cycle + phase.compute_cycles
            warp.wait_for_replies = phase.wait_for_replies
            warp.pending.extend(phase.requests)
            if warp.pending:
                if cycle >= warp.compute_until:
                    issuable.add(warp_index)
                else:
                    heapq.heappush(due, (warp.compute_until, warp_index))
            else:
                heapq.heappush(
                    due,
                    (
                        warp.compute_until if warp.compute_until > cycle else cycle + 1,
                        warp_index,
                    ),
                )
