"""Fixed-capacity integer ring buffers for the handle pipeline.

The SoA engine's NoC hop queues (SM output buffers, the crossbar->L2
input queues, the L2->DRAM ingress queues) are ``BoundedQueue``s of
:class:`~repro.request.Request` objects in the reference engine.  Under
the fused single-VC pipeline the requests themselves are never *read* by
the hop stages — only a couple of routing fields (``channel``,
``is_pim``) — so the hops can carry plain integer handles into a pooled
:class:`~repro.engine_soa.handles.RequestArrays` instead of object
references.  :class:`HandleRing` is the container for those handles: a
fixed-capacity FIFO over a preallocated ``array('q')`` buffer.

Semantics match ``BoundedQueue`` exactly where the fused pipeline uses
it: FIFO order, a hard capacity that refuses pushes (the stages
pre-check ``full``/``free`` before moving a head, so backpressure
propagates identically), and the same ``pushes``/``peak_occupancy``
telemetry counters.  ``head``/``tail`` are monotonically increasing
Python ints (masked into the power-of-two buffer on access) — occupancy
is ``tail - head`` with no wrap bookkeeping, and a ring that wrapped
billions of times behaves identically to a fresh one.

The backing buffer is a typed ``array('q')`` rather than a list so a
compiled kernel (see ``engine_soa.kernels``) can drain hops directly
from the ring memory via the buffer protocol; the pure-Python stages
index it like any sequence.
"""

from __future__ import annotations

from array import array
from typing import List


def _pow2_at_least(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


class HandleRing:
    """Fixed-capacity FIFO of integer handles.

    The buffer is sized to the next power of two above ``capacity`` so
    indexing is a single mask; the *logical* capacity (where pushes
    start bouncing) stays exactly ``capacity`` to match the
    ``BoundedQueue`` it replaces.
    """

    __slots__ = ("capacity", "name", "buf", "mask", "head", "tail", "pushes", "peak_occupancy")

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        size = _pow2_at_least(capacity)
        self.buf = array("q", bytes(8 * size))
        self.mask = size - 1
        self.head = 0  # next slot to pop (monotonic)
        self.tail = 0  # next slot to fill (monotonic)
        self.pushes = 0
        self.peak_occupancy = 0

    # -- BoundedQueue-compatible surface ------------------------------------

    def __len__(self) -> int:
        return self.tail - self.head

    def __bool__(self) -> bool:
        return self.tail > self.head

    @property
    def full(self) -> bool:
        return self.tail - self.head >= self.capacity

    @property
    def empty(self) -> bool:
        return self.tail == self.head

    @property
    def free_space(self) -> int:
        return self.capacity - (self.tail - self.head)

    def push(self, handle: int) -> None:
        """Append a handle; the caller has already checked capacity.

        The fused stages only ever push after an explicit ``full`` check
        (exactly like their inlined ``BoundedQueue`` pushes), so a full
        ring is a programming error here, not backpressure.
        """
        tail = self.tail
        occupancy = tail - self.head
        if occupancy >= self.capacity:
            raise OverflowError(f"ring {self.name or id(self)} is full")
        self.buf[tail & self.mask] = handle
        self.tail = tail + 1
        self.pushes += 1
        occupancy += 1
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy

    def try_push(self, handle: int) -> bool:
        if self.tail - self.head >= self.capacity:
            return False
        self.push(handle)
        return True

    def peek(self) -> int:
        """Head handle; undefined on an empty ring (caller checks)."""
        return self.buf[self.head & self.mask]

    def pop(self) -> int:
        head = self.head
        if head == self.tail:
            raise IndexError("pop from empty ring")
        self.head = head + 1
        return self.buf[head & self.mask]

    def clear(self) -> None:
        self.head = self.tail

    def snapshot(self) -> List[int]:
        """Handles in FIFO order (head first); for tests and migration."""
        buf, mask = self.buf, self.mask
        return [buf[i & mask] for i in range(self.head, self.tail)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HandleRing({self.snapshot()!r}, capacity={self.capacity})"
