/* Compiled hot-loop kernels for the SoA engine.
 *
 * Built on demand by ``repro.engine_soa.kernels`` with the system C
 * compiler (``gcc -O2 -shared -fPIC``) and loaded through ctypes; the
 * pure-Python/numpy fallbacks in ``system.py`` remain the reference
 * semantics, and every function here must reproduce them bit-exactly
 * (including argmin tie-breaking: first index wins).
 *
 * All array arguments are raw pointers into the engine's persistent
 * ``BankArrays`` numpy buffers (int64 rows, uint8 bool rows), passed
 * once per call via a per-channel pointer table built at init — no
 * per-cycle marshalling.
 */

#include <stdint.h>

/* Must match repro.engine_soa.arrays (checked at load time). */
#define NOSEQ (((int64_t)1) << 62)
#define HIT_BIAS (((int64_t)1) << 61)

/* Outcome codes (out[2]). */
#define DECIDE_PARK 0       /* out[3] = wake cycle (NOSEQ: nothing can) */
#define DECIDE_ISSUE_HIT 1  /* out[3] = bank (row hit: use row_head)     */
#define DECIDE_ISSUE 2      /* out[3] = bank (oldest: use bank_head)     */
#define DECIDE_SWITCH 3     /* every working bank stalled: switch to PIM */

/* ptrs: per-channel row pointers, in this order:
 *   [0] score      (int64)   [1] accept_at (int64)
 *   [2] bank_live  (int64)   [3] open_row  (int64)
 *   [4] hit_seq    (int64)   [5] conflict  (uint8)
 *   [6] issued     (uint8)
 * out: [0] has_conflict' [1] has_issued' [2] code [3] value
 */
long frfcfs_decide(const int64_t *ptrs, int64_t nbanks, int64_t cycle,
                   int64_t pim_older, int64_t has_conflict,
                   int64_t has_issued, int64_t *out) {
    int64_t *score = (int64_t *)ptrs[0];
    int64_t *accept_at = (int64_t *)ptrs[1];
    int64_t *bank_live = (int64_t *)ptrs[2];
    int64_t *open_row = (int64_t *)ptrs[3];
    int64_t *hit_seq = (int64_t *)ptrs[4];
    uint8_t *conflict = (uint8_t *)ptrs[5];
    uint8_t *issued = (uint8_t *)ptrs[6];
    int64_t b, best, bank, wake;
    int conflict_mask = 0;

    if (pim_older) {
        /* Mark newly-stalled banks: pending work, issued since the
         * switch, open row with no pending hit. */
        for (b = 0; b < nbanks; b++) {
            if (bank_live[b] > 0 && issued[b] && !conflict[b] &&
                open_row[b] >= 0 && hit_seq[b] == NOSEQ) {
                conflict[b] = 1;
                has_conflict = 1;
            }
        }
        if (has_conflict) {
            int any_working = 0;
            for (b = 0; b < nbanks; b++) {
                if (bank_live[b] > 0 && !conflict[b]) {
                    any_working = 1;
                    break;
                }
            }
            if (!any_working) {
                out[0] = has_conflict;
                out[1] = has_issued;
                out[2] = DECIDE_SWITCH;
                out[3] = 0;
                return 0;
            }
            conflict_mask = 1;
        }
    } else {
        /* clear_conflict_bits(): both flags, every bank. */
        if (has_conflict) {
            for (b = 0; b < nbanks; b++)
                conflict[b] = 0;
            has_conflict = 0;
        }
        if (has_issued) {
            for (b = 0; b < nbanks; b++)
                issued[b] = 0;
            has_issued = 0;
        }
    }

    /* Masked argmin over the combined score: hits (< HIT_BIAS) beat
     * non-hits, older arrivals beat newer; NOSEQ means not ready.
     * Strict < keeps the first minimal index, like numpy argmin. */
    best = NOSEQ;
    bank = 0;
    for (b = 0; b < nbanks; b++) {
        int64_t s = (accept_at[b] > cycle || (conflict_mask && conflict[b]))
                        ? NOSEQ
                        : score[b];
        if (s < best) {
            best = s;
            bank = b;
        }
    }
    out[0] = has_conflict;
    out[1] = has_issued;
    if (best >= NOSEQ) {
        /* Every candidate bank has accept_at in the future: park at the
         * earliest candidate accept (NOSEQ when no candidate exists). */
        wake = NOSEQ;
        for (b = 0; b < nbanks; b++) {
            if (bank_live[b] > 0 && !(conflict_mask && conflict[b]) &&
                accept_at[b] < wake)
                wake = accept_at[b];
        }
        out[2] = DECIDE_PARK;
        out[3] = wake;
        return 0;
    }
    out[2] = best < HIT_BIAS ? DECIDE_ISSUE_HIT : DECIDE_ISSUE;
    out[3] = bank;
    return 0;
}

/* Sanity handshake for the loader: returns the constants this object
 * was compiled with so Python can verify they match arrays.py. */
long kernel_abi(int64_t *out) {
    out[0] = NOSEQ;
    out[1] = HIT_BIAS;
    out[2] = 1; /* ABI version */
    return 0;
}
