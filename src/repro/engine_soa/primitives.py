"""Vectorized primitives for the SoA engine's hot loops.

Each function here replaces one scalar per-bank (or per-warp) scan from
the object engine with a masked numpy reduction, and each has a unit
test in ``tests/test_engine_soa.py`` pitting it against the scalar
reference on randomized inputs.  All take 1-D per-bank arrays (one
channel's row of :class:`repro.engine_soa.arrays.BankArrays`) so they
can be exercised standalone.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.engine_soa.arrays import NOSEQ


def bank_ready_mask(
    accept_at: np.ndarray,
    bank_live: np.ndarray,
    conflict: np.ndarray,
    cycle: int,
    exclude_conflicts: bool = True,
) -> np.ndarray:
    """Banks that could issue a MEM request this cycle.

    Mirrors the gate at the top of ``frfcfs_pick``: the bank has live
    queued work, its command rail accepts a new command
    (``cycle >= accept_at``), and — in conflict-excluding mode — its
    conflict bit is clear.
    """
    ready = (accept_at <= cycle) & (bank_live > 0)
    if exclude_conflicts:
        ready &= ~conflict
    return ready


def frfcfs_argmin_pick(
    ready: np.ndarray,
    head_seq: np.ndarray,
    hit_seq: np.ndarray,
) -> Tuple[int, bool]:
    """FR-FCFS winner over ready banks: ``(bank, is_row_hit)``.

    Row hits win over non-hits; within each class the oldest arrival
    (minimum ``mc_seq``) wins, matching the scalar scan's tie-breaking
    exactly because ``mc_seq`` values are unique.  Returns ``(-1,
    False)`` when no ready bank has work.
    """
    if not ready.any():
        return -1, False
    masked_hits = np.where(ready, hit_seq, NOSEQ)
    bank = int(np.argmin(masked_hits))
    if masked_hits[bank] != NOSEQ:
        return bank, True
    masked_heads = np.where(ready, head_seq, NOSEQ)
    bank = int(np.argmin(masked_heads))
    if masked_heads[bank] != NOSEQ:
        return bank, False
    return -1, False


def conflict_update_mask(
    bank_live: np.ndarray,
    issued: np.ndarray,
    conflict: np.ndarray,
    open_row: np.ndarray,
    hit_seq: np.ndarray,
) -> np.ndarray:
    """Banks whose conflict bit should newly be set.

    Matches ``FRFCFS._update_conflict_bits``: the bank has pending work,
    has issued since the last mode switch, is not already marked, has an
    open row, and no queued request targets that open row (``hit_seq``
    is the NOSEQ sentinel exactly when no queued request hits the open
    row).
    """
    return (bank_live > 0) & issued & ~conflict & (open_row >= 0) & (hit_seq == NOSEQ)


def all_pending_stalled(bank_live: np.ndarray, conflict: np.ndarray) -> bool:
    """True when every bank with pending work has its conflict bit set.

    Matches ``FRFCFS._all_pending_banks_stalled``: vacuously False when
    no bank has work.
    """
    work = bank_live > 0
    if not work.any():
        return False
    return not (work & ~conflict).any()


def warp_ready_batch(
    done: np.ndarray,
    pending: np.ndarray,
    compute_until: np.ndarray,
    cycle: int,
) -> np.ndarray:
    """Warps whose due event resolves straight to "issuable".

    A popped due warp is immediately issuable when it is not done, still
    has pending requests from its current phase, and its compute window
    has elapsed.  Warps outside this mask need the scalar path (phase
    advance, reply blocking, program exhaustion).
    """
    return (~done) & (pending > 0) & (compute_until <= cycle)
