#!/usr/bin/env python3
"""Visualize MEM/PIM mode phases over time (Figure 9's dynamics, live).

Runs one competitive pair under three contrasting policies and renders an
ASCII strip of channel 0's servicing mode (``M`` = MEM, ``P`` = PIM,
``|`` = draining for a switch).  FCFS ping-pongs at request granularity,
FR-RR-FCFS rotates at row-conflict granularity, and F3FS batches each
mode under its CAPs — the exact switching-frequency story of Figure 10a,
visible at a glance.

Run:  python examples/mode_timeline.py
"""

from repro import GPUSystem, PolicySpec, SystemConfig
from repro.workloads import get_gpu_kernel, get_pim_kernel

POLICIES = [
    PolicySpec("FCFS"),
    PolicySpec("FR-RR-FCFS"),
    PolicySpec("F3FS", mem_cap=256, pim_cap=256),
]


def main():
    config = SystemConfig.scaled().with_vc2
    print("channel 0 servicing mode over time (M=MEM, P=PIM, |=switch drain)\n")
    for policy in POLICIES:
        system = GPUSystem(config, policy, scale=0.15)
        timeline = system.attach_timeline(interval=20)
        system.add_kernel(get_gpu_kernel("G19"), num_sms=8, loop=True)
        system.add_kernel(get_pim_kernel("P1"), num_sms=2, loop=True)
        result = system.run()
        share = timeline.mode_share()
        print(f"{policy.name:12s} {timeline.render_strip(channel=0, width=64)}")
        print(
            f"{'':12s} switches={result.mode_switches:5d}  "
            f"mem={share['mem']:.0%} pim={share['pim']:.0%} "
            f"switching={share['switching']:.0%}\n"
        )


if __name__ == "__main__":
    main()
