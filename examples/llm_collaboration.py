#!/usr/bin/env python3
"""Collaborative LLM scenario: QKV generation + multi-head attention
(mini Figure 11).

Overlaps the GPT-3-like QKV GEMMs (GPU SMs) with MHA GEMV/softmax (PIM),
comparing every scheduling policy against sequential execution and the
perfect-overlap Ideal.  F3FS uses the paper's per-VC CAP settings
(MEM/PIM = 256/128 under VC1, 64/64 under VC2).

Run:  python examples/llm_collaboration.py
"""

from repro.core.policies import PAPER_POLICY_ORDER
from repro.experiments import ExperimentScale, Runner, collaborative_policy, format_table


def main():
    runner = Runner(ExperimentScale(workload_scale=0.15))
    rows = []
    ideal = {}
    for num_vcs in (1, 2):
        for name in PAPER_POLICY_ORDER:
            outcome = runner.collaborative(collaborative_policy(name, num_vcs), num_vcs=num_vcs)
            ideal[num_vcs] = outcome.ideal_speedup
            rows.append(
                {
                    "config": f"VC{num_vcs}",
                    "policy": name,
                    "speedup": outcome.speedup,
                    "vs_ideal": outcome.speedup / outcome.ideal_speedup,
                }
            )
    print("GPT-3-like layer: QKV (GPU) overlapped with MHA (PIM)\n")
    print(format_table(rows, ["config", "policy", "speedup", "vs_ideal"]))
    for num_vcs, value in ideal.items():
        print(f"Ideal (perfect overlap) VC{num_vcs}: {value:.3f}")


if __name__ == "__main__":
    main()
