#!/usr/bin/env python3
"""Interconnect congestion study: VC1 head-of-line blocking vs VC2
(mini Figures 6/7).

Runs a memory-intensive GPU kernel against a PIM flood under each
scheduling policy, measuring the GPU kernel's MEM request arrival rate at
the memory controller — first with the shared-queue VC1 interconnect,
then with separate MEM/PIM virtual channels (VC2).  The paper's Section V
result: VC2 restores most of the lost arrival rate, with MEM-First
gaining the most.

Run:  python examples/interconnect_congestion.py
"""

from repro.core.policies import PAPER_POLICY_ORDER
from repro.experiments import ExperimentScale, Runner, competitive_policy, format_table

GPU_KERNEL = "G15"  # nn: the most DRAM-intensive Rodinia kernel
PIM_KERNEL = "P1"


def main():
    scale = ExperimentScale(workload_scale=0.15)
    runner = Runner(scale)

    rows = []
    for name in PAPER_POLICY_ORDER:
        spec = competitive_policy(name)
        row = {"policy": name}
        for num_vcs in (1, 2):
            alone = runner.gpu_standalone(GPU_KERNEL, sms=scale.gpu_sms_corun, num_vcs=num_vcs)
            base_rate = alone.kernels[0].mc_arrival_rate(alone.cycles)
            outcome = runner.competitive(GPU_KERNEL, PIM_KERNEL, spec, num_vcs=num_vcs)
            row[f"vc{num_vcs}_norm_rate"] = outcome.mem_arrival_rate / base_rate
        row["improvement"] = (
            row["vc2_norm_rate"] / row["vc1_norm_rate"] if row["vc1_norm_rate"] else float("inf")
        )
        rows.append(row)

    print(f"MEM arrival rate at the MC, normalized to standalone "
          f"({GPU_KERNEL} vs {PIM_KERNEL}; higher is better)\n")
    print(format_table(rows, ["policy", "vc1_norm_rate", "vc2_norm_rate", "improvement"]))
    best = max(rows, key=lambda r: r["improvement"])
    print(f"\nbiggest VC2 gain: {best['policy']} ({best['improvement']:.2f}x) — "
          f"the paper sees MEM-First gain the most")


if __name__ == "__main__":
    main()
