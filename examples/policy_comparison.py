#!/usr/bin/env python3
"""Compare all nine scheduling policies on one GPU/PIM pair (mini Figure 8).

For each policy and each interconnect configuration (VC1 = shared queues,
VC2 = separate MEM/PIM virtual channels), runs pathfinder (G17) against
STREAM-Copy (P2) and prints speedups, Fairness Index, System Throughput,
and switch statistics.

Run:  python examples/policy_comparison.py
"""

from repro.core.policies import PAPER_POLICY_ORDER
from repro.experiments import ExperimentScale, Runner, competitive_policy, format_table

GPU_KERNEL = "G17"
PIM_KERNEL = "P2"


def main():
    runner = Runner(ExperimentScale(workload_scale=0.15))
    rows = []
    for num_vcs in (1, 2):
        for name in PAPER_POLICY_ORDER:
            outcome = runner.competitive(
                GPU_KERNEL, PIM_KERNEL, competitive_policy(name), num_vcs=num_vcs
            )
            rows.append(
                {
                    "config": f"VC{num_vcs}",
                    "policy": name,
                    "gpu_speedup": outcome.gpu_speedup,
                    "pim_speedup": outcome.pim_speedup,
                    "fairness": outcome.fairness,
                    "throughput": outcome.throughput,
                    "switches": outcome.mode_switches,
                }
            )
    print(f"{GPU_KERNEL} vs {PIM_KERNEL}, competitive co-execution\n")
    print(
        format_table(
            rows,
            ["config", "policy", "gpu_speedup", "pim_speedup", "fairness", "throughput", "switches"],
        )
    )
    best = max((r for r in rows if r["config"] == "VC2"), key=lambda r: r["fairness"])
    print(f"\nfairest policy under VC2: {best['policy']} (FI={best['fairness']:.3f})")


if __name__ == "__main__":
    main()
