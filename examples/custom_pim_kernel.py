#!/usr/bin/env python3
"""Write your own PIM kernel with the imperative program builder.

The :class:`repro.pim.PIMProgram` API is the programming layer a PIM
library would ship: declare operand vectors, chain SIMD operations, and
``build()`` compiles to a block-structured kernel (Figure 3) that runs on
the simulated PIM-enabled memory — with real data when the system is
functional.

The kernel below computes a fused multiply-add with squaring,
``out[i] = x[i]^2 + y[i]``, on every bank of every channel in lock-step,
then verifies the results against numpy.

Run:  python examples/custom_pim_kernel.py
"""

import numpy as np

from repro import GPUSystem, PolicySpec, SystemConfig
from repro.gpu.kernel import LaunchContext
from repro.pim.program import PIMProgram

ELEMENTS = 32


def build_kernel():
    program = PIMProgram("x-squared-plus-y")
    x = program.vector("x")
    y = program.vector("y")
    out = program.vector("out")
    register = program.load(x)  # RF <- x[i]
    register = program.mul(register, x)  # RF <- RF * x[i]
    register = program.add(register, y)  # RF <- RF + y[i]
    program.store(register, out)  # out[i] <- RF
    return program.build(elements=ELEMENTS)


def main():
    config = SystemConfig.scaled(num_channels=4, num_sms=4)
    spec = build_kernel()
    system = GPUSystem(config, PolicySpec("F3FS"), functional=True)
    ctx = LaunchContext(
        mapper=config.mapper,
        num_channels=config.num_channels,
        banks_per_channel=config.banks_per_channel,
        num_sms=1,
        warps_per_sm=config.warps_per_sm,
        rng=np.random.default_rng(0),
    )

    rng = np.random.default_rng(7)
    inputs = {}
    for channel in range(config.num_channels):
        for bank in range(config.banks_per_channel):
            for element in range(ELEMENTS):
                x_val = float(rng.integers(1, 10))
                y_val = float(rng.integers(1, 10))
                row, col = spec.vector_location(ctx, spec.vectors["x"], element)
                system.store.write(channel, bank, row, col, x_val)
                row, col = spec.vector_location(ctx, spec.vectors["y"], element)
                system.store.write(channel, bank, row, col, y_val)
                inputs[(channel, bank, element)] = (x_val, y_val)

    system.add_kernel(spec, num_sms=1)
    result = system.run()
    kernel = result.kernels[0]
    print(f"{spec.name}: {kernel.requests_injected} PIM requests in "
          f"{result.cycles} cycles (RBHR {kernel.row_buffer_hit_rate:.3f})")

    errors = 0
    for (channel, bank, element), (x_val, y_val) in inputs.items():
        row, col = spec.vector_location(ctx, spec.vectors["out"], element)
        got = system.store.read(channel, bank, row, col)
        if got != x_val * x_val + y_val:
            errors += 1
    total = len(inputs)
    print(f"verification: {total - errors}/{total} results correct")
    if errors:
        raise SystemExit("FAILED")
    print("OK: custom in-memory kernel computes x^2 + y everywhere")


if __name__ == "__main__":
    main()
