#!/usr/bin/env python3
"""Quickstart: co-execute a GPU kernel and a PIM kernel under F3FS.

Builds a scaled PIM-enabled GPU system (8 channels, 10 SMs), runs the
Rodinia 'gaussian' kernel on 8 SMs concurrently with the STREAM-Add PIM
kernel on 2 SMs, and reports the paper's headline metrics: per-kernel
speedups, Fairness Index, System Throughput, and mode-switch counts.

Run:  python examples/quickstart.py
"""

from repro import GPUSystem, PolicySpec, SystemConfig, fairness_index, system_throughput
from repro.workloads import get_gpu_kernel, get_pim_kernel

GPU_KERNEL = "G6"  # gaussian
PIM_KERNEL = "P1"  # STREAM Add
SCALE = 0.25  # shrink workload sizes for a quick demo


def run_standalone(config, spec, num_sms):
    system = GPUSystem(config, PolicySpec("FR-FCFS"), scale=SCALE)
    system.add_kernel(spec, num_sms=num_sms)
    result = system.run()
    return result.kernels[0].first_duration


def main():
    config = SystemConfig.scaled().with_vc2  # the paper's proposed interconnect

    gpu_spec = get_gpu_kernel(GPU_KERNEL)
    pim_spec = get_pim_kernel(PIM_KERNEL)

    print(f"GPU kernel: {gpu_spec.name} ({GPU_KERNEL}), PIM kernel: {pim_spec.name} ({PIM_KERNEL})")
    gpu_alone = run_standalone(config, gpu_spec, num_sms=10)
    pim_alone = run_standalone(config, pim_spec, num_sms=2)
    print(f"standalone: GPU {gpu_alone} cycles (10 SMs), PIM {pim_alone} cycles (2 SMs)")

    # Competitive co-execution under F3FS with symmetric CAPs (Section VII).
    system = GPUSystem(config, PolicySpec("F3FS", mem_cap=256, pim_cap=256), scale=SCALE)
    system.add_kernel(gpu_spec, num_sms=8, loop=True)
    system.add_kernel(pim_spec, num_sms=2, loop=True)
    result = system.run()

    gpu_time = result.kernels[0].first_duration
    pim_time = result.kernels[1].first_duration
    gpu_speedup = gpu_alone / gpu_time
    pim_speedup = pim_alone / pim_time
    print(f"\nco-execution under F3FS (VC2):")
    print(f"  GPU: {gpu_time} cycles  -> speedup {gpu_speedup:.3f}")
    print(f"  PIM: {pim_time} cycles  -> speedup {pim_speedup:.3f}")
    print(f"  Fairness Index:    {fairness_index(gpu_speedup, pim_speedup):.3f}")
    print(f"  System Throughput: {system_throughput((gpu_speedup, pim_speedup)):.3f}")
    print(f"  mode switches: {result.mode_switches}, "
          f"MEM drain latency/switch: {result.mem_drain_latency_per_switch:.1f} cycles")


if __name__ == "__main__":
    main()
