#!/usr/bin/env python3
"""Energy study: why compute-in-memory saves energy (and when it doesn't).

Runs the same STREAM-Add computation two ways — as a PIM kernel (the
in-memory version) and as an equivalent host-side load/add/store kernel —
and breaks down where the energy goes (see repro.dram.power for the
model).  The PIM version pays DRAM-core column energy on every bank but
never moves data over the I/O pins, the interconnect, or into caches;
the host version pays for all of that movement.

Run:  python examples/energy_breakdown.py
"""

from repro import GPUSystem, PolicySpec, SystemConfig
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel

ELEMENTS = 512


def run_pim(config):
    system = GPUSystem(config, PolicySpec("FR-FCFS"))
    system.add_kernel(
        PIMStreamKernel(name="add-pim", elements_per_warp=ELEMENTS), num_sms=1
    )
    result = system.run()
    words = ELEMENTS * config.banks_per_channel * config.num_channels
    return system, result, words


def run_host(config):
    system = GPUSystem(config, PolicySpec("FR-FCFS"))
    # 2 loads + 1 store per element, streaming with no reuse.
    system.add_kernel(
        GPUKernelProfile(
            name="add-host",
            accesses_per_warp=3 * ELEMENTS,
            compute_per_phase=1,
            accesses_per_phase=8,
            row_locality=0.95,
            l2_reuse=0.0,
            store_fraction=0.34,
        ),
        num_sms=4,
    )
    result = system.run()
    words = 3 * ELEMENTS * 4 * config.warps_per_sm  # accesses x SMs x warps
    return system, result, words


def report(label, system, result, words):
    energy = system.energy_report()
    print(f"{label}: {result.cycles} cycles, {words} words touched")
    for component, value in energy.as_dict().items():
        print(f"  {component:10s} {value:12.1f} nJ")
    print(f"  -> dynamic energy per word: {energy.dynamic / words * 1000:.1f} pJ\n")
    return energy.dynamic / words


def main():
    config = SystemConfig.scaled(num_channels=4, num_sms=4)
    pim_cost = report("PIM STREAM-Add ", *run_pim(config))
    host_cost = report("host STREAM-Add", *run_host(config))
    print(f"in-memory execution uses {host_cost / pim_cost:.1f}x less dynamic "
          f"energy per word (no I/O, no interconnect traversal)")


if __name__ == "__main__":
    main()
