#!/usr/bin/env python3
"""Process priorities via asymmetric F3FS CAPs (the paper's future work).

Section VII notes that F3FS's asymmetric CAPs "can also be configured by
system software to enforce process priorities in competitive scenarios.
We leave an exploration of the latter to future work."  This example is
that exploration: for one competitive pair, it sweeps the MEM:PIM CAP
ratio and shows how system software can dial service between the GPU
process and the PIM process — from PIM-priority through fair to
GPU-priority — without changing the hardware.

Run:  python examples/process_priorities.py
"""

from repro.core.policies import PolicySpec
from repro.experiments import ExperimentScale, Runner, format_table

GPU_KERNEL = "G19"
PIM_KERNEL = "P1"

#: (label, MEM CAP, PIM CAP) — the knob system software would program.
#: The magnitudes are small enough to bind on the scaled system (a CAP
#: only matters while the other mode's queue stays occupied).
PRIORITY_LEVELS = [
    ("PIM priority 4:1", 8, 32),
    ("PIM priority 2:1", 16, 32),
    ("fair (symmetric)", 32, 32),
    ("GPU priority 2:1", 32, 16),
    ("GPU priority 4:1", 32, 8),
]


def main():
    runner = Runner(ExperimentScale(workload_scale=0.15))
    rows = []
    for label, mem_cap, pim_cap in PRIORITY_LEVELS:
        spec = PolicySpec("F3FS", mem_cap=mem_cap, pim_cap=pim_cap)
        outcome = runner.competitive(GPU_KERNEL, PIM_KERNEL, spec, num_vcs=2)
        rows.append(
            {
                "priority": label,
                "mem_cap": mem_cap,
                "pim_cap": pim_cap,
                "gpu_speedup": outcome.gpu_speedup,
                "pim_speedup": outcome.pim_speedup,
                "fairness": outcome.fairness,
                "throughput": outcome.throughput,
            }
        )
    print(f"{GPU_KERNEL} vs {PIM_KERNEL} under F3FS with software-set CAPs (VC2)\n")
    print(
        format_table(
            rows,
            ["priority", "mem_cap", "pim_cap", "gpu_speedup", "pim_speedup", "fairness", "throughput"],
        )
    )
    gpu_trend = [row["gpu_speedup"] for row in rows]
    print(
        "\nGPU speedup rises monotonically with its priority: "
        + (" -> ".join(f"{v:.2f}" for v in gpu_trend))
    )


if __name__ == "__main__":
    main()
