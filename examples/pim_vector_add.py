#!/usr/bin/env python3
"""Functional PIM programming: the paper's Figure 3 vector-add kernel.

Demonstrates the fine-grained PIM offloading model end to end *with real
data*: vectors a and b are written into the simulated DRAM, a
block-structured PIM kernel (LOAD a / ADD b / STORE c per register-file
group) streams through the memory system — SM, interconnect, memory
controller mode switching, lock-step all-bank execution — and the result
vector c is read back and checked against numpy.

Run:  python examples/pim_vector_add.py
"""

import numpy as np

from repro import GPUSystem, PolicySpec, SystemConfig
from repro.gpu.kernel import LaunchContext
from repro.pim.isa import PIMOpKind
from repro.workloads.synthetic import PIMStreamKernel

ELEMENTS_PER_WARP = 64  # elements processed per channel


def main():
    config = SystemConfig.scaled(num_channels=4, num_sms=4)
    system = GPUSystem(config, PolicySpec("FCFS"), functional=True)

    # Figure 3 kernel: LOAD a / ADD b / STORE c in RF-sized blocks.  The
    # default layout packs the three operands into disjoint column ranges
    # of each row (the high-locality layout real PIM kernels use).
    kernel = PIMStreamKernel(
        name="vector-add",
        ops=((PIMOpKind.LOAD, 0), (PIMOpKind.ADD, 1), (PIMOpKind.STORE, 2)),
        elements_per_warp=ELEMENTS_PER_WARP,
    )
    layout_ctx = LaunchContext(
        mapper=config.mapper,
        num_channels=config.num_channels,
        banks_per_channel=config.banks_per_channel,
        num_sms=1,
        warps_per_sm=config.warps_per_sm,
        rng=np.random.default_rng(0),
    )

    # Host side: initialize a and b across every channel and bank.
    rng = np.random.default_rng(42)
    expected = {}
    for channel in range(config.num_channels):
        for bank in range(config.banks_per_channel):
            for element in range(ELEMENTS_PER_WARP):
                row_a, col_a = kernel.operand_location(layout_ctx, 0, element)
                row_b, col_b = kernel.operand_location(layout_ctx, 1, element)
                row_c, col_c = kernel.operand_location(layout_ctx, 2, element)
                a = float(rng.integers(1, 100))
                b = float(rng.integers(1, 100))
                system.store.write(channel, bank, row_a, col_a, a)
                system.store.write(channel, bank, row_b, col_b, b)
                expected[(channel, bank, row_c, col_c)] = a + b

    system.add_kernel(kernel, num_sms=1)  # 1 SM x 4 warps -> 4 channels
    result = system.run()

    kernel_result = result.kernels[0]
    print(f"PIM vector add: {kernel_result.requests_injected} PIM requests, "
          f"{result.cycles} cycles")
    print(f"PIM row-buffer hit rate: {kernel_result.row_buffer_hit_rate:.3f} "
          f"(block structure keeps ops in-row)")

    mismatches = 0
    for (channel, bank, row, column), value in expected.items():
        got = system.store.read(channel, bank, row, column)
        if got != value:
            mismatches += 1
    total = len(expected)
    print(f"verification: {total - mismatches}/{total} sums correct")
    if mismatches:
        raise SystemExit("FAILED: PIM computation produced wrong results")
    print("OK: in-memory computation matches the host-side reference")


if __name__ == "__main__":
    main()
