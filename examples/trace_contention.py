#!/usr/bin/env python3
"""Tail-latency cost of PIM co-run contention (Figure 5's story, per hop).

Runs the same memory-intensive GPU kernel co-resident with a PIM stream
under FR-FCFS (mode ping-pong) and F3FS (capped batching), with request
telemetry enabled, and prints the per-hop MEM latency breakdown each
policy produces.  The interesting column is the tail: under FR-FCFS the
``mc_blocked`` hop — cycles a MEM request sat behind the *other* mode —
dominates p99, while F3FS bounds it with its per-mode CAPs.

Run:  python examples/trace_contention.py
"""

from repro import GPUSystem, PolicySpec, SystemConfig
from repro.experiments import latency_breakdown_rows
from repro.workloads import get_gpu_kernel, get_pim_kernel

POLICIES = [
    PolicySpec("FR-FCFS"),
    PolicySpec("F3FS", mem_cap=128, pim_cap=32),
]

MAX_CYCLES = 120_000


def run(policy: PolicySpec):
    config = SystemConfig.scaled(num_channels=4, num_sms=6).with_vc2
    system = GPUSystem(config, policy, seed=1, scale=0.1)
    system.enable_telemetry(timeline_interval=100)
    system.add_kernel(get_gpu_kernel("G17"), num_sms=4, loop=True)
    system.add_kernel(get_pim_kernel("P1"), num_sms=2, loop=True)
    result = system.run(max_cycles=MAX_CYCLES, until_all_complete_once=False)
    return result


def main():
    tails = {}
    for policy in POLICIES:
        result = run(policy)
        rows = [
            r for r in latency_breakdown_rows(result.telemetry) if r["mode"] == "mem"
        ]
        by_stage = {r["stage"]: r for r in rows}
        tails[policy.label()] = by_stage["total"]["p99"]
        print(f"\n{policy.label()}  (MEM requests, {result.cycles} cycles)")
        print(f"  {'stage':12s} {'count':>8s} {'mean':>9s} {'p50':>8s} {'p95':>9s} {'p99':>9s}")
        for row in rows:
            print(
                f"  {row['stage']:12s} {row['count']:8d} {row['mean']:9.1f} "
                f"{row['p50']:8.1f} {row['p95']:9.1f} {row['p99']:9.1f}"
            )
        blocked = by_stage["mc_blocked"]
        total = by_stage["total"]
        print(
            f"  -> mode arbitration (mc_blocked) is {blocked['mean'] / total['mean']:.0%} "
            f"of mean MEM latency"
        )

    frfcfs, f3fs = (tails[p.label()] for p in POLICIES)
    print(f"\np99 MEM latency: FR-FCFS {frfcfs:.0f} vs F3FS {f3fs:.0f} cycles")
    if f3fs < frfcfs:
        print("OK: F3FS bounds the MEM tail that FR-FCFS exposes under PIM co-run")
    else:
        print("note: F3FS tail not lower at this scale; rerun with a larger workload")


if __name__ == "__main__":
    main()
