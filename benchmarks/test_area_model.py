"""Section VII-A: mode-switch logic area, F3FS vs FR-FCFS.

The paper's Vitis HLS synthesis reports 377 LUTs / 88 FFs for FR-FCFS's
switch logic and 275 LUTs / 143 FFs for F3FS.  The analytical model
reproduces both within a few percent and the qualitative trade-off: F3FS
needs fewer LUTs (no per-bank conflict tracking) but more flip-flops
(bypass counters + CAP registers).
"""

from conftest import write_result

from repro.core.area import (
    PAPER_F3FS,
    PAPER_FRFCFS,
    f3fs_switch_area,
    frfcfs_switch_area,
    relative_error,
)
from repro.experiments import format_table


def test_area_model(benchmark, results_dir):
    def run():
        return frfcfs_switch_area(num_banks=16), f3fs_switch_area()

    frfcfs, f3fs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {"design": "FR-FCFS (model)", "luts": frfcfs.luts, "ffs": frfcfs.flip_flops},
        {"design": "FR-FCFS (paper)", "luts": PAPER_FRFCFS.luts, "ffs": PAPER_FRFCFS.flip_flops},
        {"design": "F3FS (model)", "luts": f3fs.luts, "ffs": f3fs.flip_flops},
        {"design": "F3FS (paper)", "luts": PAPER_F3FS.luts, "ffs": PAPER_F3FS.flip_flops},
    ]
    write_result(results_dir, "area_model", format_table(rows, ["design", "luts", "ffs"]))

    # Quantitative calibration within 5% of the paper's synthesis.
    assert relative_error(frfcfs, PAPER_FRFCFS) < 0.05
    assert relative_error(f3fs, PAPER_F3FS) < 0.05
    # Qualitative trade-off: fewer LUTs, more FFs for F3FS.
    assert f3fs.luts < frfcfs.luts
    assert f3fs.flip_flops > frfcfs.flip_flops
    # The model extrapolates: more banks make FR-FCFS strictly bigger.
    assert frfcfs_switch_area(num_banks=32).luts > frfcfs.luts
