"""Figure 5: slowdown of the Rodinia suite under different co-runners.

The suite runs on the co-run SM allocation while one of four
memory-intensive GPU kernels or the STREAM-Add PIM kernel occupies the
small allocation.  Paper shape: the PIM co-runner degrades the suite far
more than any GPU co-runner (60% vs a worst case of 30%), and most of the
GPU-co-runner loss is explained by the reduced SM count alone.
"""

from conftest import FULL, GPU_SUBSET, write_result

from repro.experiments import fig5_corun_slowdown, format_table
from repro.metrics import arithmetic_mean

GPU_CORUNNERS = ("G4", "G6", "G15", "G17") if FULL else ("G6", "G15")


def test_fig05_corun_slowdown(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig5_corun_slowdown(
            runner, suite=GPU_SUBSET, gpu_corunners=GPU_CORUNNERS, pim_corunner="P1"
        ),
        rounds=1,
        iterations=1,
    )

    rows = [{"corunner": k, "avg_speedup": v} for k, v in data.items()]
    write_result(results_dir, "fig05_corun_slowdown", format_table(rows, ["corunner", "avg_speedup"]))

    # The PIM co-runner hurts far more than any GPU co-runner.
    gpu_interference = [data[g] for g in GPU_CORUNNERS]
    assert data["P1"] < min(gpu_interference)
    # Reduced SM count alone ("none") costs less than actual contention.
    assert data["none"] >= max(gpu_interference) * 0.95
    benchmark.extra_info["pim_corun_speedup"] = data["P1"]
    benchmark.extra_info["worst_gpu_corun_speedup"] = min(gpu_interference)
