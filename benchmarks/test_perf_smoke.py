"""Engine throughput smoke test (writes ``BENCH_engine.json``).

Not a paper figure: this benchmarks the *simulator*, not the simulated
machine.  It times the reference scenarios from :mod:`repro.perf.bench`
— a fixed-window co-run with a quiescent tail (fast-forward territory)
and two fully saturated co-runs (the active-set busy path, and the
scheduler-bound ``saturated_corun`` regime targeted by the per-bank
index) — and records simulated cycles per wall-clock second plus the
per-stage breakdown into ``benchmarks/results/BENCH_engine.json``.

The companion correctness guarantee (fast and naive runs bit-identical)
lives in ``tests/test_fast_forward.py``; here we only assert the engine
actually fast-forwards and that the numbers are sane.
"""

import json

from repro.perf import run_engine_bench


def test_engine_throughput(benchmark, results_dir):
    payload = benchmark.pedantic(
        lambda: run_engine_bench(compare_naive=True, compare_soa=True),
        rounds=1,
        iterations=1,
    )
    (results_dir / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    scenarios = payload["scenarios"]
    horizon = scenarios["corun_horizon"]
    saturated = scenarios["corun_saturated"]
    scheduler_bound = scenarios["saturated_corun"]

    # Both engines simulated the same number of cycles (the bench itself
    # asserts this; re-check the recorded payload).
    assert horizon["fast"]["cycles"] == horizon["naive"]["cycles"]

    # The fixed-window co-run has a long quiescent tail: most of the
    # window must be jumped, not stepped.  steps_executed/cycles_skipped
    # are engine bookkeeping, reported per backend under engine_meta
    # (the backends legitimately disagree on them).
    meta = horizon["engine_meta"]["object"]
    assert meta["cycles_skipped"] > horizon["fast"]["cycles"] // 2
    assert set(horizon["engine_meta"]) == {"object", "soa"}

    # The saturated co-runs never quiesce for long — (almost) nothing to
    # skip.  saturated_corun re-launches both kernels, so a handful of
    # single-cycle jumps can occur around launch boundaries.
    assert saturated["engine_meta"]["object"]["cycles_skipped"] == 0
    assert scheduler_bound["engine_meta"]["object"]["cycles_skipped"] < 100

    # Per-stage breakdown covers the whole pipeline.
    assert set(saturated["stages"]) == {
        "completions",
        "replies",
        "controllers",
        "mc_ingress",
        "l2",
        "writebacks",
        "crossbar",
        "sms",
        "kernel_completion",
    }

    # The SoA engine simulated the same cycles and recorded its speedup
    # (the baseline ``check_perf_regression --check soa`` guards).
    for name, entry in scenarios.items():
        assert entry["soa"]["cycles"] == entry["fast"]["cycles"], name
        assert "speedup_vs_object" in entry["soa"], name
    # The scheduler-bound scenario is the one the SoA core targets: it
    # must actually be faster than the object engine, not just equal.
    assert scheduler_bound["soa"]["speedup_vs_object"] > 1.0

    # Throughput sanity: both scenarios should simulate at least a few
    # thousand cycles per second on any host this runs on.
    for name, entry in scenarios.items():
        assert entry["fast"]["cycles_per_sec"] > 1_000, name
