"""Sensitivity studies the paper reports in prose.

* Section VI-A: BLISS "performs best with a lower threshold, indicating
  its tendency to converge toward FR-FCFS" — we sweep the blacklist
  threshold and check the trend.
* Section VI-A: the FR-FCFS CAP was "set empirically to 32" — we sweep
  the CAP and check the fairness/throughput trade-off it controls.
* Section VII-B: the F3FS CAPs come from a sensitivity study —
  "throughput favors high CAPs while fairness favors lower ones".
"""

from conftest import write_result

from repro.experiments import format_table
from repro.experiments.sweep import sweep_f3fs_caps, sweep_policy_parameter

GPU_SUBSET = ["G17", "G19"]
PIM_SUBSET = ["P1", "P2"]


def test_frfcfs_cap_sweep(runner, benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: sweep_policy_parameter(
            runner, "FR-FCFS-Cap", "cap", [4, 32, 256], GPU_SUBSET, PIM_SUBSET, num_vcs=2
        ),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "sweep_frfcfs_cap", format_table(rows, ["value", "fairness", "throughput"]))
    by_cap = {row["value"]: row for row in rows}
    # A very large CAP degenerates toward FR-FCFS: throughput at least as
    # high as the tight-CAP point, which buys fairness instead.
    assert by_cap[256]["throughput"] >= by_cap[4]["throughput"] * 0.95


def test_bliss_threshold_sweep(runner, benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: sweep_policy_parameter(
            runner, "BLISS", "threshold", [2, 4, 16], GPU_SUBSET, PIM_SUBSET, num_vcs=2
        ),
        rounds=1,
        iterations=1,
    )
    write_result(results_dir, "sweep_bliss_threshold", format_table(rows, ["value", "fairness", "throughput"]))
    by_threshold = {row["value"]: row for row in rows}
    # The paper: "BLISS performs best with a lower threshold, indicating
    # its tendency to converge toward FR-FCFS."  A low threshold
    # blacklists everyone (no discrimination -> FR-FCFS-like throughput);
    # a high threshold selectively blacklists only the PIM streak-maker,
    # trading throughput for fairness.
    assert by_threshold[2]["throughput"] >= by_threshold[16]["throughput"]
    assert by_threshold[16]["fairness"] >= by_threshold[2]["fairness"] * 0.9


def test_f3fs_cap_pair_sweep(runner, benchmark, results_dir):
    pairs = [(32, 32), (256, 256), (256, 64)]
    rows = benchmark.pedantic(
        lambda: sweep_f3fs_caps(runner, pairs, GPU_SUBSET, PIM_SUBSET, num_vcs=2),
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir,
        "sweep_f3fs_caps",
        format_table(rows, ["mem_cap", "pim_cap", "fairness", "throughput"]),
    )
    by_pair = {(row["mem_cap"], row["pim_cap"]): row for row in rows}
    # Asymmetric CAPs (favoring MEM) shift service toward the GPU kernel,
    # costing competitive fairness relative to the symmetric setting
    # (Section VII-C ablation).
    assert by_pair[(256, 64)]["fairness"] <= by_pair[(256, 256)]["fairness"] + 0.1
