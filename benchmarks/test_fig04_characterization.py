"""Figure 4: memory access characteristics of GPU vs PIM kernels.

Regenerates the four box-plot panels — interconnect arrival rate, DRAM
(memory-controller) arrival rate, bank-level parallelism, and row-buffer
hit rate — for Rodinia on the full and small SM allocations (GPU-80 /
GPU-8 analogs) and the PIM suite.

Paper shapes checked:
* PIM arrival rate at the MC exceeds GPU-8's (paper: 8.33x) and at least
  matches GPU-80's (paper: 2.07x) — PIM requests are not L2-filtered.
* PIM BLP is pinned at all 16 banks (lock-step execution).
* PIM row-buffer locality is high (block structure).
"""

from conftest import GPU_SUBSET, PIM_SUBSET, write_result

from repro.experiments import fig4_characterization, format_table
from repro.metrics import arithmetic_mean


def test_fig04_characterization(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig4_characterization(runner, GPU_SUBSET, PIM_SUBSET),
        rounds=1,
        iterations=1,
    )

    rows = []
    for group, kernels in data.items():
        for kid, metrics in kernels.items():
            rows.append({"group": group, "kernel": kid, **metrics})
    table = format_table(rows, ["group", "kernel", "noc_rate", "mc_rate", "blp", "rbhr"])
    write_result(results_dir, "fig04_characterization", table)

    def mean(group, metric):
        return arithmetic_mean([m[metric] for m in data[group].values()])

    # PIM floods the MC harder than GPU-8 and is not filtered by the L2.
    assert mean("PIM", "mc_rate") > 2 * mean("GPU-8", "mc_rate")
    assert mean("PIM", "mc_rate") >= 0.8 * mean("GPU-80", "mc_rate")
    # Lock-step PIM occupies every bank.
    for metrics in data["PIM"].values():
        assert metrics["blp"] > 15.9
    # PIM row locality is high thanks to the block structure.
    assert mean("PIM", "rbhr") > 0.8
    assert mean("PIM", "rbhr") > mean("GPU-80", "rbhr")
    # More SMs -> higher interconnect pressure for the same kernel.
    assert mean("GPU-80", "noc_rate") > mean("GPU-8", "noc_rate")

    benchmark.extra_info["pim_vs_gpu8_mc_rate"] = mean("PIM", "mc_rate") / mean("GPU-8", "mc_rate")
    benchmark.extra_info["pim_vs_gpu80_mc_rate"] = mean("PIM", "mc_rate") / mean("GPU-80", "mc_rate")
