"""Shared fixtures for the figure-regeneration benchmarks.

Each ``test_figXX_*.py`` regenerates one table/figure of the paper on a
scaled system (see DESIGN.md section 5) and checks the qualitative shape
the paper reports.  Runs are cached in a session-scoped
:class:`~repro.experiments.Runner`, so figures sharing the competitive
grid (6, 8, 10, 13) do not repeat simulations.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the full 20x9 kernel grid instead of the
  default subsets (hours instead of minutes).
* ``REPRO_BENCH_SCALE``  — workload scale factor (default 0.12).

Result tables are written to ``benchmarks/results/`` for inclusion in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentScale, Runner
from repro.workloads import pim_ids, rodinia_ids

FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))

#: Kernel subsets for the default (quick) benchmark runs.  The GPU picks
#: cover the paper's extremes: G6 low locality / high BLP, G17 high RBHR,
#: G19 L2-filtered traffic; PIM picks cover STREAM (P1/P2) and GEMV (P7).
GPU_SUBSET = rodinia_ids() if FULL else ["G6", "G17", "G19"]
PIM_SUBSET = pim_ids() if FULL else ["P1", "P2", "P7"]
#: Figure 13's GPU kernels (compute-intensive + memory-intensive picks).
FIG13_GPUS = ("G10", "G6", "G11", "G17", "G19") if FULL else ("G10", "G6", "G17")

RESULTS_DIR = Path(__file__).parent / "results"


def experiment_scale(**overrides) -> ExperimentScale:
    defaults = dict(workload_scale=SCALE, starvation_factor=15, seed=1)
    defaults.update(overrides)
    return ExperimentScale(**defaults)


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(experiment_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
