"""Figure 13: behaviour at GPU memory-intensity extremes.

Fairness/throughput for the compute-intensive kernel (G10 huffman) and
memory-intensive kernels, averaged across PIM co-runners — the orthogonal
slice of Figure 8.  Paper shape: with the compute-intensive kernel there
is very little variation across policies and interconnect configurations
(such kernels tolerate memory delays); memory-intensive kernels vary
much more.
"""

from conftest import FIG13_GPUS, PIM_SUBSET, write_result

from repro.experiments import fig13_intensity_extremes, format_table

POLICY_SUBSET = ["FR-FCFS", "FR-RR-FCFS", "G&I", "F3FS"]


def _spread(data, num_vcs, gid, metric):
    values = [data[num_vcs][p][gid][metric] for p in POLICY_SUBSET]
    return max(values) - min(values)


def test_fig13_intensity_extremes(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig13_intensity_extremes(
            runner, gpu_subset=FIG13_GPUS, pim_subset=PIM_SUBSET, policies=POLICY_SUBSET
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for num_vcs, policies in data.items():
        for policy, per_gpu in policies.items():
            for gid, metrics in per_gpu.items():
                rows.append({"config": f"VC{num_vcs}", "policy": policy, "gpu": gid, **metrics})
    write_result(
        results_dir,
        "fig13_intensity_extremes",
        format_table(rows, ["config", "policy", "gpu", "fairness", "throughput"]),
    )

    memory_intensive = [g for g in FIG13_GPUS if g != "G10"]
    for num_vcs in (1, 2):
        # The compute-intensive kernel is insensitive to the policy choice:
        # its fairness spread across policies is smaller than the worst
        # memory-intensive kernel's spread.
        g10_spread = _spread(data, num_vcs, "G10", "fairness")
        worst_mem_spread = max(_spread(data, num_vcs, g, "fairness") for g in memory_intensive)
        assert g10_spread <= worst_mem_spread + 0.05
        # And its throughput stays high under every policy (tolerant of
        # memory delays).
        for policy in POLICY_SUBSET:
            assert data[num_vcs][policy]["G10"]["throughput"] > 1.0

    benchmark.extra_info["g10_fairness_spread_vc2"] = _spread(data, 2, "G10", "fairness")
