#!/usr/bin/env python
"""Paper-scale smoke: a short full-scale window must complete in CI time.

Everything else in the repo runs the laptop-scale ``SystemConfig.scaled()``
configuration (4–8 channels, 8–18 SMs) because contention phenomena are
per-channel and scale-free in the ratios that matter.  This smoke is the
one place the *full* ``SystemConfig.paper()`` machine (Table I: 32
channels x 16 banks, 80 SMs) is built and stepped — it guards the claim
that the engine's per-cycle cost stays proportional to work, not machine
size, and that nothing in the fused SoA pipeline breaks at 8x the SM
count and 4x the channel count of the configs the tests sweep.

The scenario mirrors ``saturated_corun`` (both kernels looping, a
GPU-heavy 8:2 SM split) so every channel sees mixed MEM+PIM traffic.
Run under the SoA backend in CI (``REPRO_ENGINE=soa``); the window is
deliberately short — this is a "does it complete" gate with a loose
wall-clock ceiling, not a benchmark.

Usage::

    REPRO_ENGINE=soa PYTHONPATH=src python benchmarks/paper_scale_smoke.py

Exit status 0 on success, 1 on failure.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.engine_soa import backend_from_env, create_system, resolve_backend
from repro.request import reset_request_ids
from repro.workloads import get_gpu_kernel, get_pim_kernel

#: Window length: long enough to fill the deep paper-scale MEM queues
#: and cross several kernel-launch boundaries, short enough for CI.
DEFAULT_MAX_CYCLES = 5_000

#: Loose wall-clock ceiling (seconds).  The window takes a few seconds
#: on a laptop core; the ceiling only catches pathological blow-ups
#: (an accidental O(machine-size) scan per cycle), not runner noise.
DEFAULT_BUDGET = 600.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES)
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=DEFAULT_BUDGET,
        help="fail if the window takes longer than this",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="engine backend (default: REPRO_ENGINE or object)",
    )
    args = parser.parse_args(argv)
    try:
        backend = (
            resolve_backend(args.backend, source="--backend value")
            if args.backend is not None
            else backend_from_env()
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    reset_request_ids()
    config = SystemConfig.paper()
    gpu_sms = config.num_sms * 8 // 10  # the standard GPU-heavy 8:2 split
    system = create_system(
        config, PolicySpec("FR-FCFS"), backend=backend, seed=1, fast_forward=True
    )
    system.add_kernel(get_gpu_kernel("G17"), num_sms=gpu_sms, loop=True)
    system.add_kernel(get_pim_kernel("P1"), num_sms=config.num_sms - gpu_sms, loop=True)

    start = time.perf_counter()
    result = system.run(max_cycles=args.max_cycles, until_all_complete_once=False)
    wall = time.perf_counter() - start

    ok = True
    if result.cycles != args.max_cycles:
        print(f"FAIL: simulated {result.cycles} cycles, expected {args.max_cycles}")
        ok = False
    issued = sum(c.stats.mem_issued for c in system.controllers)
    pim = sum(c.stats.pim_issued for c in system.controllers)
    if issued == 0 or pim == 0:
        print(f"FAIL: no traffic issued (mem={issued}, pim={pim})")
        ok = False
    if wall > args.budget_seconds:
        print(f"FAIL: {wall:.1f}s exceeds the {args.budget_seconds:.0f}s budget")
        ok = False
    status = "PASS" if ok else "FAIL"
    print(
        f"{status} [paper-scale/{backend}]: {config.num_channels}ch x "
        f"{config.num_sms}SM window of {result.cycles} cycles in {wall:.1f}s "
        f"({result.cycles / wall:,.0f} cyc/s; mem={issued}, pim={pim})"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
