#!/usr/bin/env python
"""Perf-regression guards for the scheduler-bound benchmark scenario.

Both checks run the ``saturated_corun`` scenario (deep MEM queues every
cycle — the workload the indexed per-bank scheduler exists for) against
the committed baseline in ``benchmarks/results/BENCH_engine.json``:

* ``--check scheduler`` (default) fails below ``SCHEDULER_THRESHOLD`` of
  the baseline.  The 30% allowance absorbs CI-runner noise (shared
  machines, frequency scaling, cold first run) while still catching the
  kind of regression that matters: an accidental return to O(queue)
  scans shows up as a 2x+ slowdown, not 30%.
* ``--check telemetry`` holds the telemetry-*disabled* run within
  ``TELEMETRY_THRESHOLD`` (2%) of the baseline, guarding the promise
  that the dormant ``repro.obs`` hooks (``if telemetry is not None``
  along the request path, and the campaign metrics/heartbeat hooks —
  which live in the sweep coordinator, so a bench run never so much as
  constructs a ``StatusPublisher``) cost nothing when off.  The gate
  runs on *both* engine backends: the object run against the ``fast``
  baseline and the SoA run against the ``soa`` baseline, each at 98%.
  Because 2% is inside machine-to-machine noise, this gate compares
  best-of-N against a baseline *regenerated on the same machine* (CI
  reruns the perf smoke benchmark first, which rewrites
  BENCH_engine.json).
* ``--check store`` holds the same run within ``STORE_THRESHOLD`` (2%)
  of the baseline: the result-store integration (``repro.store``) lives
  entirely in the experiment layer (Runner lookups before a system is
  built), so a bench run — which never attaches a store — must not get
  any slower.  A regression here means store code leaked into the cycle
  engine's request path.
* ``--check resilience`` holds the same run within
  ``RESILIENCE_THRESHOLD`` (2%) of the baseline, guarding the dormant
  watchdog hook (``if watchdog is not None`` once per engine step) and
  the fault-injection hooks (a single ``None`` check per cell, outside
  the engine entirely).  A regression here means resilience code leaked
  into the per-cycle path.
* ``--check soa`` runs the same scenario under the struct-of-arrays
  engine backend (``REPRO_ENGINE=soa`` equivalent) and fails below
  ``SOA_THRESHOLD`` (90%) of the recorded SoA baseline
  (``scenarios[...]["soa"]["cycles_per_sec"]`` in BENCH_engine.json,
  written by ``repro bench --compare-soa``).  This is the guard the
  ISSUE's vectorized core ships with: a change that quietly drops a
  fused path back to the object implementation shows up as a 40%+ hit.
* ``--check slots`` is a free (no measurement) structural guard: every
  hot-path record class must be ``__slots__``-only — an instance
  ``__dict__`` sneaking back in (a new attribute added outside
  ``__slots__``, a refactor dropping the declaration) costs ~60 bytes
  and a dict allocation per object on paths that create hundreds of
  thousands of them per run.
* ``--check all`` runs every gate on a single set of measurements.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_regression.py [--check all]

Exit status 0 on pass, 1 on regression (or a missing baseline entry).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.bench import run_engine_bench

SCENARIO = "saturated_corun"
SCHEDULER_THRESHOLD = 0.70  # fail below 70% of the committed baseline
TELEMETRY_THRESHOLD = 0.98  # dormant telemetry hooks must stay within 2%
STORE_THRESHOLD = 0.98  # dormant result-store hooks must stay within 2%
RESILIENCE_THRESHOLD = 0.98  # dormant watchdog/fault hooks must stay within 2%
SOA_THRESHOLD = 0.90  # the SoA engine must stay within 10% of its baseline
BASELINE_PATH = Path(__file__).parent / "results" / "BENCH_engine.json"
REPEATS = 3  # best-of-N: the guard asks "can it still go fast", not "mean"
# The SoA run warms up slowly (first run in a process is ~20% down while
# numpy internals and the optional compiled kernels settle), so its 2%
# telemetry gate needs more attempts to reach the machine's fast band.
SOA_REPEATS = 5


def check_slots() -> bool:
    """Every hot-path record class must be ``__slots__``-only."""
    from repro.cache.l2 import LookupResult
    from repro.engine_soa.handles import RequestArrays
    from repro.engine_soa.ring import HandleRing
    from repro.noc.queues import BoundedQueue
    from repro.request import Request

    ok = True
    for cls in (Request, BoundedQueue, LookupResult, HandleRing, RequestArrays):
        # A class (or any non-object base) without __slots__ carries a
        # '__dict__' descriptor in its class dict.
        has_dict = any(
            "__dict__" in vars(base) for base in cls.__mro__ if base is not object
        )
        print(
            f"{'FAIL' if has_dict else 'PASS'} [slots]: "
            f"{cls.__module__}.{cls.__name__} "
            f"{'has an instance __dict__' if has_dict else 'is __slots__-only'}"
        )
        ok = ok and not has_dict
    return ok


def measure_best(repeats: int = REPEATS, backend: str = "object") -> float:
    best = 0.0
    for _ in range(repeats):
        payload = run_engine_bench(
            scenario_names=[SCENARIO],
            compare_naive=False,
            stage_breakdown=False,
            backend=backend,
        )
        best = max(best, payload["scenarios"][SCENARIO]["fast"]["cycles_per_sec"])
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        choices=["scheduler", "telemetry", "store", "resilience", "soa", "slots", "all"],
        default="scheduler",
        help="which throughput floor(s) to enforce",
    )
    args = parser.parse_args(argv)

    baseline_doc = json.loads(BASELINE_PATH.read_text())
    scenario_doc = baseline_doc["scenarios"].get(SCENARIO, {})

    thresholds = {
        "scheduler": SCHEDULER_THRESHOLD,
        "telemetry": TELEMETRY_THRESHOLD,
        "store": STORE_THRESHOLD,
        "resilience": RESILIENCE_THRESHOLD,
    }
    selected = list(thresholds) if args.check == "all" else [args.check]
    failed = False

    if args.check in ("slots", "all"):
        failed = failed or not check_slots()
        if args.check == "slots":
            return 1 if failed else 0
        selected = [c for c in selected if c != "slots"]

    soa_baseline = scenario_doc.get("soa", {}).get("cycles_per_sec")
    soa_best = None  # measured at most once, shared by the soa/telemetry gates

    def need_soa_baseline(gate: str) -> bool:
        if soa_baseline is not None:
            return False
        print(
            f"FAIL [{gate}]: no '{SCENARIO}' SoA baseline in {BASELINE_PATH} "
            "(regenerate with: repro bench --compare-soa --out "
            f"{BASELINE_PATH})"
        )
        return True

    if "soa" in selected or args.check == "all":
        if need_soa_baseline("soa"):
            return 1
        soa_best = measure_best(repeats=SOA_REPEATS, backend="soa")
        floor = SOA_THRESHOLD * soa_baseline
        ok = soa_best >= floor
        failed = failed or not ok
        print(
            f"{'PASS' if ok else 'FAIL'} [soa]: {SCENARIO} "
            f"best-of-{SOA_REPEATS} {soa_best:.1f} cyc/s vs SoA baseline "
            f"{soa_baseline:.1f} (floor {floor:.1f} = {SOA_THRESHOLD:.0%})"
        )
        selected = [c for c in selected if c != "soa"]
        if not selected:
            return 1 if failed else 0

    if "telemetry" in selected:
        # The dormant-hook promise covers both backends; gate the SoA run
        # too (reusing the soa gate's measurement under --check all).
        if need_soa_baseline("telemetry"):
            failed = True
        else:
            if soa_best is None:
                soa_best = measure_best(repeats=SOA_REPEATS, backend="soa")
            floor = TELEMETRY_THRESHOLD * soa_baseline
            ok = soa_best >= floor
            failed = failed or not ok
            print(
                f"{'PASS' if ok else 'FAIL'} [telemetry/soa]: {SCENARIO} "
                f"best-of-{SOA_REPEATS} {soa_best:.1f} cyc/s vs SoA baseline "
                f"{soa_baseline:.1f} (floor {floor:.1f} = "
                f"{TELEMETRY_THRESHOLD:.0%})"
            )

    try:
        baseline = scenario_doc["fast"]["cycles_per_sec"]
    except KeyError:
        print(f"FAIL: no '{SCENARIO}' baseline in {BASELINE_PATH}")
        return 1

    best = measure_best()
    for check in selected:
        threshold = thresholds[check]
        floor = threshold * baseline
        ok = best >= floor
        failed = failed or not ok
        print(
            f"{'PASS' if ok else 'FAIL'} [{check}]: {SCENARIO} "
            f"best-of-{REPEATS} {best:.1f} cyc/s vs baseline {baseline:.1f} "
            f"(floor {floor:.1f} = {threshold:.0%})"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
