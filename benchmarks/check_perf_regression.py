#!/usr/bin/env python
"""Perf-regression guard for the scheduler-bound benchmark scenario.

Runs the ``saturated_corun`` scenario (deep MEM queues every cycle — the
workload the indexed per-bank scheduler exists for) and fails if its
throughput drops below ``THRESHOLD`` of the committed baseline in
``benchmarks/results/BENCH_engine.json``.  The 30% allowance absorbs
CI-runner noise (shared machines, frequency scaling, cold first run)
while still catching the kind of regression that matters: an accidental
return to O(queue) scans shows up as a 2x+ slowdown, not 30%.

Usage::

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Exit status 0 on pass, 1 on regression (or a missing baseline entry).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.perf.bench import run_engine_bench

SCENARIO = "saturated_corun"
THRESHOLD = 0.70  # fail below 70% of the committed baseline
BASELINE_PATH = Path(__file__).parent / "results" / "BENCH_engine.json"
REPEATS = 3  # best-of-N: the guard asks "can it still go fast", not "mean"


def main() -> int:
    baseline_doc = json.loads(BASELINE_PATH.read_text())
    try:
        baseline = baseline_doc["scenarios"][SCENARIO]["fast"]["cycles_per_sec"]
    except KeyError:
        print(f"FAIL: no '{SCENARIO}' baseline in {BASELINE_PATH}")
        return 1

    best = 0.0
    for _ in range(REPEATS):
        payload = run_engine_bench(
            scenario_names=[SCENARIO], compare_naive=False, stage_breakdown=False
        )
        best = max(best, payload["scenarios"][SCENARIO]["fast"]["cycles_per_sec"])

    floor = THRESHOLD * baseline
    verdict = "PASS" if best >= floor else "FAIL"
    print(
        f"{verdict}: {SCENARIO} best-of-{REPEATS} {best:.1f} cyc/s "
        f"vs baseline {baseline:.1f} (floor {floor:.1f} = {THRESHOLD:.0%})"
    )
    return 0 if best >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
