"""Figure 8: Fairness Index and System Throughput across policies.

Runs the competitive grid for all nine policies under VC1 and VC2 and
averages per PIM kernel.  Paper shapes checked:

* MEM-First / PIM-First produce starvation-level fairness for some
  combinations (FI near 0 is common).
* FR-FCFS favors PIM kernels (MEM speedup is the minority share of ST).
* F3FS matches or beats FR-RR-FCFS fairness under VC2 while improving
  throughput, and switches less than FR-FCFS-Cap (checked in Figure 10).
* VC2 improves fairness for the fairness-oriented policies.
"""

from conftest import GPU_SUBSET, PIM_SUBSET, write_result

from repro.experiments import fig8_fairness_throughput, format_table
from repro.metrics import arithmetic_mean


def _policy_mean(data, num_vcs, policy, metric):
    return arithmetic_mean([v[metric] for v in data[num_vcs][policy].values()])


def test_fig08_fairness_throughput(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig8_fairness_throughput(runner, GPU_SUBSET, PIM_SUBSET),
        rounds=1,
        iterations=1,
    )

    rows = []
    for num_vcs, policies in data.items():
        for policy, per_pim in policies.items():
            for pid, metrics in per_pim.items():
                rows.append({"config": f"VC{num_vcs}", "policy": policy, "pim": pid, **metrics})
    table = format_table(
        rows, ["config", "policy", "pim", "fairness", "throughput", "mem_speedup", "pim_speedup"]
    )
    write_result(results_dir, "fig08_fairness_throughput", table)

    # Static-priority policies starve the deprioritized side.
    assert _policy_mean(data, 1, "PIM-First", "mem_speedup") < 0.15
    assert _policy_mean(data, 1, "PIM-First", "fairness") < 0.25
    # FR-FCFS favors PIM: the MEM share of throughput is the minority.
    frfcfs_mem = _policy_mean(data, 1, "FR-FCFS", "mem_speedup")
    frfcfs_pim = _policy_mean(data, 1, "FR-FCFS", "pim_speedup")
    assert frfcfs_mem < frfcfs_pim
    # F3FS under VC2: fairness at least comparable to FR-RR-FCFS with
    # higher throughput (the paper's key result).
    f3fs_fair = _policy_mean(data, 2, "F3FS", "fairness")
    frrr_fair = _policy_mean(data, 2, "FR-RR-FCFS", "fairness")
    assert f3fs_fair >= 0.9 * frrr_fair
    assert _policy_mean(data, 2, "F3FS", "throughput") > _policy_mean(
        data, 2, "FR-RR-FCFS", "throughput"
    )
    # The separate PIM VC helps F3FS fairness.
    assert _policy_mean(data, 2, "F3FS", "fairness") > _policy_mean(data, 1, "F3FS", "fairness")

    benchmark.extra_info["f3fs_vc2_fairness"] = f3fs_fair
    benchmark.extra_info["frrr_vc2_fairness"] = frrr_fair
