"""Figure 11: collaborative LLM speedup per policy.

QKV generation (GPU) overlapped with multi-head attention (PIM), speedup
measured against sequential execution and compared to the perfect-overlap
Ideal.  Paper shapes checked:

* Under VC1 no policy gets far past 1.0 and G&I is among the best —
  draining PIM clears the interconnect for the longer-running GPU stage.
* Under VC2 FR-FCFS becomes the best baseline (throughput wins once the
  interconnect is de-congested), and F3FS with its collaborative CAPs
  matches the best policies in both configurations.
* F3FS beats FR-RR-FCFS in both configurations (paper: +11.23%/+7.37%).
"""

from conftest import write_result

from repro.experiments import fig11_llm_speedup, format_table


def test_fig11_llm_speedup(runner, benchmark, results_dir):
    data = benchmark.pedantic(lambda: fig11_llm_speedup(runner), rounds=1, iterations=1)

    rows = []
    for num_vcs, policies in data.items():
        for policy, value in policies.items():
            rows.append({"config": f"VC{num_vcs}", "policy": policy, "speedup": value})
    write_result(results_dir, "fig11_llm_speedup", format_table(rows, ["config", "policy", "speedup"]))

    for num_vcs in (1, 2):
        policies = data[num_vcs]
        # F3FS beats FR-RR-FCFS under VC1 and is at worst a whisker behind
        # under VC2 (our FR-RR variant rotates exactly at PIM block
        # boundaries, which is unusually effective in the collaborative
        # scenario — see EXPERIMENTS.md).
        if num_vcs == 1:
            assert policies["F3FS"] > policies["FR-RR-FCFS"]
        else:
            assert policies["F3FS"] >= 0.95 * policies["FR-RR-FCFS"]
        # F3FS is competitive with the best baseline in each configuration.
        best_baseline = max(v for k, v in policies.items() if k not in ("F3FS", "Ideal"))
        assert policies["F3FS"] >= 0.9 * best_baseline
        # Nothing beats the perfect-overlap bound.
        assert all(v <= policies["Ideal"] + 1e-9 for k, v in policies.items() if k != "Ideal")
    # G&I is close to the best policy under VC1 (PIM draining helps there;
    # at our scale VC1 congestion is milder, compressing the spread).
    vc1 = data[1]
    best_vc1 = max(v for k, v in vc1.items() if k != "Ideal")
    assert vc1["G&I"] >= 0.93 * best_vc1
    # FR-FCFS is the best baseline under VC2 (or within a whisker of it).
    vc2 = data[2]
    best_vc2 = max(v for k, v in vc2.items() if k not in ("Ideal",))
    assert vc2["FR-FCFS"] >= 0.95 * best_vc2

    benchmark.extra_info["f3fs_vs_frrr_vc1"] = data[1]["F3FS"] / data[1]["FR-RR-FCFS"]
    benchmark.extra_info["f3fs_vs_frrr_vc2"] = data[2]["F3FS"] / data[2]["FR-RR-FCFS"]
