"""Figure 10: mode-switch counts and per-switch overheads.

(a) number of mode switches, normalized to FCFS (geometric mean);
(b) additional MEM conflicts per MEM->PIM switch;
(c) MEM drain latency per switch.

Paper shapes checked: FCFS/MEM-First/PIM-First switch frequently; F3FS
switches the least (current-mode-first batches each mode); FR-FCFS-Cap
switches more than FR-FCFS (the CAP forces extra switches); drain
latencies are tens of DRAM cycles.
"""

from conftest import GPU_SUBSET, PIM_SUBSET, write_result

from repro.experiments import fig10_switch_overheads, format_table


def test_fig10_switch_overheads(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig10_switch_overheads(runner, GPU_SUBSET, PIM_SUBSET),
        rounds=1,
        iterations=1,
    )

    rows = []
    for num_vcs, policies in data.items():
        for policy, metrics in policies.items():
            rows.append({"config": f"VC{num_vcs}", "policy": policy, **metrics})
    table = format_table(
        rows, ["config", "policy", "switches_vs_fcfs", "conflicts_per_switch", "drain_latency"]
    )
    write_result(results_dir, "fig10_switch_overheads", table)

    for num_vcs in (1, 2):
        policies = data[num_vcs]
        # FCFS is its own baseline.
        assert policies["FCFS"]["switches_vs_fcfs"] == 1.0
        # F3FS switches less than FCFS and less than FR-RR-FCFS.
        assert policies["F3FS"]["switches_vs_fcfs"] < 1.0
        assert (
            policies["F3FS"]["switches_vs_fcfs"]
            < policies["FR-RR-FCFS"]["switches_vs_fcfs"]
        )
        # FR-FCFS-Cap's switch count stays in the same regime as FR-FCFS
        # (the paper sees slightly more switches from the CAP; on our
        # scaled system it lands slightly below — see EXPERIMENTS.md).
        ratio = (
            policies["FR-FCFS-Cap"]["switches_vs_fcfs"]
            / policies["FR-FCFS"]["switches_vs_fcfs"]
        )
        assert 0.5 < ratio < 3.0
        # Drain latencies are in the tens of DRAM cycles.
        for policy, metrics in policies.items():
            assert 0 < metrics["drain_latency"] < 500

    benchmark.extra_info["f3fs_switches_vs_fcfs_vc1"] = data[1]["F3FS"]["switches_vs_fcfs"]
