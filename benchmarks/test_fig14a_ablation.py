"""Figure 14a: ablation of the three F3FS components.

Stages: FR-FCFS-Cap -> CAP on current-mode requests (instead of row hits)
-> + current-mode-first priority -> + asymmetric CAPs.  Run on P2
competitive co-execution (GPU kernels excluding kmeans) and the LLM
collaborative scenario under VC2.

Paper shapes checked: moving the CAP to requests improves fairness;
favoring the current mode improves throughput at similar fairness;
asymmetric CAPs hurt competitive fairness but raise the LLM speedup.
"""

from conftest import GPU_SUBSET, write_result

from repro.experiments import fig14a_ablation, format_table


def test_fig14a_ablation(runner, benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: fig14a_ablation(runner, pim_id="P2", gpu_subset=GPU_SUBSET),
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir,
        "fig14a_ablation",
        format_table(rows, ["label", "fairness", "throughput", "llm_speedup"]),
    )

    by_label = {row["label"]: row for row in rows}
    cap_requests = by_label["+cap on requests"]
    current_first = by_label["+current mode first"]
    asymmetric = by_label["+asymmetric CAPs"]

    # Current-mode-first raises throughput without collapsing fairness.
    assert current_first["throughput"] >= cap_requests["throughput"]
    assert current_first["fairness"] >= 0.8 * cap_requests["fairness"]
    # Asymmetric CAPs trade competitive fairness for LLM speedup.
    assert asymmetric["llm_speedup"] >= current_first["llm_speedup"]
    assert asymmetric["fairness"] <= current_first["fairness"] + 0.05

    benchmark.extra_info["stages"] = {r["label"]: r["throughput"] for r in rows}
