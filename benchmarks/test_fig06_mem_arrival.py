"""Figure 6: MEM request arrival rate at the memory controller.

For every scheduling policy, measures the GPU kernel's MC arrival rate
under PIM co-execution, normalized to its standalone rate — first with
the shared VC1 interconnect, then with separate MEM/PIM virtual channels
(VC2).  Paper shape: every policy degrades badly under VC1 (even FR-FCFS
drops 41% on average); VC2 restores most of the arrival rate, with
MEM-First improving the most (2.87x on average).
"""

from conftest import GPU_SUBSET, PIM_SUBSET, write_result

from repro.core.policies import PAPER_POLICY_ORDER
from repro.experiments import fig6_mem_arrival, format_table
from repro.metrics import arithmetic_mean


def test_fig06_mem_arrival(runner, benchmark, results_dir):
    data = benchmark.pedantic(
        lambda: fig6_mem_arrival(runner, GPU_SUBSET, PIM_SUBSET),
        rounds=1,
        iterations=1,
    )

    rows = []
    means = {}
    for num_vcs, policies in data.items():
        for policy, per_gpu in policies.items():
            mean_rate = arithmetic_mean(list(per_gpu.values()))
            means[(num_vcs, policy)] = mean_rate
            rows.append({"config": f"VC{num_vcs}", "policy": policy, **per_gpu, "mean": mean_rate})
    columns = ["config", "policy", *GPU_SUBSET, "mean"]
    write_result(results_dir, "fig06_mem_arrival", format_table(rows, columns))

    # VC1 degrades MEM arrival for every policy (normalized rate < 1).
    for policy in PAPER_POLICY_ORDER:
        assert means[(1, policy)] < 1.0
    # VC2 improves the MEM arrival rate for the large majority of policies.
    improved = [p for p in PAPER_POLICY_ORDER if means[(2, p)] > means[(1, p)]]
    assert len(improved) >= len(PAPER_POLICY_ORDER) - 2
    # MEM-First sees a large improvement (the paper's 2.87x headline).
    assert means[(2, "MEM-First")] > 1.3 * means[(1, "MEM-First")]
    benchmark.extra_info["mem_first_improvement"] = means[(2, "MEM-First")] / means[(1, "MEM-First")]
