"""Energy study: mode switching wastes row-activation energy.

Not a paper figure, but a direct corollary of Figure 9/10: every
MEM<->PIM switch destroys row locality, and each destroyed row costs an
ACT+PRE when its requests return.  A switch-happy policy (FCFS) should
therefore pay more activation energy per serviced request than F3FS,
whose current-mode-first arbitration preserves locality.
"""

from conftest import experiment_scale, write_result

from repro.core.policies import PolicySpec
from repro.experiments import format_table
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel

POLICIES = [
    PolicySpec("FCFS"),
    PolicySpec("FR-RR-FCFS"),
    PolicySpec("F3FS", mem_cap=256, pim_cap=256),
]


def test_energy_per_policy(benchmark, results_dir):
    scale = experiment_scale()

    def run():
        rows = []
        for policy in POLICIES:
            system = GPUSystem(
                scale.config(2), policy, seed=scale.seed, scale=scale.workload_scale
            )
            system.add_kernel(get_gpu_kernel("G19"), num_sms=scale.gpu_sms_corun, loop=True)
            system.add_kernel(get_pim_kernel("P1"), num_sms=scale.pim_sms, loop=True)
            result = system.run(max_cycles=400_000)
            energy = system.energy_report()
            serviced = sum(
                c.stats.mem_issued + c.stats.pim_issued for c in system.controllers
            )
            rows.append(
                {
                    "policy": policy.name,
                    "switches": result.mode_switches,
                    "activate_nj": energy.activate,
                    "dynamic_nj_per_req": energy.dynamic / serviced,
                    "activate_nj_per_req": energy.activate / serviced,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir,
        "energy_per_policy",
        format_table(
            rows,
            ["policy", "switches", "activate_nj", "dynamic_nj_per_req", "activate_nj_per_req"],
        ),
    )
    by_name = {row["policy"]: row for row in rows}
    # Switch-happy scheduling pays more activation energy per request.
    assert (
        by_name["FCFS"]["activate_nj_per_req"]
        > by_name["F3FS"]["activate_nj_per_req"]
    )
    assert by_name["FCFS"]["switches"] > by_name["F3FS"]["switches"]
