"""Figure 14b: F3FS sensitivity to the interconnect queue size.

Sweeps the NoC queue size from half to double the scaled baseline (the
analog of the paper's 256/512/1024 sweep) under VC2.  Paper shape: F3FS
is largely agnostic to the queue size — neither helped by longer queues
nor hurt by shorter ones.
"""

from conftest import experiment_scale, write_result

from repro.experiments import Runner, fig14b_queue_sensitivity, format_table

QUEUE_SIZES = (32, 64, 128)
GPU_SUBSET = ["G17", "G19"]
PIM_SUBSET = ["P1", "P2"]


def test_fig14b_queue_sensitivity(benchmark, results_dir):
    def runner_factory(queue_size):
        return Runner(experiment_scale(noc_queue_size=queue_size))

    data = benchmark.pedantic(
        lambda: fig14b_queue_sensitivity(
            runner_factory, QUEUE_SIZES, gpu_subset=GPU_SUBSET, pim_subset=PIM_SUBSET
        ),
        rounds=1,
        iterations=1,
    )
    rows = [{"queue_size": size, **metrics} for size, metrics in data.items()]
    write_result(
        results_dir,
        "fig14b_queue_sensitivity",
        format_table(rows, ["queue_size", "fairness", "throughput"]),
    )

    fairness = [metrics["fairness"] for metrics in data.values()]
    throughput = [metrics["throughput"] for metrics in data.values()]
    # Largely insensitive: small absolute spread across a 4x size range.
    assert max(fairness) - min(fairness) < 0.15
    assert (max(throughput) - min(throughput)) / max(throughput) < 0.15
    benchmark.extra_info["fairness_spread"] = max(fairness) - min(fairness)
