"""Extension studies beyond the paper's evaluation.

* **SMS baseline** (related work, Section VIII): the paper argues SMS's
  batch-granularity scheduling is unsuitable because MEM/PIM batches are
  mutually exclusive — every batch boundary is a mode switch.  We compare
  SMS against F3FS on the competitive grid.
* **Dynamic F3FS** (the future work of Section VII): runtime CAP
  adaptation should land near the hand-tuned symmetric F3FS without any
  offline sensitivity study.
* **Refresh** (fidelity extension): enabling tREFI/tRFC refresh perturbs
  results by only a few percent and preserves the policy ordering.
"""

from conftest import experiment_scale, write_result

from repro.core.policies import PolicySpec
from repro.experiments import Runner, competitive_policy, format_table
from repro.metrics import arithmetic_mean

GPU_SUBSET = ["G17", "G19"]
PIM_SUBSET = ["P1", "P2"]


def _grid(runner, spec, num_vcs=2):
    return [
        runner.competitive(gid, pid, spec, num_vcs=num_vcs)
        for gid in GPU_SUBSET
        for pid in PIM_SUBSET
    ]


def test_extension_policies(runner, benchmark, results_dir):
    def run():
        specs = {
            "F3FS": competitive_policy("F3FS"),
            "Dyn-F3FS": PolicySpec("Dyn-F3FS", initial_cap=64),
            "SMS": PolicySpec("SMS", batch_size=32),
        }
        rows = []
        for name, spec in specs.items():
            outcomes = _grid(runner, spec)
            rows.append(
                {
                    "policy": name,
                    "fairness": arithmetic_mean([o.fairness for o in outcomes]),
                    "throughput": arithmetic_mean([o.throughput for o in outcomes]),
                    "switches": arithmetic_mean([o.mode_switches for o in outcomes]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "extensions_policies", format_table(rows, ["policy", "fairness", "throughput", "switches"])
    )
    by_name = {row["policy"]: row for row in rows}
    # SMS pays batch-boundary switches: at least as many switches as F3FS.
    assert by_name["SMS"]["switches"] >= by_name["F3FS"]["switches"]
    # The adaptive variant lands near hand-tuned F3FS on both metrics.
    assert by_name["Dyn-F3FS"]["throughput"] >= 0.85 * by_name["F3FS"]["throughput"]
    assert by_name["Dyn-F3FS"]["fairness"] >= 0.7 * by_name["F3FS"]["fairness"]


def test_mesh_topology(benchmark, results_dir):
    """The VC2 proposal generalizes to a multi-hop mesh interconnect.

    On a mesh, PIM backpressure propagates hop by hop, so head-of-line
    blocking under VC1 is at least as harmful as on the crossbar; the
    separate PIM virtual channel restores the GPU kernel's service.
    """
    from repro.core.policies import PolicySpec
    from repro.sim.system import GPUSystem
    from repro.workloads import get_gpu_kernel, get_pim_kernel

    def run():
        scale = experiment_scale()
        rows = []
        for num_vcs in (1, 2):
            config = scale.config(num_vcs).replace(noc_topology="mesh")
            system = GPUSystem(
                config, PolicySpec("MEM-First"), seed=scale.seed,
                scale=scale.workload_scale,
            )
            gpu = system.add_kernel(
                get_gpu_kernel("G15"), num_sms=scale.gpu_sms_corun, loop=True
            )
            system.add_kernel(get_pim_kernel("P1"), num_sms=scale.pim_sms, loop=True)
            result = system.run(max_cycles=400_000)
            duration = result.kernels[gpu.kernel_id].first_duration or result.cycles
            rows.append(
                {
                    "config": f"VC{num_vcs}",
                    "gpu_first_run": duration,
                    "avg_hops": system.mesh.average_hops(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "extensions_mesh", format_table(rows, ["config", "gpu_first_run", "avg_hops"])
    )
    by_config = {row["config"]: row for row in rows}
    # The separate PIM VC un-blocks the GPU kernel on the mesh too.
    assert by_config["VC2"]["gpu_first_run"] < by_config["VC1"]["gpu_first_run"]
    assert by_config["VC1"]["avg_hops"] >= 1.0


def test_refresh_perturbation(benchmark, results_dir):
    def run():
        spec = competitive_policy("F3FS")
        rows = []
        for refresh in (False, True):
            runner = Runner(experiment_scale(refresh_enabled=refresh))
            outcomes = _grid(runner, spec)
            rows.append(
                {
                    "refresh": "on" if refresh else "off",
                    "fairness": arithmetic_mean([o.fairness for o in outcomes]),
                    "throughput": arithmetic_mean([o.throughput for o in outcomes]),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "extensions_refresh", format_table(rows, ["refresh", "fairness", "throughput"])
    )
    off, on = rows[0], rows[1]
    # Refresh costs a few percent of throughput, not a regime change.
    assert on["throughput"] > 0.8 * off["throughput"]
    assert abs(on["fairness"] - off["fairness"]) < 0.25
