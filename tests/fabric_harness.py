"""Deterministic in-process harness for fabric tests.

Runs a real :class:`~repro.fabric.FabricCoordinator` (its own asyncio
loop on a background thread, bound to an ephemeral localhost port) and
real :class:`~repro.fabric.FabricWorker` loops on threads, talking over
actual sockets — so the tests exercise the genuine wire path — while
keeping every failure injection deterministic and in-process:

* :func:`crash_on_lease` — the worker thread dies while holding a lease
  (heartbeats stop, the lease expires server-side): the dead-worker
  scenario without killing the test process.
* :func:`abandon_leases` — the worker silently forgets its first N
  leases but keeps working: a partitioned/slow worker forcing lease
  expiry and re-lease.
* Scripted protocol clients (:class:`~repro.fabric.FabricClient`
  directly) for duplicate completions, stale leases, and out-of-order
  replies.
* :meth:`CoordinatorThread.kill` + :func:`restart_coordinator` — the
  coordinator dies without finalizing (no ``close`` ledger record, no
  ``aborted`` journal line — the in-process stand-in for SIGKILL) and a
  fresh coordinator replays the write-ahead ledger on the same port.
* :class:`LeaseGate` — a ``lease_hook`` that parks the worker thread
  holding a live lease until the test releases it, so a kill can be
  timed while ≥1 lease is provably outstanding.

Accounting helpers read the shared store's ``journal.jsonl`` — the same
artifact an operator would grep — to assert lease-exactly-once, and
``store_object_bytes`` snapshots the ``objects/`` tree for byte-identity
checks against single-process sweeps.
"""

import asyncio
import threading

from repro.fabric import FabricCoordinator, FabricWorker, WorkerAbandoned
from repro.fabric import protocol
from repro.store import ResultStore


class WorkerCrashed(Exception):
    """Harness-injected worker death (never caught by the worker loop)."""


def crash_on_lease(after: int = 0):
    """A ``lease_hook`` that kills the worker on its ``after+1``-th lease.

    Raises :class:`WorkerCrashed`, which the worker loop does *not*
    handle — the run() call unwinds, the heartbeat thread stops, and the
    coordinator sees exactly what a dead process looks like: silence.
    """
    state = {"leases": 0}

    def hook(worker, lease):
        state["leases"] += 1
        if state["leases"] > after:
            raise WorkerCrashed(
                f"{worker.worker_id} crashed holding {lease['lease_id']}"
            )

    return hook


def abandon_leases(count: int = 1):
    """A ``lease_hook`` that silently drops the first ``count`` leases.

    The worker neither completes nor fails them (WorkerAbandoned is the
    worker-loop-internal skip signal) and then behaves normally — the
    abandoned cells come back via TTL expiry.
    """
    state = {"dropped": 0}

    def hook(worker, lease):
        if state["dropped"] < count:
            state["dropped"] += 1
            raise WorkerAbandoned(lease["lease_id"])

    return hook


class CoordinatorThread:
    """A FabricCoordinator driven by a private event loop on a thread.

    Context manager: ``with CoordinatorThread(...) as coord:`` yields the
    harness with the server bound and the campaign live; exit stops the
    loop (journaling ``aborted`` if the campaign never finished).
    """

    def __init__(self, scale, tasks, store_dir, **kwargs):
        kwargs.setdefault("status_interval", 0.05)
        self.coordinator = FabricCoordinator(scale, tasks, store_dir, **kwargs)
        self.port = None  # captured at start(); survives a kill()
        self._loop = None
        self._ready = threading.Event()
        self._startup_error = None
        self._killed = False
        self._thread = threading.Thread(
            target=self._run, name="fabric-coordinator", daemon=True
        )

    def _run(self):
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.coordinator.start())
        except Exception as exc:  # surface bind/scan failures to start()
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self.port = self.coordinator.port
        self._ready.set()
        try:
            self._loop.run_forever()
            if self._killed:
                self._loop.run_until_complete(self.coordinator.abandon())
            else:
                self._loop.run_until_complete(self.coordinator.stop())
        finally:
            self._loop.close()

    def start(self) -> "CoordinatorThread":
        self._thread.start()
        assert self._ready.wait(10), "coordinator failed to start in 10s"
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self) -> str:
        return f"{self.coordinator.host}:{self.port}"

    def wait(self, timeout: float = 180.0) -> None:
        assert self.coordinator.completed_event.wait(
            timeout
        ), f"campaign did not complete within {timeout}s: {self.coordinator.summary()}"

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def kill(self) -> None:
        """Die like SIGKILL: no close record, no aborted journal line.

        The socket closes (workers see connection errors) but the ledger
        keeps whatever was already written ahead — exactly the state a
        killed coordinator process leaves for :func:`restart_coordinator`
        to replay.
        """
        if self._thread.is_alive():
            self._killed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "CoordinatorThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def restart_coordinator(dead: "CoordinatorThread", **overrides) -> CoordinatorThread:
    """A fresh coordinator over the dead one's store, on the same port.

    Replays the write-ahead ledger (bumping the fencing epoch) so
    surviving workers — still polling the address they know — reconnect
    to the recovered campaign.  Keyword overrides patch the original
    constructor arguments (ttl, retry, resume_grace, ...).
    """
    old = dead.coordinator
    kwargs = {
        "host": old.host,
        "port": dead.port,
        "ttl": old.ttl,
        "retry": old.retry,
        "tick": old.tick,
        "status_interval": old.status_interval,
        "token": old.token,
        "resume_grace": old.resume_grace,
    }
    kwargs.update(overrides)
    return CoordinatorThread(old.scale, old.tasks, old.store.root, **kwargs).start()


class LeaseGate:
    """A ``lease_hook`` that parks lease holders until released.

    The first ``hold`` leases block inside the worker thread (heartbeats
    keep flowing — the lease stays live) after signalling ``held``; the
    test can then kill/restart the coordinator at a moment when in-flight
    state provably exists, and ``release()`` lets execution continue.
    """

    def __init__(self, hold: int = 1, timeout: float = 60.0):
        self.hold = hold
        self.timeout = timeout
        self.held = threading.Event()  # set once `hold` leases are parked
        self._release = threading.Event()
        self._lock = threading.Lock()
        self._parked = 0
        self.leases = []  # (worker_id, lease dict) in park order

    def __call__(self, worker, lease):
        with self._lock:
            if self._parked >= self.hold or self._release.is_set():
                return
            self._parked += 1
            self.leases.append((worker.worker_id, dict(lease)))
            if self._parked >= self.hold:
                self.held.set()
        assert self._release.wait(self.timeout), "LeaseGate never released"

    def release(self) -> None:
        self._release.set()


class WorkerThread:
    """One FabricWorker.run() on a thread, capturing result or exception."""

    def __init__(self, worker: FabricWorker):
        self.worker = worker
        self.summary = None
        self.error = None
        self._thread = threading.Thread(
            target=self._run, name=f"fabric-{worker.worker_id}", daemon=True
        )

    def _run(self):
        try:
            self.summary = self.worker.run()
        except Exception as exc:  # includes injected WorkerCrashed
            self.error = exc

    def start(self) -> "WorkerThread":
        self._thread.start()
        return self

    def join(self, timeout: float = 60.0) -> "WorkerThread":
        self._thread.join(timeout)
        assert not self._thread.is_alive(), f"{self.worker.worker_id} did not exit"
        return self


def start_workers(address, scratch_root, specs) -> list:
    """Spawn one WorkerThread per spec dict (kwargs for FabricWorker)."""
    threads = []
    for i, spec in enumerate(specs):
        spec = dict(spec)
        worker_id = spec.pop("worker_id", f"w{i}")
        worker = FabricWorker(
            worker_id, address, scratch_root / f"scratch-{worker_id}", **spec
        )
        threads.append(WorkerThread(worker).start())
    return threads


# -- journal accounting ----------------------------------------------------


def journal(store_dir):
    return ResultStore(store_dir).journal_entries()


def lease_accounting(entries):
    """Per-lease event counts: lease_id → {leased, completed, key}.

    The exactly-once property is stated over these: every lease_id is
    granted exactly once and acknowledged with at most one accepted
    completion; every done cell has exactly one accepted completion
    across all its leases.
    """
    leases = {}
    for entry in entries:
        event = entry.get("event")
        if event == protocol.EV_LEASE:
            record = leases.setdefault(
                entry["lease_id"], {"leased": 0, "completed": 0, "key": entry["key"]}
            )
            record["leased"] += 1
        elif event == protocol.EV_COMPLETE:
            record = leases.setdefault(
                entry["lease_id"], {"leased": 0, "completed": 0, "key": entry["key"]}
            )
            record["completed"] += 1
    return leases


def assert_exactly_once(entries, done_keys):
    """Lease-exactly-once over a journal: see :func:`lease_accounting`."""
    leases = lease_accounting(entries)
    for lease_id, record in leases.items():
        assert record["leased"] == 1, f"{lease_id} granted {record['leased']} times"
        assert record["completed"] <= 1, f"{lease_id} completed twice"
    completes_per_key = {}
    for record in leases.values():
        completes_per_key[record["key"]] = (
            completes_per_key.get(record["key"], 0) + record["completed"]
        )
    for key in done_keys:
        assert (
            completes_per_key.get(key, 0) == 1
        ), f"cell {key[:12]} accepted {completes_per_key.get(key, 0)} completions"


def store_object_bytes(root):
    """``objects/`` tree as {relative path: bytes} for byte-identity checks.

    Deliberately excludes ``journal.jsonl`` and ``status.json`` — those
    carry wall-clock timestamps and execution history, which legitimately
    differ between a fabric run and a single-process run.  The *results*
    must not.
    """
    objects = sorted(root.glob("objects/**/*.json"))
    return {p.relative_to(root).as_posix(): p.read_bytes() for p in objects}
