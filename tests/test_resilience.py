"""Fault-tolerant sweep execution: supervisor, retries, quarantine, faults.

The acceptance story: a sweep with injected crashes, a hang, transient
errors, and store corruption still completes every healthy cell,
quarantines only the truly poisoned ones, journals them, and — resumed
fault-free — produces a merged table byte-identical to a clean run.
"""

import json
import time

import pytest

from repro.core.policies import PolicySpec
from repro.experiments import (
    CellFailure,
    ExperimentScale,
    RetryPolicy,
    SweepAborted,
    collect_from_store,
    run_sweep,
)
from repro.experiments.parallel import (
    GridTask,
    make_tasks,
    run_grid_parallel,
    run_grid_resumable,
    task_store_key,
)
from repro.resilience import FaultInjected, FaultPlan, FaultSpec, Supervisor
from repro.resilience import faults as fault_injection
from repro.resilience.faults import corrupt_store_object
from repro.store import ResultStore
from tests.test_store_resume import TINY, table_bytes, tiny_tasks

FAST = RetryPolicy(retries=2, backoff_base=0.0)


def plan(tmp_path, cells, **kwargs):
    return FaultPlan.build(tmp_path / "fault-state", cells, **kwargs)


class TestRetryPolicy:
    def test_delay_is_deterministic_and_capped(self):
        policy = RetryPolicy(retries=3, backoff_base=0.25, backoff_cap=1.0)
        first = policy.delay("G17|P1|F3FS|vc1", 1)
        assert first == policy.delay("G17|P1|F3FS|vc1", 1)  # replayable
        assert policy.delay("G17|P2|F3FS|vc1", 1) != first  # per-label jitter
        for attempt in range(1, 20):
            assert policy.delay("x", attempt) <= 1.0 * 1.1  # cap + jitter

    def test_zero_base_disables_sleeping(self):
        assert RetryPolicy(backoff_base=0.0).delay("x", 5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 2.0, "backoff_cap": 1.0},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_claim_counts_persist_on_disk(self, tmp_path):
        p = plan(tmp_path, {"a": FaultSpec("error", times=2)})
        assert p.claim("a") == "error"
        # A fresh deserialized plan (a respawned worker) sees the count.
        q = FaultPlan.from_payload(p.to_payload())
        assert q.triggered("a") == 1
        assert q.claim("a") == "error"
        assert q.claim("a") is None  # exhausted
        assert q.claim("unlisted") is None

    def test_negative_times_means_always(self, tmp_path):
        p = plan(tmp_path, {"a": FaultSpec("crash", times=-1)})
        for _ in range(5):
            assert p.claim("a") == "crash"

    def test_phase_filter_does_not_consume(self, tmp_path):
        p = plan(tmp_path, {"a": FaultSpec("corrupt", times=1)})
        assert p.claim("a", phase="pre") is None  # corrupt is post-run
        assert p.triggered("a") == 0  # mismatch must not burn the trigger
        assert p.claim("a", phase="post") == "corrupt"

    def test_file_round_trip(self, tmp_path):
        p = plan(tmp_path, {"a": FaultSpec("hang")}, hang_seconds=7.5)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(p.to_payload()))
        q = FaultPlan.from_file(path)
        assert q.hang_seconds == 7.5
        assert dict(q.cells)["a"].kind == "hang"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec("explode")


class TestSupervisorUnit:
    """The supervisor against plain functions (no simulator)."""

    def test_transient_errors_retry_then_succeed(self):
        # One worker process so the per-process failure counter in
        # _flaky_twice sees a deterministic call order.
        supervisor = Supervisor(_flaky_twice, max_workers=1, retry=FAST)
        results = {}
        supervisor.run(["a", "b"], lambda i, r: results.__setitem__(i, r))
        assert results == {0: "ok:a", 1: "ok:b"}
        assert not supervisor.failures
        assert [e["kind"] for e in supervisor.events].count("retry") >= 2

    def test_persistent_error_quarantines_with_attempts(self):
        supervisor = Supervisor(_always_fails, max_workers=1, retry=FAST)
        results = {}
        supervisor.run(["a"], lambda i, r: results.__setitem__(i, r))
        assert results == {}
        (failure,) = supervisor.failures
        assert failure.kind == "error"
        assert failure.attempts == FAST.retries + 1

    def test_config_error_is_fatal_no_retry(self):
        supervisor = Supervisor(_bad_config, max_workers=1, retry=FAST)
        supervisor.run(["a"], lambda i, r: None)
        (failure,) = supervisor.failures
        assert failure.kind == "config"
        assert failure.attempts == 1  # no retries burned on determinism


def _flaky_twice(label, _dir={"n": 0}):  # noqa: B006 - intentional shared state
    # Module-level for pickling; fails the first two calls per process.
    _dir["n"] += 1
    if _dir["n"] <= 2:
        raise FaultInjected(f"transient {label}")
    return f"ok:{label}"


def _always_fails(label):
    raise FaultInjected(f"broken {label}")


def _bad_config(label):
    raise ValueError(f"bad field {label}")


class TestFaultySweepEndToEnd:
    @pytest.mark.parametrize("fast_forward", ["0", "1"])
    def test_crashes_and_hang_degrade_gracefully(
        self, tmp_path, monkeypatch, fast_forward
    ):
        """3 crash cells (one healing) + 1 permanent hang: healthy cells
        complete and match a clean run byte-for-byte; poisoned cells
        quarantine; a fault-free resume recovers everything."""
        monkeypatch.setenv("REPRO_FAST_FORWARD", fast_forward)
        tasks = make_tasks(
            ["G17"], ["P1", "P2"], [PolicySpec("FR-FCFS"), PolicySpec("F3FS")], (1,)
        )
        reference = run_sweep(TINY, tasks, store_dir=str(tmp_path / "ref"))

        faults = plan(
            tmp_path,
            {
                "G17|P1|FR-FCFS|vc1": FaultSpec("crash", times=1),  # heals
                "G17|P2|FR-FCFS|vc1": FaultSpec("crash", times=-1),  # poisoned
                "G17|P1|F3FS|vc1": FaultSpec("crash", times=-1),  # poisoned
                "G17|P2|F3FS|vc1": FaultSpec("hang", times=-1),  # poisoned
            },
            hang_seconds=15.0,
        )
        store_dir = str(tmp_path / "faulty")
        report = run_sweep(
            TINY,
            tasks,
            store_dir=store_dir,
            max_workers=2,
            cell_timeout=5.0,
            retry=RetryPolicy(retries=1, backoff_base=0.0),
            faults=faults,
        )
        # The healing crash cell and every untouched cell completed.
        assert report.completed == 1
        assert report.failed == 3
        kinds = {f.label: f.kind for f in report.failed_outcomes}
        assert kinds["G17|P2|F3FS|vc1"] == "timeout"
        assert kinds["G17|P2|FR-FCFS|vc1"] == "crash"
        assert kinds["G17|P1|F3FS|vc1"] == "crash"
        # Quarantines are journaled next to the puts.
        events = [
            e for e in ResultStore(store_dir).journal_entries()
            if e["event"] == "quarantine"
        ]
        assert sorted(e["label"] for e in events) == sorted(kinds)

        # Fault-free resume: healthy cell hits, poisoned cells recompute,
        # and the merged table matches the clean reference exactly.
        resumed = run_sweep(TINY, tasks, store_dir=store_dir)
        assert resumed.hits == 1
        assert resumed.misses == 3
        assert not resumed.failed_outcomes
        merged = collect_from_store(TINY, tasks, store_dir)
        assert table_bytes(merged) == table_bytes(reference.completed_outcomes())

    def test_transient_error_retries_to_success(self, tmp_path):
        tasks = tiny_tasks()[:2]
        faults = plan(tmp_path, {tasks[0].label: FaultSpec("error", times=2)})
        report = run_grid_resumable(
            TINY, tasks, max_workers=2, faults=faults, retry=FAST
        )
        assert report.completed == 2
        assert not report.failed_outcomes
        retried = [e for e in report.retry_events if e["kind"] == "retry"]
        assert len(retried) == 2
        assert all(e["label"] == tasks[0].label for e in retried)

    def test_corrupted_store_write_recomputes_on_resume(self, tmp_path):
        tasks = tiny_tasks()[:2]
        store_dir = str(tmp_path / "s")
        faults = plan(tmp_path, {tasks[0].label: FaultSpec("corrupt", times=1)})
        first = run_sweep(
            TINY, tasks, store_dir=store_dir, max_workers=2, faults=faults
        )
        assert first.completed == 2  # corruption happens after the result
        # The corrupted object is a checksummed miss, not a wrong result.
        store = ResultStore(store_dir)
        assert store.get(task_store_key(TINY, tasks[0])) is None
        resumed = run_sweep(TINY, tasks, store_dir=store_dir)
        assert resumed.hits == 1 and resumed.misses == 1
        reference = run_sweep(TINY, tasks, store_dir=str(tmp_path / "ref"))
        assert table_bytes(resumed.completed_outcomes()) == table_bytes(
            reference.completed_outcomes()
        )

    def test_corrupt_helper_defeats_checksum(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.put("ab" * 32, {"x": 1}, meta={"kind": "competitive"})
        corrupt_store_object(store, "ab" * 32)
        assert store.get("ab" * 32) is None
        assert store.stats.corrupt == 1

    def test_env_var_activates_plan(self, tmp_path, monkeypatch):
        tasks = tiny_tasks()[:1]
        p = plan(tmp_path, {tasks[0].label: FaultSpec("error", times=1)})
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(p.to_payload()))
        monkeypatch.setenv("REPRO_FAULTS", str(path))
        report = run_grid_resumable(TINY, tasks, retry=FAST)
        assert report.completed == 1
        assert len(report.retry_events) == 1

    def test_abort_after_works_under_supervision(self, tmp_path):
        tasks = tiny_tasks()
        store_dir = str(tmp_path / "s")
        with pytest.raises(SweepAborted):
            run_sweep(TINY, tasks, store_dir=store_dir, max_workers=2, abort_after=2)
        resumed = run_sweep(TINY, tasks, store_dir=store_dir, max_workers=2)
        assert resumed.hits >= 2


def _install_plan(payload):
    # Pool initializer (module-level for pickling): arm the fault plan.
    fault_injection.install(FaultPlan.from_payload(payload))


def _fault_driven(label):
    # Worker fn: behave per the installed plan's schedule for this label.
    plan_ = fault_injection.active()
    kind = plan_.claim(label) if plan_ is not None else None
    if kind == "hang":
        time.sleep(plan_.hang_seconds)
    elif kind == "error":
        raise FaultInjected(f"transient {label}")
    elif kind == "crash":
        fault_injection.crash_worker()
    return f"ok:{label}"


class TestHeartbeatQuarantineInteraction:
    """A hanging cell must be visible in-flight, then quarantined — and
    never heartbeat again once quarantined.

    Property-style: the invariant is asserted over the supervisor's full
    interleaved heartbeat/quarantine timeline for several deterministic
    fault schedules, not one hand-picked trace.
    """

    SCHEDULES = [
        {"b": FaultSpec("hang", times=-1)},
        {"a": FaultSpec("hang", times=-1), "c": FaultSpec("error", times=1)},
        {"b": FaultSpec("hang", times=-1), "d": FaultSpec("hang", times=-1)},
        {"c": FaultSpec("hang", times=-1), "a": FaultSpec("crash", times=-1)},
    ]

    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: "+".join(sorted(s)))
    def test_in_flight_then_quarantined_never_both(self, tmp_path, schedule):
        fault_plan = plan(tmp_path, schedule, hang_seconds=30.0)
        timeline = []  # ordered ("hb", labels) / ("q", label) events
        supervisor = Supervisor(
            _fault_driven,
            max_workers=2,
            cell_timeout=0.5,
            retry=RetryPolicy(retries=1, backoff_base=0.0),
            tick=0.02,
            initializer=_install_plan,
            initargs=(fault_plan.to_payload(),),
        )
        supervisor.on_heartbeat = lambda cells: timeline.append(
            ("hb", tuple(sorted(c["label"] for c in cells)))
        )
        supervisor.on_quarantine = lambda failure: timeline.append(
            ("q", failure.label)
        )
        results = {}
        supervisor.run(list("abcd"), lambda i, r: results.__setitem__(i, r))

        poisoned = {
            label for label, spec in schedule.items()
            if spec.kind in ("hang", "crash") and spec.times == -1
        }
        assert {f.label for f in supervisor.failures} == poisoned
        for failure in supervisor.failures:
            if schedule[failure.label].kind == "hang":
                assert failure.kind == "timeout"

        # The invariant: once a label is quarantined, no later heartbeat
        # snapshot may contain it ("in flight" and "quarantined" are
        # mutually exclusive, in that order).
        dead = set()
        seen_in_flight = set()
        for event, payload in timeline:
            if event == "q":
                dead.add(payload)
            else:
                overlap = set(payload) & dead
                assert not overlap, f"{overlap} heartbeating after quarantine"
                seen_in_flight.update(payload)

        # Every hanging cell was observably in flight before it died —
        # the heartbeat is how an operator sees the hang happening.
        hangs = {l for l, spec in schedule.items() if spec.kind == "hang"}
        assert hangs <= seen_in_flight

        # Healthy cells (including the healed transient) all completed.
        assert {r.split(":")[1] for r in results.values()} == set("abcd") - poisoned


class TestSerialQuarantine:
    def test_config_error_quarantined_in_process(self):
        """A bad cell config fails deterministically: one attempt, kind
        'config', healthy cells still complete — all without a pool."""
        good = tiny_tasks()[:1]
        bad = GridTask(
            gpu_id="G17",
            pim_id="P1",
            policy_name="F3FS",
            policy_params=(("mem_cap", 0), ("pim_cap", 1)),
            num_vcs=1,
        )
        report = run_grid_resumable(TINY, [bad, *good], retry=FAST)
        assert report.completed == 1
        (failure,) = report.failed_outcomes
        assert isinstance(failure, CellFailure)
        assert failure.kind == "config"
        assert failure.attempts == 1
        assert failure.index == 0
        assert "mem_cap" in failure.message

    def test_legacy_entry_point_raises_on_failure(self):
        bad = GridTask(
            gpu_id="G17",
            pim_id="P1",
            policy_name="F3FS",
            policy_params=(("mem_cap", 0), ("pim_cap", 1)),
            num_vcs=1,
        )
        with pytest.raises(RuntimeError, match="failed after retries"):
            run_grid_parallel(TINY, [bad], max_workers=1)


class TestConfigValidation:
    """Bare asserts replaced by ValueErrors that name the field."""

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_channels", 0),
            ("gpu_sms_full", -1),
            ("pim_sms", 0),
            ("max_cycles", 0),
            ("noc_queue_size", 0),
            ("starvation_factor", 0),
            ("seed", -1),
            ("workload_scale", 0),
            ("num_channels", 2.5),
            ("num_channels", True),
        ],
    )
    def test_experiment_scale_names_offending_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            ExperimentScale(**{field: value})

    def test_f3fs_caps_name_field_and_value(self):
        with pytest.raises(ValueError, match=r"mem_cap must be >= 1 \(got 0\)"):
            PolicySpec("F3FS", mem_cap=0, pim_cap=4).create()
        with pytest.raises(ValueError, match=r"pim_cap must be >= 1 \(got -2\)"):
            PolicySpec("F3FS", mem_cap=4, pim_cap=-2).create()

    def test_frfcfs_cap_names_field(self):
        with pytest.raises(ValueError, match=r"cap must be >= 1 \(got 0\)"):
            PolicySpec("FR-FCFS-Cap", cap=0).create()

    def test_vc_buffer_names_fields(self):
        from repro.noc.vc import VCBuffer

        with pytest.raises(ValueError, match=r"num_vcs must be 1 or 2 \(got 3\)"):
            VCBuffer(total_capacity=8, num_vcs=3)
        with pytest.raises(ValueError, match=r"total_capacity must be >= num_vcs=2"):
            VCBuffer(total_capacity=1, num_vcs=2)
