"""Tests for the DRAM/PIM energy model."""

import pytest

from repro.config import SystemConfig
from repro.core.policies import PolicySpec
from repro.dram.power import EnergyAccountant, EnergyBreakdown, EnergyParams
from repro.sim.system import GPUSystem
from repro.workloads.synthetic import GPUKernelProfile, PIMStreamKernel


class TestEnergyParams:
    def test_defaults_positive(self):
        params = EnergyParams()
        assert params.mem_read_pj > params.core_column_pj  # I/O adds energy
        assert params.pim_op_pj(16) > 0

    def test_pim_word_energy_cheaper_than_mem(self):
        """The PIM pitch: per useful word, no I/O energy is paid."""
        params = EnergyParams()
        pim_per_word = params.pim_op_pj(16) / 16
        assert pim_per_word < params.mem_read_pj

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(io_pj=-1)


class TestAccountant:
    def test_component_math(self):
        params = EnergyParams(
            act_pre_pj=1000,
            core_column_pj=100,
            io_pj=400,
            pim_fu_pj=50,
            refresh_pj=10_000,
            noc_hop_pj=100,
            background_pj_per_cycle=10,
        )
        breakdown = EnergyAccountant(params).account(
            cycles=1000,
            num_channels=2,
            activates=10,
            reads=20,
            writes=5,
            pim_ops=8,
            pim_banks=4,
            pim_row_switches=2,
            refreshes=1,
            noc_transfers=25,
        )
        assert breakdown.activate == pytest.approx((10 + 2 * 4) * 1.0)
        assert breakdown.read == pytest.approx(20 * 0.5)
        assert breakdown.write == pytest.approx(5 * 0.5)
        assert breakdown.pim == pytest.approx(8 * 4 * 0.15)
        assert breakdown.refresh == pytest.approx(10.0)
        assert breakdown.noc == pytest.approx(2.5)
        assert breakdown.background == pytest.approx(1000 * 2 * 0.01)
        assert breakdown.total == pytest.approx(
            sum(
                [
                    breakdown.activate,
                    breakdown.read,
                    breakdown.write,
                    breakdown.pim,
                    breakdown.refresh,
                    breakdown.noc,
                    breakdown.background,
                ]
            )
        )

    def test_dict_round_trip(self):
        breakdown = EnergyBreakdown(read=1.0, background=2.0)
        data = breakdown.as_dict()
        assert data["total"] == pytest.approx(3.0)
        assert breakdown.dynamic == pytest.approx(1.0)


class TestSystemEnergy:
    def _config(self):
        return SystemConfig.scaled(num_channels=4, num_sms=4)

    def test_gpu_run_has_read_and_noc_energy(self):
        system = GPUSystem(self._config(), PolicySpec("FR-FCFS"))
        system.add_kernel(
            GPUKernelProfile(name="e-gpu", accesses_per_warp=128, l2_reuse=0.0),
            num_sms=2,
        )
        system.run(max_cycles=300_000)
        energy = system.energy_report()
        assert energy.read > 0
        assert energy.noc > 0
        assert energy.pim == 0
        assert energy.background > 0

    def test_pim_run_has_pim_energy_no_reads(self):
        system = GPUSystem(self._config(), PolicySpec("FR-FCFS"))
        system.add_kernel(PIMStreamKernel(name="e-pim", elements_per_warp=64), num_sms=1)
        system.run(max_cycles=300_000)
        energy = system.energy_report()
        assert energy.pim > 0
        assert energy.read == 0
        assert energy.activate > 0  # PIM row switches activate all banks

    def test_pim_beats_host_energy_per_element(self):
        """STREAM-Add on PIM vs the same work as host loads/stores."""
        elements = 256
        pim_system = GPUSystem(self._config(), PolicySpec("FR-FCFS"))
        pim_system.add_kernel(
            PIMStreamKernel(name="e-add-pim", elements_per_warp=elements), num_sms=1
        )
        pim_result = pim_system.run(max_cycles=500_000)
        # Host version: 2 loads + 1 store per element, streaming (no reuse).
        host_system = GPUSystem(self._config(), PolicySpec("FR-FCFS"))
        host_system.add_kernel(
            GPUKernelProfile(
                name="e-add-host",
                accesses_per_warp=3 * elements,
                compute_per_phase=1,
                accesses_per_phase=8,
                row_locality=0.95,
                l2_reuse=0.0,
                store_fraction=0.34,
            ),
            num_sms=4,
        )
        host_result = host_system.run(max_cycles=500_000)
        assert pim_result.all_completed and host_result.all_completed
        # Dynamic energy per processed element: PIM processes
        # elements x banks words per channel-warp in lock-step.
        pim_words = elements * 16 * 4  # elements x banks x channels(warps)
        host_words = 3 * elements * 4 * 4  # accesses x warps x SMs
        pim_energy = pim_system.energy_report().dynamic / pim_words
        host_energy = host_system.energy_report().dynamic / host_words
        assert pim_energy < host_energy
