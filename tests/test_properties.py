"""Cross-cutting property-based tests on controller/policy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import MemoryController
from repro.core.policies import PAPER_POLICY_ORDER, make_policy
from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType

#: (is_pim, bank, row, column) tuples describing a traffic mix.
traffic = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 3),
        st.integers(0, 4),
        st.integers(0, 7),
    ),
    min_size=1,
    max_size=40,
)


def build_requests(mix):
    requests = []
    for is_pim, bank, row, column in mix:
        if is_pim:
            req = Request(
                type=RequestType.PIM, address=0, kernel_id=1, pim_op=PIMOp(PIMOpKind.LOAD)
            )
            req.channel, req.bank, req.row, req.column = 0, 0, row, column
        else:
            req = Request(type=RequestType.MEM_LOAD, address=0, kernel_id=0)
            req.channel, req.bank, req.row, req.column = 0, bank, row, column
        requests.append(req)
    return requests


def run_controller(policy_name, mix, **params):
    channel = Channel(0, 4, DRAMTimings())
    pim_exec = PIMExecutor(channel, fus_per_channel=2, rf_entries_per_bank=8)
    ctl = MemoryController(
        channel, pim_exec, make_policy(policy_name, **params),
        mem_queue_size=64, pim_queue_size=64,
    )
    requests = build_requests(mix)
    for request in requests:
        ctl.enqueue(request, 0)
    completed = []
    for cycle in range(200_000):
        completed.extend(ctl.pop_completed(cycle))
        ctl.tick(cycle)
        if ctl.outstanding() == 0:
            ctl.finalize(cycle)
            break
    else:
        raise AssertionError(f"{policy_name} did not drain")
    return ctl, requests, completed


@settings(max_examples=25, deadline=None)
@given(mix=traffic, policy=st.sampled_from(PAPER_POLICY_ORDER))
def test_no_policy_loses_or_duplicates_requests(mix, policy):
    """Conservation: every policy completes every request exactly once."""
    ctl, requests, completed = run_controller(policy, mix)
    assert sorted(r.id for r in completed) == sorted(r.id for r in requests)


@settings(max_examples=25, deadline=None)
@given(mix=traffic, policy=st.sampled_from(PAPER_POLICY_ORDER))
def test_pim_fcfs_order_always_preserved(mix, policy):
    """PIM correctness: PIM requests issue in arrival order everywhere."""
    ctl, requests, _ = run_controller(policy, mix)
    pim_issue_cycles = [r.cycle_issued for r in requests if r.is_pim]
    assert pim_issue_cycles == sorted(pim_issue_cycles)


@settings(max_examples=25, deadline=None)
@given(mix=traffic, policy=st.sampled_from(PAPER_POLICY_ORDER))
def test_mode_cycles_account_for_all_time(mix, policy):
    ctl, _, _ = run_controller(policy, mix)
    assert sum(ctl.stats.mode_cycles.values()) > 0
    for value in ctl.stats.mode_cycles.values():
        assert value >= 0


@settings(max_examples=25, deadline=None)
@given(mix=traffic, cap=st.integers(1, 8))
def test_f3fs_bypasses_bounded_by_cap(mix, cap):
    """Between switches, F3FS never lets more than CAP same-mode requests
    bypass an older request of the other mode."""
    ctl, requests, _ = run_controller("F3FS", mix, mem_cap=cap, pim_cap=cap)
    # Reconstruct the issue sequence and check the bypass bound.
    issued = sorted(
        (r for r in requests if r.cycle_issued >= 0), key=lambda r: r.cycle_issued
    )
    arrivals = {r.id: r.mc_seq for r in requests}
    served = set()
    bypasses = 0
    current_mode = None
    for request in issued:
        mode = request.mode
        if mode is not current_mode:
            current_mode = mode
            bypasses = 0
        served.add(request.id)
        # Was an older other-mode request still waiting when this issued?
        older_waiting = any(
            arrivals[r.id] < request.mc_seq
            for r in requests
            if r.mode is not mode and r.id not in served
        )
        if older_waiting:
            bypasses += 1
            assert bypasses <= cap + 1  # +1: the decision preceding the switch


@settings(max_examples=20, deadline=None)
@given(mix=traffic)
def test_queueing_delay_nonnegative(mix):
    _, requests, _ = run_controller("FR-FCFS", mix)
    for request in requests:
        assert request.queueing_delay >= 0
        assert request.cycle_completed >= request.cycle_issued >= request.cycle_mc_arrival
