"""Tests for the extension policies: SMS batches and dynamic F3FS."""

import pytest

from repro.core.controller import MemoryController
from repro.core.policies import DynamicF3FS, make_policy
from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType


def make_controller(policy_name, queue=64, **params):
    channel = Channel(0, 4, DRAMTimings())
    pim_exec = PIMExecutor(channel, fus_per_channel=2, rf_entries_per_bank=8)
    policy = make_policy(policy_name, **params)
    return MemoryController(channel, pim_exec, policy, mem_queue_size=queue, pim_queue_size=queue)


def mem_request(bank=0, row=0, column=0):
    req = Request(type=RequestType.MEM_LOAD, address=0)
    req.channel, req.bank, req.row, req.column = 0, bank, row, column
    return req


def pim_request(row=0, column=0):
    req = Request(type=RequestType.PIM, address=0, kernel_id=1, pim_op=PIMOp(PIMOpKind.LOAD))
    req.channel, req.bank, req.row, req.column = 0, 0, row, column
    return req


def drive(ctl, max_cycles=100_000):
    completed = []
    for cycle in range(max_cycles):
        completed.extend(ctl.pop_completed(cycle))
        ctl.tick(cycle)
        if ctl.outstanding() == 0:
            ctl.finalize(cycle)
            return completed, cycle
    raise AssertionError("controller did not drain")


class TestSMS:
    def test_batch_boundary_switches(self):
        ctl = make_controller("SMS", batch_size=4)
        for i in range(8):
            ctl.enqueue(mem_request(bank=i % 4, row=0, column=i), cycle=0)
        for i in range(8):
            ctl.enqueue(pim_request(row=0, column=i), cycle=0)
        drive(ctl)
        # 8 requests per mode with batches of 4 -> at least 3 switches.
        assert ctl.stats.switches >= 3

    def test_larger_batches_switch_less(self):
        def switches(batch_size):
            ctl = make_controller("SMS", batch_size=batch_size)
            for i in range(16):
                ctl.enqueue(mem_request(bank=i % 4, row=0, column=i), cycle=0)
                ctl.enqueue(pim_request(row=0, column=i), cycle=0)
            drive(ctl)
            return ctl.stats.switches

        assert switches(16) < switches(2)

    def test_drains_mixed_traffic(self):
        ctl = make_controller("SMS")
        reqs = [mem_request(bank=i % 4, row=i % 3) for i in range(10)]
        reqs += [pim_request(row=0, column=i) for i in range(10)]
        for r in reqs:
            ctl.enqueue(r, cycle=0)
        completed, _ = drive(ctl)
        assert len(completed) == len(reqs)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_policy("SMS", batch_size=0)


class TestDynamicF3FS:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicF3FS(target_mem_share=0.0)
        with pytest.raises(ValueError):
            DynamicF3FS(epoch=0)
        with pytest.raises(ValueError):
            DynamicF3FS(margin=0.6)
        with pytest.raises(ValueError):
            DynamicF3FS(min_cap=100, max_cap=50)

    @staticmethod
    def _saturate(ctl, cycle, round_):
        """Keep both queues near capacity (MIMD feedback needs backlog)."""
        while ctl.enqueue(pim_request(row=round_ % 4, column=cycle % 8), cycle):
            pass
        while ctl.enqueue(mem_request(bank=cycle % 4, row=round_ % 16), cycle):
            pass

    def test_caps_adapt_under_imbalanced_target(self):
        """An extreme target forces the controller off symmetric CAPs."""
        ctl = make_controller(
            "Dyn-F3FS", initial_cap=16, epoch=200, target_mem_share=0.9, margin=0.05
        )
        policy = ctl.policy
        cycle = 0
        for round_ in range(30):
            self._saturate(ctl, cycle, round_)
            for cycle in range(cycle, cycle + 120):
                ctl.pop_completed(cycle)
                ctl.tick(cycle)
        assert policy.adjustments > 0
        assert policy.caps[Mode.MEM] > policy.caps[Mode.PIM]

    def test_target_share_steers_service(self):
        """Higher MEM target -> MEM receives a larger share of service."""

        def mem_share(target):
            ctl = make_controller(
                "Dyn-F3FS", initial_cap=16, epoch=200, target_mem_share=target, margin=0.05
            )
            cycle = 0
            for round_ in range(60):
                self._saturate(ctl, cycle, round_)
                for cycle in range(cycle, cycle + 120):
                    ctl.pop_completed(cycle)
                    ctl.tick(cycle)
            total = ctl.stats.mem_issued + ctl.stats.pim_issued
            return ctl.stats.mem_issued / total if total else 0.0

        assert mem_share(0.8) > mem_share(0.2) + 0.1

    def test_caps_stay_bounded(self):
        policy = DynamicF3FS(initial_cap=16, min_cap=8, max_cap=32)
        for _ in range(10):
            policy._shift_toward(Mode.MEM)
        assert policy.caps[Mode.MEM] == 32
        assert policy.caps[Mode.PIM] == 8
