"""Tests for the Request model and SimResult records."""

import pytest

from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType, reset_request_ids
from repro.sim.results import KernelResult, SimResult


class TestRequest:
    def test_pim_requires_op(self):
        with pytest.raises(ValueError):
            Request(type=RequestType.PIM, address=0)

    def test_mem_rejects_op(self):
        with pytest.raises(ValueError):
            Request(type=RequestType.MEM_LOAD, address=0, pim_op=PIMOp(PIMOpKind.LOAD))

    def test_ids_monotonic(self):
        a = Request(type=RequestType.MEM_LOAD, address=0)
        b = Request(type=RequestType.MEM_LOAD, address=0)
        assert b.id > a.id

    def test_reset_ids(self):
        reset_request_ids()
        request = Request(type=RequestType.MEM_LOAD, address=0)
        assert request.id == 0

    def test_mode_mapping(self):
        load = Request(type=RequestType.MEM_LOAD, address=0)
        pim = Request(type=RequestType.PIM, address=0, pim_op=PIMOp(PIMOpKind.LOAD))
        assert load.mode is Mode.MEM
        assert pim.mode is Mode.PIM
        assert Mode.MEM.other is Mode.PIM
        assert Mode.PIM.other is Mode.MEM

    def test_latency_accessors(self):
        request = Request(type=RequestType.MEM_LOAD, address=0)
        with pytest.raises(ValueError):
            _ = request.total_latency
        with pytest.raises(ValueError):
            _ = request.queueing_delay
        request.cycle_created = 10
        request.cycle_mc_arrival = 20
        request.cycle_issued = 35
        request.cycle_completed = 60
        assert request.queueing_delay == 15
        assert request.total_latency == 50

    def test_identity_semantics(self):
        a = Request(type=RequestType.MEM_LOAD, address=0)
        b = Request(type=RequestType.MEM_LOAD, address=0)
        assert a != b
        assert len({a, b}) == 2

    def test_type_predicates(self):
        store = Request(type=RequestType.MEM_STORE, address=0)
        assert store.type.is_mem
        assert not store.is_load
        assert not store.is_pim


class TestKernelResult:
    def make(self, **kwargs):
        defaults = dict(kernel_id=0, name="k", is_pim=False)
        defaults.update(kwargs)
        return KernelResult(**defaults)

    def test_rates(self):
        result = self.make(requests_injected=100, mc_arrivals=50)
        assert result.injection_rate(200) == 0.5
        assert result.mc_arrival_rate(200) == 0.25
        assert result.injection_rate(0) == 0.0

    def test_rbhr(self):
        result = self.make(dram_row_hits=9, dram_row_misses=1)
        assert result.row_buffer_hit_rate == 0.9
        assert self.make().row_buffer_hit_rate == 0.0

    def test_l2_hit_rate(self):
        result = self.make(l2_accesses=10, l2_hits=4)
        assert result.l2_hit_rate == 0.4
        assert self.make().l2_hit_rate == 0.0


class TestSimResult:
    def test_lookup_helpers(self):
        result = SimResult(cycles=100)
        result.kernels[0] = KernelResult(kernel_id=0, name="a", is_pim=False, first_duration=50)
        result.kernels[1] = KernelResult(kernel_id=1, name="b", is_pim=True)
        assert result.kernel(0).name == "a"
        assert result.by_name("b").kernel_id == 1
        with pytest.raises(KeyError):
            result.by_name("c")

    def test_all_completed(self):
        result = SimResult(cycles=100)
        result.kernels[0] = KernelResult(kernel_id=0, name="a", is_pim=False, first_duration=50)
        assert result.all_completed
        result.kernels[1] = KernelResult(kernel_id=1, name="b", is_pim=True)
        assert not result.all_completed
        assert result.durations() == [50]
