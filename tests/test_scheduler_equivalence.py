"""Indexed scheduler == linear-scan reference (randomized equivalence).

The per-bank index (``repro.core.memq.BankIndexedMemQueue``) replaced the
flat-list scans the FR-FCFS-family policies used to run every decision
cycle.  The claim is *bit-identical decisions*: the index only changes
how the minima are found, never which request wins.  This suite checks
that claim two ways:

* **Primitive equivalence** — seeded random controller states (random
  banks/rows/ages, tombstoned entries, random open rows, accept windows,
  conflict bits) where each indexed query is compared against a
  straight-line scan reference copied from the pre-index implementation.
* **End-to-end equivalence** — full co-run simulations where the policy's
  indexed lookups are overridden with the scan reference; the simulation
  fingerprints (cycles, per-controller issue counts, per-kernel
  injection counts, mode switches) must match exactly for every
  FR-FCFS-family policy, across modes and CAP settings.

``mc_seq`` is unique per controller, so all the minima compared here have
unique keys and "same request" is well-defined (object identity).
"""

import random

import pytest

from repro.config import SystemConfig
from repro.core.controller import MemoryController
from repro.core.policies import make_policy
from repro.core.policies.bliss import BLISS
from repro.core.policies.dynamic_f3fs import DynamicF3FS
from repro.core.policies.f3fs import F3FS
from repro.core.policies.frfcfs import FRFCFS
from repro.core.policies.frfcfs_cap import FRFCFSCap
from repro.core.policies.frrr import FRRRFCFS
from repro.core.policies.sms import SMS
from repro.core.policies.base import IDLE, Decision
from repro.dram.channel import Channel
from repro.dram.timings import DRAMTimings
from repro.pim.executor import PIMExecutor
from repro.pim.isa import PIMOp, PIMOpKind
from repro.request import Mode, Request, RequestType, reset_request_ids
from repro.sim.system import GPUSystem
from repro.workloads import get_gpu_kernel, get_pim_kernel

NUM_BANKS = 8
NUM_ROWS = 6
SEEDS = range(25)


# ---------------------------------------------------------------------------
# Scan reference implementations (the pre-index behaviour, verbatim).
# ---------------------------------------------------------------------------


def scan_frfcfs_pick(ctl, cycle, exclude_conflict_banks=False):
    best_hit = None
    best_any = None
    for request in ctl.issuable_mem(cycle, exclude_conflict_banks=exclude_conflict_banks):
        if ctl.channel.is_row_hit(request):
            if best_hit is None or request.mc_seq < best_hit.mc_seq:
                best_hit = request
        if best_any is None or request.mc_seq < best_any.mc_seq:
            best_any = request
    return best_hit if best_hit is not None else best_any


def scan_oldest_overall(ctl):
    candidates = list(ctl.mem_queue) + list(ctl.pim_queue)
    best = None
    for request in candidates:
        if best is None or request.mc_seq < best.mc_seq:
            best = request
    return best


def scan_expected_conflict_bits(ctl):
    """Post-update conflict bits per the pre-index FR-FCFS/FR-RR logic."""
    expected = {bank.index: bank.state.conflict_bit for bank in ctl.channel.banks}
    for bank_index, requests in ctl.mem_requests_by_bank().items():
        bank = ctl.channel.banks[bank_index]
        if bank.state.conflict_bit:
            continue
        if not bank.state.issued_since_switch:
            continue
        if any(bank.is_row_hit(r.row) for r in requests):
            continue
        if bank.open_row is None:
            continue
        expected[bank_index] = True
    return expected


def scan_all_pending_banks_stalled(ctl):
    pending = ctl.mem_requests_by_bank()
    if not pending:
        return False
    return all(ctl.channel.banks[b].state.conflict_bit for b in pending)


def scan_bliss_decide(policy, ctl, cycle):
    """Pre-index BLISS.decide (scan over issuable requests)."""
    policy._maybe_clear(cycle)
    best = None
    best_score = None
    for request in ctl.issuable_mem(cycle):
        score = policy._score(ctl, request, ctl.channel.is_row_hit(request))
        if best_score is None or score < best_score:
            best, best_score = request, score
    if ctl.pim_queue:
        head = ctl.pim_queue[0]
        head_hit = not ctl.pim_exec.would_switch_row(head)
        score = policy._score(ctl, head, head_hit)
        if best_score is None or score < best_score:
            best, best_score = head, score
    if best is None:
        fallback = policy.fallback_when_empty(ctl)
        return fallback if fallback is not None else IDLE
    if best.mode is not ctl.mode:
        return Decision.switch(best.mode)
    if best.mode is Mode.PIM:
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
    return Decision.mem(best)


def scan_f3fs_ablation_decide(ctl, cycle):
    """Pre-index F3FS._decide_frfcfs_order (current_mode_first=False)."""
    best = None
    best_key = None
    for request in ctl.issuable_mem(cycle):
        key = (not ctl.channel.is_row_hit(request), request.mc_seq)
        if best_key is None or key < best_key:
            best, best_key = request, key
    if ctl.pim_queue:
        head = ctl.pim_queue[0]
        key = (ctl.pim_exec.would_switch_row(head), head.mc_seq)
        if best_key is None or key < best_key:
            best, best_key = head, key
    if best is None:
        return IDLE
    if best.mode is not ctl.mode:
        return Decision.switch(best.mode)
    if best.mode is Mode.PIM:
        return Decision.pim() if ctl.pim_ready(cycle) else IDLE
    return Decision.mem(best)


def decisions_equal(a, b):
    return a.kind == b.kind and a.request is b.request and a.target is b.target


# ---------------------------------------------------------------------------
# Randomized controller states.
# ---------------------------------------------------------------------------


def mem_request(bank, row, kernel_id=0):
    req = Request(type=RequestType.MEM_LOAD, address=0, kernel_id=kernel_id)
    req.channel, req.bank, req.row, req.column = 0, bank, row, 0
    return req


def pim_request(row, column=0, kernel_id=1):
    req = Request(
        type=RequestType.PIM, address=0, kernel_id=kernel_id, pim_op=PIMOp(PIMOpKind.LOAD)
    )
    req.channel, req.bank, req.row, req.column = 0, 0, row, column
    return req


def random_controller(rng, policy_name="FR-FCFS", **params):
    channel = Channel(0, NUM_BANKS, DRAMTimings())
    pim_exec = PIMExecutor(channel, fus_per_channel=NUM_BANKS // 2, rf_entries_per_bank=8)
    ctl = MemoryController(
        channel, pim_exec, make_policy(policy_name, **params),
        mem_queue_size=256, pim_queue_size=256,
    )
    live = []
    for _ in range(rng.randrange(0, 40)):
        req = mem_request(
            bank=rng.randrange(NUM_BANKS),
            row=rng.randrange(NUM_ROWS),
            kernel_id=rng.randrange(3),
        )
        ctl.enqueue(req, cycle=0)
        live.append(req)
    for _ in range(rng.randrange(0, 8)):
        ctl.enqueue(pim_request(row=rng.randrange(NUM_ROWS)), cycle=0)
    # Tombstone a random subset, as issue does mid-simulation.
    rng.shuffle(live)
    for req in live[: rng.randrange(0, len(live) + 1) if live else 0]:
        ctl.mem_queue.remove(req)
    # Random bank state: open rows, accept windows, conflict machinery.
    for bank in channel.banks:
        state = bank.state
        if rng.random() < 0.75:
            state.open_row = rng.randrange(NUM_ROWS)
        state.accept_at = rng.randrange(0, 3)
        state.conflict_bit = rng.random() < 0.3
        state.issued_since_switch = rng.random() < 0.6
    # Bank rows were mutated behind the executor's back.
    pim_exec.invalidate_row_cache()
    return ctl


# ---------------------------------------------------------------------------
# Primitive equivalence.
# ---------------------------------------------------------------------------


class TestPrimitivesMatchScan:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("exclude", [False, True])
    def test_frfcfs_pick(self, seed, exclude):
        rng = random.Random(seed)
        ctl = random_controller(rng)
        for cycle in (0, 1, 2):
            expected = scan_frfcfs_pick(ctl, cycle, exclude)
            actual = ctl.policy.frfcfs_pick(ctl, cycle, exclude_conflict_banks=exclude)
            assert actual is expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_oldest_overall(self, seed):
        rng = random.Random(seed)
        ctl = random_controller(rng)
        assert ctl.oldest_overall() is scan_oldest_overall(ctl)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy_cls", [FRFCFS, FRRRFCFS])
    def test_conflict_bit_update(self, seed, policy_cls):
        rng = random.Random(seed)
        ctl = random_controller(rng, policy_name=policy_cls.name)
        expected = scan_expected_conflict_bits(ctl)
        if policy_cls is FRFCFS:
            ctl.policy._update_conflict_bits(ctl, cycle=1)
        else:
            ctl.policy._update_conflict_bits(ctl)
        actual = {bank.index: bank.state.conflict_bit for bank in ctl.channel.banks}
        assert actual == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_pending_banks_stalled(self, seed):
        rng = random.Random(seed)
        ctl = random_controller(rng)
        assert ctl.policy._all_pending_banks_stalled(ctl) == scan_all_pending_banks_stalled(ctl)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", [Mode.MEM, Mode.PIM])
    def test_bliss_decide(self, seed, mode):
        rng = random.Random(seed)
        ctl = random_controller(rng, policy_name="BLISS")
        ctl.mode = mode
        policy = ctl.policy
        for kernel in range(3):
            if rng.random() < 0.4:
                policy.blacklist.add(kernel)
        expected = scan_bliss_decide(policy, ctl, cycle=1)
        actual = policy.decide(ctl, cycle=1)
        assert decisions_equal(actual, expected)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", [Mode.MEM, Mode.PIM])
    def test_f3fs_ablation_order(self, seed, mode):
        rng = random.Random(seed)
        ctl = random_controller(rng, policy_name="F3FS", current_mode_first=False)
        ctl.mode = mode
        expected = scan_f3fs_ablation_decide(ctl, cycle=1)
        actual = ctl.policy._decide_frfcfs_order(ctl, cycle=1)
        assert decisions_equal(actual, expected)


class TestIndexInvariants:
    """BankIndexedMemQueue vs a plain-list model under random mutation."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_list_model(self, seed):
        rng = random.Random(seed)
        ctl = random_controller(rng)
        queue = ctl.mem_queue
        model = [r for r in queue]
        assert len(queue) == len(model)
        assert bool(queue) == bool(model)
        assert [r.mc_seq for r in queue] == sorted(r.mc_seq for r in model)
        assert queue.head() is (min(model, key=lambda r: r.mc_seq) if model else None)
        by_bank = {}
        for r in model:
            by_bank.setdefault(r.bank, []).append(r)
        assert list(queue.banks_with_work()) == sorted(by_bank)
        for bank in range(NUM_BANKS):
            requests = by_bank.get(bank, [])
            assert queue.bank_pending(bank) == len(requests)
            assert queue.bank_head(bank) is (requests[0] if requests else None)
            for row in range(NUM_ROWS):
                in_row = [r for r in requests if r.row == row]
                assert queue.row_head(bank, row) is (in_row[0] if in_row else None)


# ---------------------------------------------------------------------------
# End-to-end equivalence: scan-backed policies vs indexed policies.
# ---------------------------------------------------------------------------


class _ScanPickMixin:
    @staticmethod
    def frfcfs_pick(ctl, cycle, exclude_conflict_banks=False):
        return scan_frfcfs_pick(ctl, cycle, exclude_conflict_banks)


class ScanFRFCFS(_ScanPickMixin, FRFCFS):
    def _update_conflict_bits(self, ctl, cycle):
        for bank_index, hit in scan_expected_conflict_bits(ctl).items():
            ctl.channel.banks[bank_index].state.conflict_bit = hit

    @staticmethod
    def _all_pending_banks_stalled(ctl):
        return scan_all_pending_banks_stalled(ctl)


class ScanFRRR(_ScanPickMixin, FRRRFCFS):
    @staticmethod
    def _update_conflict_bits(ctl):
        for bank_index, hit in scan_expected_conflict_bits(ctl).items():
            ctl.channel.banks[bank_index].state.conflict_bit = hit

    @staticmethod
    def _all_pending_banks_stalled(ctl):
        return scan_all_pending_banks_stalled(ctl)


class ScanF3FS(_ScanPickMixin, F3FS):
    def _decide_frfcfs_order(self, ctl, cycle):
        return scan_f3fs_ablation_decide(ctl, cycle)


class ScanDynF3FS(_ScanPickMixin, DynamicF3FS):
    def _decide_frfcfs_order(self, ctl, cycle):
        return scan_f3fs_ablation_decide(ctl, cycle)


class ScanBLISS(BLISS):
    def decide(self, ctl, cycle):
        return scan_bliss_decide(self, ctl, cycle)


class ScanCap(_ScanPickMixin, FRFCFSCap):
    pass


class ScanSMS(_ScanPickMixin, SMS):
    pass


class _FactorySpec:
    """Minimal PolicySpec stand-in: GPUSystem only calls ``create()``."""

    def __init__(self, factory):
        self.create = factory

    def label(self):  # pragma: no cover - debugging aid
        return "scan-vs-indexed"


PAIRS = [
    ("FR-FCFS", lambda: make_policy("FR-FCFS"), ScanFRFCFS),
    ("FR-RR-FCFS", lambda: make_policy("FR-RR-FCFS"), ScanFRRR),
    ("FR-FCFS-Cap", lambda: make_policy("FR-FCFS-Cap", cap=16), lambda: ScanCap(cap=16)),
    (
        "BLISS",
        lambda: make_policy("BLISS", threshold=4, clear_interval=2_000),
        lambda: ScanBLISS(threshold=4, clear_interval=2_000),
    ),
    ("SMS", lambda: make_policy("SMS", batch_size=16), lambda: ScanSMS(batch_size=16)),
    (
        "F3FS",
        lambda: make_policy("F3FS", mem_cap=64, pim_cap=16, current_mode_first=False),
        lambda: ScanF3FS(mem_cap=64, pim_cap=16, current_mode_first=False),
    ),
    (
        "Dyn-F3FS",
        lambda: make_policy("Dyn-F3FS", initial_cap=32, epoch=1_000),
        lambda: ScanDynF3FS(initial_cap=32, epoch=1_000),
    ),
]


def run_fingerprint(factory):
    reset_request_ids()
    config = SystemConfig.scaled(num_channels=2, num_sms=4)
    system = GPUSystem(config, _FactorySpec(factory), seed=3, scale=0.06)
    system.add_kernel(get_gpu_kernel("G17"), num_sms=3, loop=True)
    system.add_kernel(get_pim_kernel("P1"), num_sms=1, loop=True)
    result = system.run(max_cycles=20_000, until_all_complete_once=False)
    return {
        "cycles": result.cycles,
        "issued": [(c.stats.mem_issued, c.stats.pim_issued) for c in system.controllers],
        "arrivals": [(c.stats.mem_arrivals, c.stats.pim_arrivals) for c in system.controllers],
        "injected": sorted(system._injected.items()),
        "switches": result.mode_switches,
        "hit_rate": result.row_buffer_hit_rate,
        "replies": system.replies_sent,
    }


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("name,indexed,scan", PAIRS, ids=[p[0] for p in PAIRS])
    def test_simulation_fingerprint_identical(self, name, indexed, scan):
        assert run_fingerprint(indexed) == run_fingerprint(scan)
